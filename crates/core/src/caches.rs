//! One coherent cache-control surface: the [`CacheControl`] facade.
//!
//! Cache behavior used to be scattered across ad-hoc per-knob methods —
//! `Mediator::cim()` + a lock for stats, invariants, and budgets,
//! `Mediator::set_policy` for routing, `config_mut()` for executor knobs —
//! and the subplan materialization cache ([`crate::matcache`]) would have
//! added a fourth surface. [`Mediator::caches`](crate::Mediator::caches)
//! and [`ConcurrentMediator::caches`](crate::ConcurrentMediator::caches)
//! instead hand out one facade over both cache tiers:
//!
//! * [`CacheControl::stats`] — one snapshot of CIM manager counters,
//!   answer-cache counters + footprint, and matcache counters.
//! * [`CacheControl::invalidate_source`] — the "source answers changed"
//!   entry point: drops the source's ground-call entries *and* the
//!   materialized subplans that read it (the HA074 scope), in one call.
//! * [`CacheControl::clear`] — per-tier or whole-hierarchy flush.
//! * [`CacheControl::add_invariant`] / [`CacheControl::set_serve_stale`] —
//!   CIM knobs without the lock choreography.
//! * [`CacheControl::policy`] — a builder applying routing, budgets, and
//!   subplan sharing in one shot.
//!
//! The facade works identically over the serial mediator's `Mutex<Cim>`
//! and the concurrent mediator's `ShardedCim`, with one honest
//! difference: the concurrent mediator's planning core is immutable by
//! design, so [`CachePolicy::apply`] refuses `routing`/`share_subplans`
//! changes there instead of silently dropping them — configure those on
//! the serial mediator *before* `to_concurrent`.

use crate::exec::ExecConfig;
use crate::matcache::{MatCache, MatCacheStats};
use hermes_cim::{CacheStats, Cim, CimPolicy, CimStats, ShardedCim};
use hermes_common::sync::Mutex;
use hermes_common::{HermesError, Result};
use hermes_lang::Invariant;

/// Which cache tier an operation targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// The CIM's ground-call answer cache.
    Answers,
    /// The subplan materialization cache.
    Subplans,
    /// Both tiers.
    All,
}

/// One combined snapshot of every cache tier.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheSnapshot {
    /// CIM manager counters (exact/equal/partial hits, misses, stores).
    pub cim: CimStats,
    /// Answer-cache counters (inserts, evictions, bytes shared/copied).
    pub answers: CacheStats,
    /// Live ground-call entries.
    pub answer_entries: usize,
    /// Live ground-call bytes.
    pub answer_bytes: usize,
    /// Subplan materialization counters and footprint.
    pub subplans: MatCacheStats,
}

/// What [`CacheControl::invalidate_source`] dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvalidationSweep {
    /// Ground-call entries dropped from the answer cache.
    pub answers_dropped: usize,
    /// Materialized subplans dropped (the HA074 scope of the source).
    pub subplans_dropped: usize,
}

/// The mediator state the facade reaches, serial or sharded.
enum Backend<'m> {
    Serial {
        cim: &'m Mutex<Cim>,
        policy: &'m mut CimPolicy,
        exec: &'m mut ExecConfig,
        /// The mediator's cache epoch; bumped when routing changes so the
        /// matcache verdicts refresh before the next query.
        epoch: &'m mut u64,
    },
    Shared {
        cim: &'m ShardedCim,
    },
}

/// The unified cache-control facade. Obtain one from
/// [`Mediator::caches`](crate::Mediator::caches) (full control) or
/// [`ConcurrentMediator::caches`](crate::ConcurrentMediator::caches)
/// (everything except planning-core knobs).
pub struct CacheControl<'m> {
    backend: Backend<'m>,
    matcache: &'m MatCache,
}

impl<'m> CacheControl<'m> {
    pub(crate) fn serial(
        cim: &'m Mutex<Cim>,
        policy: &'m mut CimPolicy,
        exec: &'m mut ExecConfig,
        epoch: &'m mut u64,
        matcache: &'m MatCache,
    ) -> Self {
        CacheControl {
            backend: Backend::Serial {
                cim,
                policy,
                exec,
                epoch,
            },
            matcache,
        }
    }

    pub(crate) fn shared(cim: &'m ShardedCim, matcache: &'m MatCache) -> Self {
        CacheControl {
            backend: Backend::Shared { cim },
            matcache,
        }
    }

    /// One snapshot across both tiers.
    pub fn stats(&self) -> CacheSnapshot {
        let (cim, answers, answer_entries, answer_bytes) = match &self.backend {
            Backend::Serial { cim, .. } => {
                let guard = cim.lock();
                (
                    guard.stats(),
                    guard.cache_stats(),
                    guard.cache().len(),
                    guard.cache().bytes(),
                )
            }
            Backend::Shared { cim } => (cim.stats(), cim.cache_stats(), cim.len(), cim.bytes()),
        };
        CacheSnapshot {
            cim,
            answers,
            answer_entries,
            answer_bytes,
            subplans: self.matcache.stats(),
        }
    }

    /// Reacts to "this source's answers changed": drops the source's
    /// ground-call entries and exactly the materialized subplans that
    /// (transitively) read it.
    pub fn invalidate_source(&self, domain: &str, function: &str) -> InvalidationSweep {
        let answers_dropped = match &self.backend {
            Backend::Serial { cim, .. } => {
                cim.lock().cache_mut().invalidate_function(domain, function)
            }
            Backend::Shared { cim } => cim.invalidate_function(domain, function),
        };
        InvalidationSweep {
            answers_dropped,
            subplans_dropped: self.matcache.invalidate_source(domain, function),
        }
    }

    /// Empties one tier (or both). Counters persist; registered indexes
    /// and invariants survive.
    pub fn clear(&self, tier: CacheTier) {
        if matches!(tier, CacheTier::Answers | CacheTier::All) {
            match &self.backend {
                Backend::Serial { cim, .. } => cim.lock().cache_mut().clear(),
                Backend::Shared { cim } => cim.clear(),
            }
        }
        if matches!(tier, CacheTier::Subplans | CacheTier::All) {
            self.matcache.clear();
        }
    }

    /// Registers a §4.2 invariant with the CIM (every shard, on the
    /// concurrent side). Returns how many stores now hold it.
    pub fn add_invariant(&self, inv: Invariant) -> Result<usize> {
        match &self.backend {
            Backend::Serial { cim, .. } => cim.lock().add_invariant(inv),
            Backend::Shared { cim } => cim.add_invariant(&inv),
        }
    }

    /// Serve stale cached answers when a source is unreachable (§4.1's
    /// availability trade).
    pub fn set_serve_stale(&self, on: bool) {
        match &self.backend {
            Backend::Serial { cim, .. } => cim.lock().set_serve_stale_on_outage(on),
            Backend::Shared { cim } => cim.set_serve_stale_on_outage(on),
        }
    }

    /// The subplan cache handle — stats, budgets, and targeted
    /// invalidation beyond what the facade methods cover.
    pub fn subplans(&self) -> &'m MatCache {
        self.matcache
    }

    /// Starts a policy change; finish with [`CachePolicy::apply`].
    pub fn policy(self) -> CachePolicy<'m> {
        CachePolicy {
            control: self,
            routing: None,
            serve_stale: None,
            share_subplans: None,
            answer_budget: None,
            subplan_budget: None,
            subplan_min_savings: None,
        }
    }
}

/// A batched cache-policy change, built fluently from
/// [`CacheControl::policy`] and applied atomically enough for
/// configuration purposes (each knob lands in one call).
pub struct CachePolicy<'m> {
    control: CacheControl<'m>,
    routing: Option<CimPolicy>,
    serve_stale: Option<bool>,
    share_subplans: Option<bool>,
    answer_budget: Option<Option<usize>>,
    subplan_budget: Option<usize>,
    subplan_min_savings: Option<f64>,
}

impl CachePolicy<'_> {
    /// Replaces the CIM routing policy (which calls go through the
    /// cache). Serial mediator only — routing binds at `to_concurrent`.
    pub fn routing(mut self, policy: CimPolicy) -> Self {
        self.routing = Some(policy);
        self
    }

    /// Serve stale cached answers on outage.
    pub fn serve_stale(mut self, on: bool) -> Self {
        self.serve_stale = Some(on);
        self
    }

    /// Enables/disables the subplan materialization cache for queries
    /// (`ExecConfig::share_subplans`). Serial mediator only — the setting
    /// binds at `to_concurrent`.
    pub fn share_subplans(mut self, on: bool) -> Self {
        self.share_subplans = Some(on);
        self
    }

    /// Byte budget of the ground-call answer cache (`None` = unbounded).
    pub fn answer_budget(mut self, bytes: Option<usize>) -> Self {
        self.answer_budget = Some(bytes);
        self
    }

    /// Byte budget of the subplan cache.
    pub fn subplan_budget(mut self, bytes: usize) -> Self {
        self.subplan_budget = Some(bytes);
        self
    }

    /// Admission floor of the subplan cache (estimated saved ms).
    pub fn subplan_min_savings(mut self, ms: f64) -> Self {
        self.subplan_min_savings = Some(ms);
        self
    }

    /// Applies every requested change. Fails — before changing anything —
    /// if a planning-core knob (`routing`, `share_subplans`) was requested
    /// on a concurrent mediator, whose planning core is immutable.
    pub fn apply(self) -> Result<()> {
        match self.control.backend {
            Backend::Serial {
                cim,
                policy,
                exec,
                epoch,
            } => {
                if let Some(routing) = self.routing {
                    *policy = routing;
                    // Routing decides volatility (a call routed around
                    // the CIM has no invalidation signal), so installed
                    // verdicts are stale: bump the epoch to refresh.
                    *epoch += 1;
                }
                if let Some(on) = self.share_subplans {
                    exec.share_subplans = on;
                }
                if let Some(on) = self.serve_stale {
                    cim.lock().set_serve_stale_on_outage(on);
                }
                if let Some(bytes) = self.answer_budget {
                    cim.lock().cache_mut().set_budget(bytes);
                }
            }
            Backend::Shared { cim } => {
                if self.routing.is_some() || self.share_subplans.is_some() {
                    return Err(HermesError::Eval(
                        "routing and subplan sharing bind at `to_concurrent` time; \
                         set them on the serial mediator first"
                            .into(),
                    ));
                }
                if let Some(on) = self.serve_stale {
                    cim.set_serve_stale_on_outage(on);
                }
                if let Some(bytes) = self.answer_budget {
                    cim.for_each_shard_mut(|_, shard| shard.cache_mut().set_budget(bytes));
                }
            }
        }
        if let Some(bytes) = self.subplan_budget {
            self.control.matcache.set_budget(bytes);
        }
        if let Some(ms) = self.subplan_min_savings {
            self.control.matcache.set_min_savings(ms);
        }
        Ok(())
    }
}
