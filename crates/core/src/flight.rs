//! Single-flight coalescing of identical ground domain calls.
//!
//! When K concurrent queries need the same ground call at (roughly) the
//! same wall-clock moment, only one of them — the **leader** — should pay
//! the source round trip; the other K−1 — **followers** — block until the
//! leader publishes its [`RemoteOutcome`] and then share the same
//! `Arc`-backed answer set. Under a skewed workload this turns the zero-copy
//! answer representation into cross-query sharing and cuts duplicate source
//! traffic exactly where it concentrates: on the hot keys.
//!
//! ## Protocol
//!
//! 1. A query about to perform a source call asks the registry to
//!    [`join`](InFlightRegistry::join) the call's flight.
//! 2. If no flight exists, the caller becomes the leader and receives a
//!    [`FlightLeader`] token. It performs the call through its normal path
//!    (breaker admission, retries, DCSM recording all included) and then
//!    [`publish`](FlightLeader::publish)es the outcome — or drops the token,
//!    which marks the flight **abandoned**.
//! 3. Otherwise the caller becomes a follower and blocks in
//!    [`FlightHandle::wait`]. A published outcome is cloned out (an `Arc`
//!    bump); an abandoned flight returns `None` and the follower falls back
//!    to performing the call itself (re-joining, so one follower inherits
//!    leadership and the rest coalesce behind *it*).
//!
//! The leader removes the call's registry entry when it resolves the
//! flight, so a later identical call starts a fresh flight (it will
//! normally hit the answer cache instead).
//!
//! ## Lock order and soundness
//!
//! The registry lock is only ever held to look up / insert / remove a map
//! entry — never across a source call and never while a shard or slot lock
//! is held. Each flight's slot lock guards only its own state enum and is
//! held only inside `wait`/`publish`/`abandon`. Followers therefore block
//! on the condition variable with no other lock held, and the leader's
//! real work happens entirely outside both locks — there is no path on
//! which two of these locks nest.
//!
//! Coalescing never serves *stale* data: followers receive an outcome the
//! leader obtained from the source during the followers' own wait window —
//! strictly fresher than any cache entry they could have accepted. Virtual
//! time stays per-query: each follower charges the leader's `t_first`/`t_all`
//! on its own clock, exactly as if it had performed the call itself.

use hermes_common::sync::Mutex;
use hermes_common::GroundCall;
use hermes_net::RemoteOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

/// One in-flight call's shared state.
#[derive(Debug)]
struct FlightSlot {
    state: Mutex<FlightState>,
    arrived: Condvar,
}

#[derive(Debug)]
enum FlightState {
    /// The leader is still on the wire.
    Pending,
    /// The leader published its outcome.
    Done(RemoteOutcome),
    /// The leader failed or panicked without publishing.
    Abandoned,
}

impl FlightSlot {
    fn new() -> Self {
        FlightSlot {
            state: Mutex::new(FlightState::Pending),
            arrived: Condvar::new(),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock() = state;
        self.arrived.notify_all();
    }
}

/// A follower's handle on another query's in-flight call.
#[derive(Debug)]
pub struct FlightHandle {
    slot: Arc<FlightSlot>,
}

impl FlightHandle {
    /// Blocks until the flight resolves. `Some` carries the leader's
    /// outcome (answers shared by `Arc` bump); `None` means the leader
    /// abandoned the flight and the caller must perform the call itself.
    pub fn wait(self) -> Option<RemoteOutcome> {
        let mut state = self.slot.state.lock();
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .slot
                        .arrived
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                FlightState::Done(outcome) => return Some(outcome.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }
}

/// The leader's obligation to resolve its flight. Dropping the token
/// without [`publish`](FlightLeader::publish)ing abandons the flight (this
/// covers both error returns and panics), releasing every follower to
/// retry on its own.
#[derive(Debug)]
pub struct FlightLeader<'r> {
    registry: &'r InFlightRegistry,
    call: GroundCall,
    slot: Arc<FlightSlot>,
    resolved: bool,
}

impl FlightLeader<'_> {
    /// Publishes the outcome to every follower and closes the flight.
    pub fn publish(mut self, outcome: &RemoteOutcome) {
        self.registry.remove(&self.call);
        self.slot.resolve(FlightState::Done(outcome.clone()));
        self.resolved = true;
    }

    /// Explicitly abandons the flight (same as dropping the token, but
    /// reads better at call sites that know the call failed).
    pub fn abandon(self) {
        // Drop does the work.
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.registry.remove(&self.call);
            self.slot.resolve(FlightState::Abandoned);
        }
    }
}

/// The caller's role in a flight, decided by [`InFlightRegistry::join`].
#[derive(Debug)]
pub enum FlightRole<'r> {
    /// First caller in: perform the call, then publish or abandon.
    Leader(FlightLeader<'r>),
    /// A leader is already on the wire: wait for its outcome.
    Follower(FlightHandle),
}

/// The registry of ground calls currently on the wire.
///
/// Shared (behind `Arc`) by every query a `ConcurrentMediator` serves.
/// A serial `Mediator` doesn't use one — with a single client there is
/// nobody to coalesce with.
#[derive(Debug, Default)]
pub struct InFlightRegistry {
    flights: Mutex<HashMap<GroundCall, Arc<FlightSlot>>>,
    /// Flights that had at least one follower when they resolved.
    coalesced_flights: AtomicU64,
    /// Total follower joins (each one is a call that did not open its own
    /// flight).
    calls_coalesced: AtomicU64,
    /// Followers actually served by a published outcome (a follower whose
    /// leader abandoned falls back and does *not* save a round trip).
    round_trips_saved: AtomicU64,
}

impl InFlightRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        InFlightRegistry::default()
    }

    /// Joins the flight for `call`, becoming its leader or a follower.
    pub fn join(&self, call: &GroundCall) -> FlightRole<'_> {
        let mut flights = self.flights.lock();
        if let Some(slot) = flights.get(call) {
            self.calls_coalesced.fetch_add(1, Ordering::Relaxed);
            FlightRole::Follower(FlightHandle { slot: slot.clone() })
        } else {
            let slot = Arc::new(FlightSlot::new());
            flights.insert(call.clone(), slot.clone());
            FlightRole::Leader(FlightLeader {
                registry: self,
                call: call.clone(),
                slot,
                resolved: false,
            })
        }
    }

    /// Notes that a follower was served by a published outcome.
    pub(crate) fn note_round_trip_saved(&self) {
        self.round_trips_saved.fetch_add(1, Ordering::Relaxed);
    }

    fn remove(&self, call: &GroundCall) {
        if let Some(slot) = self.flights.lock().remove(call) {
            // Strong count > 2 (map's clone + leader's clone) means at
            // least one follower holds a handle.
            if Arc::strong_count(&slot) > 2 {
                self.coalesced_flights.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Calls that joined an existing flight instead of opening their own.
    pub fn calls_coalesced(&self) -> u64 {
        self.calls_coalesced.load(Ordering::Relaxed)
    }

    /// Source round trips avoided: followers that received a published
    /// outcome.
    pub fn round_trips_saved(&self) -> u64 {
        self.round_trips_saved.load(Ordering::Relaxed)
    }

    /// Flights that resolved with at least one follower attached.
    pub fn coalesced_flights(&self) -> u64 {
        self.coalesced_flights.load(Ordering::Relaxed)
    }

    /// Calls on the wire right now (for diagnostics; racy by nature).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{SimDuration, Value};

    fn call(k: i64) -> GroundCall {
        GroundCall::new("d", "f", vec![Value::Int(k)])
    }

    fn outcome(n: usize) -> RemoteOutcome {
        RemoteOutcome {
            answers: (0..n as i64).map(Value::Int).collect::<Vec<_>>().into(),
            t_first: SimDuration::from_millis_f64(1.0),
            t_all: SimDuration::from_millis_f64(2.0),
            bytes: 64,
            site: "test".into(),
            truncated: false,
        }
    }

    #[test]
    fn first_in_leads_second_follows() {
        let registry = InFlightRegistry::new();
        let leader = match registry.join(&call(1)) {
            FlightRole::Leader(l) => l,
            FlightRole::Follower(_) => panic!("first join must lead"),
        };
        let follower = match registry.join(&call(1)) {
            FlightRole::Follower(f) => f,
            FlightRole::Leader(_) => panic!("second join must follow"),
        };
        // A different call opens its own flight.
        assert!(matches!(registry.join(&call(2)), FlightRole::Leader(_)));
        leader.publish(&outcome(3));
        let got = follower.wait().expect("published");
        assert_eq!(got.answers.len(), 3);
        assert_eq!(registry.calls_coalesced(), 1);
        assert_eq!(registry.coalesced_flights(), 1);
    }

    #[test]
    fn published_answers_share_one_allocation() {
        let registry = InFlightRegistry::new();
        let FlightRole::Leader(leader) = registry.join(&call(1)) else {
            panic!("lead");
        };
        let FlightRole::Follower(follower) = registry.join(&call(1)) else {
            panic!("follow");
        };
        let out = outcome(2);
        leader.publish(&out);
        let got = follower.wait().expect("published");
        assert!(Arc::ptr_eq(&got.answers, &out.answers));
    }

    #[test]
    fn abandoned_flight_releases_followers_to_retry() {
        let registry = InFlightRegistry::new();
        let FlightRole::Leader(leader) = registry.join(&call(1)) else {
            panic!("lead");
        };
        let FlightRole::Follower(follower) = registry.join(&call(1)) else {
            panic!("follow");
        };
        leader.abandon();
        assert!(follower.wait().is_none());
        // The entry is gone: the next join starts a fresh flight.
        assert!(matches!(registry.join(&call(1)), FlightRole::Leader(_)));
        assert_eq!(registry.round_trips_saved(), 0);
    }

    #[test]
    fn cross_thread_followers_block_until_publish() {
        let registry = Arc::new(InFlightRegistry::new());
        let FlightRole::Leader(leader) = registry.join(&call(7)) else {
            panic!("lead");
        };
        let mut joiners = Vec::new();
        for _ in 0..4 {
            let registry = registry.clone();
            joiners.push(std::thread::spawn(move || match registry.join(&call(7)) {
                FlightRole::Follower(f) => f.wait().map(|o| o.answers.len()),
                FlightRole::Leader(_) => panic!("leader already exists"),
            }));
        }
        // Give followers a moment to block, then publish.
        std::thread::sleep(std::time::Duration::from_millis(20));
        leader.publish(&outcome(5));
        for j in joiners {
            assert_eq!(j.join().expect("no panic"), Some(5));
        }
        assert_eq!(registry.calls_coalesced(), 4);
        assert_eq!(registry.in_flight(), 0);
    }
}
