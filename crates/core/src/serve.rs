//! The network serving core: a worker-pool TCP server over
//! [`ConcurrentMediator`] speaking the [`hermes_common::frame`] binary
//! protocol, plus the thin [`WireClient`] the REPL and load generator use.
//!
//! # Shape
//!
//! `NetServer::bind` spawns one *accept* thread and `workers` handler
//! threads. The accept thread runs a non-blocking poll loop so it can
//! notice shutdown promptly; accepted sockets flow to the handlers
//! through a **bounded** queue. When the queue is full the connection
//! is refused at the socket with a `shed`/`accept-queue-full` error
//! frame — this is the socket-level face of the PR 6 admission gate:
//! the gate sheds *queries* under concurrency pressure, the accept
//! queue sheds *connections* before they ever cost a worker.
//!
//! Each handler owns one connection at a time and serves its frames
//! request/response: `Query` → `Batch*` + `Done` (or `Error`),
//! `Stats` → `StatsReply`, `Ping` → `Pong`, `Shutdown` → `Pong` then a
//! graceful drain. Handlers poll for the stop flag between frames
//! (bounded by `idle_poll`), so `shutdown`/a `Shutdown` frame drains
//! in bounded time without cutting off an in-flight response.
//!
//! Queries run with the mediator in **wall-clock** mode (unless
//! configured off): deadlines, budgets, and retry backoff bind to real
//! elapsed time, which is what a network client means by "2 seconds".
//! The serial simulated-clock path is untouched.

use std::io::{ErrorKind, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hermes_common::frame::{DoneFrame, ErrorFrame, Frame, QueryFrame};
use hermes_common::{HermesError, Record, Result, SimDuration, Value};

use crate::mediator::{QueryRequest, QueryResult};
use crate::server::ConcurrentMediator;
use crate::tier::PlanTier;

/// How a [`NetServer`] binds, pools, and sheds.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Handler threads; also the number of connections served at once.
    pub workers: usize,
    /// Accepted connections waiting for a free handler; one more
    /// connection than this is refused with `shed`/`accept-queue-full`.
    pub pending_conns: usize,
    /// Rows per `Batch` frame in a streamed response.
    pub batch_rows: usize,
    /// Serve queries on the wall-anchored clock (real deadlines). Off
    /// restores virtual time — useful for deterministic protocol tests.
    pub wall_clock: bool,
    /// How often idle handlers and the accept loop check the stop flag;
    /// bounds shutdown latency, not request latency.
    pub idle_poll: Duration,
    /// How long a started frame may take to finish arriving before the
    /// connection is dropped as stalled.
    pub frame_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            pending_conns: 64,
            batch_rows: 512,
            wall_clock: true,
            idle_poll: Duration::from_millis(50),
            frame_timeout: Duration::from_secs(30),
        }
    }
}

/// Socket-level counters, one step below [`crate::server::ServerStats`]:
/// these count connections and frames, the gate counts queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetServerStats {
    /// Connections handed to a worker.
    pub accepted: u64,
    /// Connections refused because the pending queue was full.
    pub refused: u64,
    /// Frames served (all kinds).
    pub requests: u64,
    /// Connections dropped for protocol errors (malformed frames).
    pub bad_frames: u64,
}

#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    refused: AtomicU64,
    requests: AtomicU64,
    bad_frames: AtomicU64,
}

struct Shared {
    mediator: Arc<ConcurrentMediator>,
    config: ServeConfig,
    stop: AtomicBool,
    counters: NetCounters,
}

/// A running server: an accept thread, a worker pool, and the shared
/// stop flag. Dropping without calling [`NetServer::shutdown`] or
/// [`NetServer::wait`] detaches the threads (they stop at the next
/// stop-flag poll once the process asks).
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` and start serving `mediator` in the background.
    /// `addr` may use port 0; the picked port is in [`NetServer::addr`].
    pub fn bind(
        mediator: Arc<ConcurrentMediator>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        mediator.set_wall_clock(config.wall_clock);

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            mediator,
            config,
            stop: AtomicBool::new(false),
            counters: NetCounters::default(),
        });

        let (tx, rx) = sync_channel::<TcpStream>(shared.config.pending_conns);
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
            workers: handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Socket-level counters so far.
    pub fn net_stats(&self) -> NetServerStats {
        let c = &self.shared.counters;
        NetServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            refused: c.refused.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            bad_frames: c.bad_frames.load(Ordering::Relaxed),
        }
    }

    /// The mediator being served.
    pub fn mediator(&self) -> &Arc<ConcurrentMediator> {
        &self.shared.mediator
    }

    /// True once a `Shutdown` frame (or [`NetServer::shutdown`]) has
    /// asked the server to drain.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Block until the server drains — i.e. until a client sends a
    /// `Shutdown` frame. Returns the final socket counters.
    pub fn wait(mut self) -> NetServerStats {
        self.join();
        self.net_stats()
    }

    /// Ask the server to stop, drain in-flight responses, and join all
    /// threads. Returns the final socket counters.
    pub fn shutdown(mut self) -> NetServerStats {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.join();
        self.net_stats()
    }

    fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn io_err(e: std::io::Error) -> HermesError {
    HermesError::Io(e.to_string())
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return; // drops `tx`; workers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {
                    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(stream)) => {
                    shared.counters.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.idle_poll);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(shared.config.idle_poll),
        }
    }
}

/// Tell a refused connection *why* before closing, so the client can
/// count socket sheds instead of seeing a bare reset.
fn refuse(stream: TcpStream) {
    let frame = Frame::Error(ErrorFrame {
        code: "shed".into(),
        message: "accept-queue-full".into(),
    });
    let mut stream = stream;
    let _ = stream.write_all(&frame.encode());
    let _ = stream.shutdown(SockShutdown::Both);
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            guard.recv()
        };
        match conn {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // accept loop gone and queue drained
        }
    }
}

/// Serve one connection request/response until EOF, a protocol error,
/// or drain. Errors on the socket just close the connection — the
/// server itself never dies from a bad peer.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match next_frame(shared, &stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(_) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let done = matches!(frame, Frame::Shutdown);
        if respond(shared, &stream, frame).is_err() {
            return; // peer went away mid-response
        }
        if done {
            shared.stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// Wait for the next frame, polling the stop flag while the connection
/// is idle. Once a frame's first byte arrives it must finish within
/// `frame_timeout`. `Ok(None)` means clean EOF or drain.
fn next_frame(shared: &Shared, stream: &TcpStream) -> Result<Option<Frame>> {
    let mut probe = [0u8; 1];
    loop {
        stream
            .set_read_timeout(Some(shared.config.idle_poll))
            .map_err(io_err)?;
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(None), // connection reset: not a protocol error
        }
    }
    stream
        .set_read_timeout(Some(shared.config.frame_timeout))
        .map_err(io_err)?;
    Frame::read_from(&mut &*stream)
}

fn respond(shared: &Shared, mut stream: &TcpStream, frame: Frame) -> std::io::Result<()> {
    match frame {
        Frame::Query(q) => match run_query(shared, &q) {
            Ok((result, elapsed)) => stream_result(shared, &mut stream, &q, &result, elapsed),
            Err(e) => stream.write_all(&Frame::Error(ErrorFrame::from_error(&e)).encode()),
        },
        Frame::Ping => stream.write_all(&Frame::Pong.encode()),
        Frame::Stats => {
            let reply = Frame::StatsReply(stats_value(shared));
            stream.write_all(&reply.encode())
        }
        Frame::Shutdown => stream.write_all(&Frame::Pong.encode()),
        // Response frames arriving at the server are a peer bug; answer
        // with a structured error rather than hanging up silently.
        other => {
            let err = ErrorFrame {
                code: "bad-frame".into(),
                message: format!("server cannot serve a response frame ({other:?})"),
            };
            stream.write_all(&Frame::Error(err).encode())
        }
    }
}

fn run_query(shared: &Shared, q: &QueryFrame) -> Result<(QueryResult, Duration)> {
    let mut req = QueryRequest::new(q.src.clone()).trace(q.trace);
    if let Some(n) = q.limit {
        req = req.limit(n as usize);
    }
    if let Some(us) = q.deadline_us {
        req = req.deadline(SimDuration::from_micros(us));
    }
    if let Some(us) = q.budget_us {
        req = req.budget(SimDuration::from_micros(us));
    }
    if let Some(name) = &q.tier {
        let tier = PlanTier::parse(name)
            .ok_or_else(|| HermesError::Eval(format!("[bad-frame] unknown plan tier {name:?}")))?;
        req = req.tier(tier);
    }
    let start = Instant::now();
    let result = shared.mediator.query(req)?;
    Ok((result, start.elapsed()))
}

/// Stream `result` as `Batch*` + `Done`, batching `batch_rows` rows per
/// frame so a large answer set never forces one giant allocation on
/// either side of the wire.
fn stream_result(
    shared: &Shared,
    stream: &mut &TcpStream,
    q: &QueryFrame,
    result: &QueryResult,
    elapsed: Duration,
) -> std::io::Result<()> {
    let batch = shared.config.batch_rows.max(1);
    for chunk in result.rows.chunks(batch) {
        stream.write_all(&Frame::Batch(chunk.to_vec()).encode())?;
    }
    let trace = if q.trace && !result.trace.is_empty() {
        crate::trace::render(&result.trace)
            .lines()
            .map(str::to_owned)
            .collect()
    } else {
        Vec::new()
    };
    let done = DoneFrame {
        columns: result.columns.iter().map(|c| c.to_string()).collect(),
        rows: result.rows.len() as u64,
        incomplete: result.incomplete,
        elapsed_us: elapsed.as_micros() as u64,
        source_calls: result.stats.actual_calls,
        cache_hits: result.stats.cim_exact + result.stats.cim_equal + result.stats.cim_partial,
        tier_downgrades: result.stats.tier_downgrades,
        trace,
    };
    stream.write_all(&Frame::Done(done).encode())
}

/// The admin-frame payload: server, cache, and socket counters as one
/// nested record, so clients need no schema beyond field names.
fn stats_value(shared: &Shared) -> Value {
    let s = shared.mediator.stats();
    let snap = shared.mediator.caches().stats();
    let server = Record::from_fields(vec![
        ("queries", Value::Int(s.queries as i64)),
        ("admitted", Value::Int(s.admitted as i64)),
        ("shed", Value::Int(s.shed as i64)),
        ("downgraded", Value::Int(s.downgraded as i64)),
        ("source_calls", Value::Int(s.source_calls as i64)),
        ("calls_coalesced", Value::Int(s.calls_coalesced as i64)),
        ("round_trips_saved", Value::Int(s.round_trips_saved as i64)),
        ("subplan_hits", Value::Int(s.subplan_hits as i64)),
    ]);
    let cache_hits = snap.cim.exact_hits + snap.cim.equal_hits + snap.cim.partial_hits;
    let caches = Record::from_fields(vec![
        ("hits", Value::Int(cache_hits as i64)),
        ("misses", Value::Int(snap.cim.misses as i64)),
        ("answer_entries", Value::Int(snap.answer_entries as i64)),
        ("answer_bytes", Value::Int(snap.answer_bytes as i64)),
        (
            "subplans_materialized",
            Value::Int(snap.subplans.materialized as i64),
        ),
    ]);
    let c = &shared.counters;
    let net = Record::from_fields(vec![
        (
            "accepted",
            Value::Int(c.accepted.load(Ordering::Relaxed) as i64),
        ),
        (
            "refused",
            Value::Int(c.refused.load(Ordering::Relaxed) as i64),
        ),
        (
            "requests",
            Value::Int(c.requests.load(Ordering::Relaxed) as i64),
        ),
        (
            "bad_frames",
            Value::Int(c.bad_frames.load(Ordering::Relaxed) as i64),
        ),
    ]);
    Value::Record(Record::from_fields(vec![
        ("server", Value::Record(server)),
        ("caches", Value::Record(caches)),
        ("net", Value::Record(net)),
    ]))
}

/// A query answered over the wire: the rows plus the server's `Done`
/// summary (wall elapsed time, call counts, optional rendered trace).
#[derive(Clone, Debug)]
pub struct RemoteResult {
    /// All rows, reassembled from the batch frames.
    pub rows: Vec<Vec<Value>>,
    /// The terminating summary frame.
    pub done: DoneFrame,
}

/// A blocking request/response client for the frame protocol. One
/// outstanding request at a time; reconnect on error.
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connect (with `TCP_NODELAY` — the protocol is request/response,
    /// Nagle would serialize it at ~25 round trips/s).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(WireClient { stream })
    }

    /// Keep trying to connect until `timeout` elapses — for racing a
    /// server that is still binding (CI smoke tests, bench warmup).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<WireClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match WireClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Run one query and reassemble the streamed response. A server-side
    /// error (including `Shed`) comes back as the mapped [`HermesError`].
    pub fn query(&mut self, q: QueryFrame) -> Result<RemoteResult> {
        self.send(&Frame::Query(q))?;
        let mut rows = Vec::new();
        loop {
            match self.recv()? {
                Frame::Batch(mut batch) => rows.append(&mut batch),
                Frame::Done(done) => return Ok(RemoteResult { rows, done }),
                Frame::Error(e) => return Err(e.into_error()),
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Fetch the server's counters as the nested stats record.
    pub fn stats(&mut self) -> Result<Value> {
        self.send(&Frame::Stats)?;
        match self.recv()? {
            Frame::StatsReply(v) => Ok(v),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    /// Round-trip a ping; returns the wall-clock RTT.
    pub fn ping(&mut self) -> Result<Duration> {
        let start = Instant::now();
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(start.elapsed()),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit. The `Pong` ack arrives before
    /// the server stops accepting.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        self.stream.write_all(&frame.encode()).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Frame> {
        match Frame::read_from(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(HermesError::Io(
                "server closed the connection mid-response".into(),
            )),
        }
    }
}

fn unexpected(frame: &Frame) -> HermesError {
    HermesError::Io(format!("unexpected frame from server: {frame:?}"))
}

// `Read` for `&TcpStream` lets `next_frame` borrow the stream without
// splitting it; this shim is only here so `Frame::read_from(&mut
// &*stream)` type-checks against `R: Read` in both call sites.
#[allow(dead_code)]
fn _assert_stream_reads(mut s: &TcpStream) {
    let _ = std::io::Read::read(&mut s, &mut []);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use crate::server::GateConfig;
    use hermes_domains::slow::SlowDomain;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::{profiles, Network};
    use std::io::Read;

    fn mediator() -> Mediator {
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::cornell());
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            ",
            net,
        )
        .unwrap()
    }

    fn slow_mediator(delay: Duration) -> Mediator {
        let domain = SyntheticDomain::generate(
            "d1",
            42,
            &[
                RelationSpec::uniform("p", 8, 2.0),
                RelationSpec::uniform("r", 8, 2.0),
            ],
        );
        let mut net = Network::new(1);
        net.place(
            Arc::new(SlowDomain::new(Arc::new(domain), delay)),
            profiles::cornell(),
        );
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            chain(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & in(B, d1:r_bf(A)).
            ",
            net,
        )
        .unwrap()
    }

    fn serve(config: ServeConfig) -> (NetServer, String) {
        let server = Arc::new(mediator().to_concurrent(2));
        let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
        let addr = net.addr().to_string();
        (net, addr)
    }

    #[test]
    fn query_over_loopback_matches_direct_query() {
        let (net, addr) = serve(ServeConfig::default());
        let mut expected = mediator().query("?- item(A, B).").unwrap().rows;
        expected.sort();

        let mut client = WireClient::connect(&addr).unwrap();
        let got = client.query(QueryFrame::new("?- item(A, B).")).unwrap();
        let mut rows = got.rows.clone();
        rows.sort();
        assert_eq!(rows, expected);
        assert_eq!(got.done.rows as usize, got.rows.len());
        assert_eq!(got.done.columns, vec!["A".to_string(), "B".to_string()]);
        assert!(!got.done.incomplete);
        net.shutdown();
    }

    #[test]
    fn batches_stream_in_configured_chunks() {
        let config = ServeConfig {
            batch_rows: 3,
            ..ServeConfig::default()
        };
        let (net, addr) = serve(config);
        let mut client = WireClient::connect(&addr).unwrap();
        let got = client.query(QueryFrame::new("?- item(A, B).")).unwrap();
        assert!(got.rows.len() > 3, "need multiple batches to test chunking");
        net.shutdown();
    }

    #[test]
    fn ping_stats_and_repeat_queries_share_one_connection() {
        let (net, addr) = serve(ServeConfig::default());
        let mut client = WireClient::connect(&addr).unwrap();
        client.ping().unwrap();
        let first = client.query(QueryFrame::new("?- item('p_1', B).")).unwrap();
        let again = client.query(QueryFrame::new("?- item('p_1', B).")).unwrap();
        assert_eq!(first.rows, again.rows);
        assert_eq!(again.done.source_calls, 0, "second hit is cached");

        let stats = client.stats().unwrap();
        let Value::Record(rec) = &stats else {
            panic!("stats reply is not a record: {stats:?}");
        };
        let Some(Value::Record(server)) = rec.get("server") else {
            panic!("no server section: {stats:?}");
        };
        assert_eq!(server.get("queries"), Some(&Value::Int(2)));
        let snap = net.net_stats();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.requests, 4, "ping + 2 queries + stats");
        net.shutdown();
    }

    #[test]
    fn parse_errors_come_back_as_error_frames_not_hangups() {
        let (net, addr) = serve(ServeConfig::default());
        let mut client = WireClient::connect(&addr).unwrap();
        let err = client
            .query(QueryFrame::new("this is not a query"))
            .unwrap_err();
        assert!(!matches!(err, HermesError::Io(_)), "got {err:?}");
        // The connection survives a failed query.
        client.ping().unwrap();
        net.shutdown();
    }

    #[test]
    fn unknown_tier_is_rejected_without_running_the_query() {
        let (net, addr) = serve(ServeConfig::default());
        let mut client = WireClient::connect(&addr).unwrap();
        let mut q = QueryFrame::new("?- item(A, B).");
        q.tier = Some("warp-speed".into());
        let err = client.query(q).unwrap_err();
        assert!(err.to_string().contains("bad-frame"), "got {err}");
        assert_eq!(net.mediator().stats().queries, 0);
        net.shutdown();
    }

    #[test]
    fn gate_sheds_surface_as_shed_errors_on_the_wire() {
        let (net, addr) = serve(ServeConfig::default());
        net.mediator().set_gate(GateConfig::bounded(0));
        let mut client = WireClient::connect(&addr).unwrap();
        let err = client.query(QueryFrame::new("?- item(A, B).")).unwrap_err();
        assert!(matches!(err, HermesError::Shed { .. }), "got {err:?}");
        net.shutdown();
    }

    #[test]
    fn full_accept_queue_refuses_with_a_shed_frame() {
        // One worker, zero pending slots: while the worker is stuck in a
        // slow query, any new connection must be refused at the socket.
        let server = Arc::new(slow_mediator(Duration::from_millis(400)).to_concurrent(2));
        let config = ServeConfig {
            workers: 1,
            pending_conns: 0,
            idle_poll: Duration::from_millis(5),
            ..ServeConfig::default()
        };
        let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
        let addr = net.addr().to_string();

        let busy_addr = addr.clone();
        let busy = std::thread::spawn(move || {
            let mut c = WireClient::connect(&busy_addr).unwrap();
            c.query(QueryFrame::new("?- item('p_1', B).")).unwrap()
        });
        // Give the worker time to pick up the slow query.
        std::thread::sleep(Duration::from_millis(100));

        let mut refused = WireClient::connect(&addr).unwrap();
        let err = refused
            .query(QueryFrame::new("?- item('p_1', B)."))
            .unwrap_err();
        assert!(matches!(err, HermesError::Shed { .. }), "got {err:?}");

        busy.join().unwrap();
        let stats = net.shutdown();
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn shutdown_frame_drains_the_server() {
        let (net, addr) = serve(ServeConfig::default());
        let mut client = WireClient::connect(&addr).unwrap();
        client.shutdown_server().unwrap();
        let stats = net.wait();
        assert_eq!(stats.requests, 1);
        // The port is released: a fresh bind to the same address works.
        let addr: SocketAddr = addr.parse().unwrap();
        TcpListener::bind(addr).unwrap();
    }

    #[test]
    fn wall_clock_deadline_binds_to_real_time_over_the_wire() {
        let server = Arc::new(slow_mediator(Duration::from_millis(120)).to_concurrent(2));
        let net = NetServer::bind(server, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = net.addr().to_string();

        let mut client = WireClient::connect(&addr).unwrap();
        // `chain` needs 1 + 8 sequential 120ms calls; a 150ms deadline
        // binds after the first few.
        let mut q = QueryFrame::new("?- chain(A, B).");
        q.deadline_us = Some(150_000);
        let start = Instant::now();
        let out = client.query(q);
        let elapsed = start.elapsed();
        match out {
            Err(HermesError::DeadlineExceeded { .. }) => {}
            Ok(r) => assert!(r.done.incomplete, "fast path must flag partiality"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "deadline did not bind to wall time: {elapsed:?}"
        );
        net.shutdown();
    }

    #[test]
    fn garbage_bytes_close_the_connection_and_count_as_bad_frames() {
        let (net, addr) = serve(ServeConfig::default());
        let mut raw = TcpStream::connect(&addr).unwrap();
        raw.write_all(&[0xff; 64]).unwrap();
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf); // server hangs up (EOF or reset)
        drop(raw);
        // The server is still alive for well-formed clients.
        let mut client = WireClient::connect(&addr).unwrap();
        client.ping().unwrap();
        let stats = net.shutdown();
        assert_eq!(stats.bad_frames, 1);
    }
}
