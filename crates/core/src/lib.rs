//! # hermes-core
//!
//! The HERMES mediator: the paper's optimizer architecture (Figure 1)
//! assembled over the substrate crates.
//!
//! * [`rewrite`] — the rule rewriter (§5): adornment-compatible subgoal
//!   reorderings, access-path rule unfolding, condition pushdown, CIM
//!   routing.
//! * [`cost`] — the rule cost estimator (§7): combines per-call DCSM
//!   estimates through the pipelined nested-loops formulas.
//! * [`exec`] — the executor: pipelined backtracking evaluation on the
//!   virtual clock, with the §4.1 cache/invariant pipeline inline and the
//!   statistics feedback loop into DCSM.
//! * [`mediator`] — the facade tying program + network + CIM + DCSM
//!   together: `query`, `query_interactive`, `explain`.
//!
//! ```
//! use hermes_core::Mediator;
//! use hermes_net::{Network, profiles};
//! use hermes_domains::video::gen::rope_store;
//! use std::sync::Arc;
//!
//! let mut net = Network::new(7);
//! net.place(Arc::new(rope_store()), profiles::maryland());
//! let mut mediator = Mediator::from_source(
//!     "objects_in(V, F, L, O) :- in(O, video:frames_to_objects(V, F, L)).",
//!     net,
//! ).unwrap();
//!
//! let result = mediator.query("?- objects_in('rope', 4, 47, O).").unwrap();
//! assert!(result.rows.len() > 10);
//! // Ask again: the answer cache makes it much faster.
//! let again = mediator.query("?- objects_in('rope', 4, 47, O).").unwrap();
//! assert!(again.t_all < result.t_all);
//! ```

pub mod breaker;
pub mod caches;
pub mod cost;
pub mod cursor;
pub mod exec;
pub mod flight;
pub mod matcache;
pub mod mediator;
pub mod plan;
pub mod rewrite;
pub mod serve;
pub mod server;
pub mod tier;
pub mod trace;

pub use breaker::{Admission, Breaker, BreakerBank, BreakerConfig, BreakerState};
pub use caches::{CacheControl, CachePolicy, CacheSnapshot, CacheTier, InvalidationSweep};
pub use cost::{choose_plan, estimate_plan, CostConfig};
pub use cursor::{InteractiveQuery, InteractiveSummary};
pub use exec::{
    ExecConfig, ExecConfigBuilder, ExecOutcome, ExecStats, Executor, IncompleteReason,
    SubgoalProvenance,
};
pub use flight::{FlightHandle, FlightLeader, FlightRole, InFlightRegistry};
pub use matcache::{MatCache, MatCacheConfig, MatCacheStats, MatLookup, MatRole, MatTicket};
pub use mediator::{Mediator, MediatorConfig, Planned, QueryRequest, QueryResult};
pub use plan::{independence_groups, Plan, PlanStep, Route};
pub use rewrite::{
    bind_query, cache_servable_plans, enumerate_plans, enumerate_plans_with_pushdowns,
    fingerprint_body, fingerprint_rule, query_fingerprint, Fingerprint, PushdownRule,
    RewriteConfig, SubplanKey,
};
pub use serve::{
    NetServer, NetServerStats, RemoteResult, ServeConfig, ServeConfigBuilder, ServeMode, WireClient,
};
pub use server::{ConcurrentMediator, GateConfig, ServerStats};
pub use tier::{select_tier, PlanTier, TierDecision, TierInputs, TierLoad, TierReason};
pub use trace::{TraceEntry, TraceEvent};
