//! Per-site circuit breakers.
//!
//! A flapping or dead site makes every call pay connect timeouts and retry
//! backoff before failing. The breaker isolates it: consecutive transient
//! failures **trip** the breaker (closed → open), an open breaker
//! **short-circuits** calls instantly — no simulated retry time — so the
//! executor falls through to the cache or failover replanning, and after a
//! cooldown the breaker goes **half-open**, admitting a single probe call
//! that either closes it (recovery) or re-opens it. All timing is on the
//! virtual clock, so trip/recover sequences are deterministic and testable.

use hermes_common::{SimDuration, SimInstant};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The classic three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are short-circuited without touching the network.
    Open,
    /// The cooldown elapsed; the next call is a probe.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip a closed breaker.
    pub failure_threshold: u32,
    /// Virtual time an open breaker waits before admitting a probe.
    pub cooldown: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(30),
        }
    }
}

/// What the breaker says about a call that wants to go out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Closed: call normally.
    Allow,
    /// Half-open: call as the recovery probe.
    Probe,
    /// Open: do not call; fail over immediately.
    ShortCircuit,
}

/// One site's breaker.
#[derive(Clone, Debug)]
pub struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<SimInstant>,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
        }
    }
}

impl Breaker {
    /// Current state (open breakers report `HalfOpen` once their cooldown
    /// has elapsed at `now`).
    pub fn state_at(&self, config: &BreakerConfig, now: SimInstant) -> BreakerState {
        match (self.state, self.opened_at) {
            (BreakerState::Open, Some(at)) if now >= at + config.cooldown => BreakerState::HalfOpen,
            (s, _) => s,
        }
    }

    /// Asks whether a call may go out at `now`, advancing open → half-open
    /// when the cooldown has elapsed.
    pub fn admit(&mut self, config: &BreakerConfig, now: SimInstant) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                let cooled = self.opened_at.is_some_and(|at| now >= at + config.cooldown);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::ShortCircuit
                }
            }
        }
    }

    /// Records a successful call. Returns true when this was a half-open
    /// probe closing the breaker (a recovery).
    pub fn record_success(&mut self) -> bool {
        let recovered = self.state == BreakerState::HalfOpen;
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
        recovered
    }

    /// Records a transient failure at `now`. Returns true when this
    /// failure tripped (or re-tripped) the breaker open.
    pub fn record_failure(&mut self, config: &BreakerConfig, now: SimInstant) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open, fresh cooldown.
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= config.failure_threshold.max(1) {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }
}

/// All breakers, keyed by site name. The mediator owns one bank for its
/// lifetime so breaker state persists across queries.
#[derive(Debug, Default)]
pub struct BreakerBank {
    config: BreakerConfig,
    breakers: BTreeMap<Arc<str>, Breaker>,
}

impl BreakerBank {
    /// A bank with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerBank {
            config,
            breakers: BTreeMap::new(),
        }
    }

    /// The bank's tuning.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Replaces the tuning (existing breaker states are kept).
    pub fn set_config(&mut self, config: BreakerConfig) {
        self.config = config;
    }

    /// Admission decision for a call to `site` at `now`.
    pub fn admit(&mut self, site: &str, now: SimInstant) -> Admission {
        let config = self.config;
        self.breakers
            .entry(Arc::from(site))
            .or_default()
            .admit(&config, now)
    }

    /// Records a success; true when the site just recovered.
    pub fn record_success(&mut self, site: &str) -> bool {
        self.breakers
            .get_mut(site)
            .map(|b| b.record_success())
            .unwrap_or(false)
    }

    /// Records a transient failure; true when the breaker just tripped.
    pub fn record_failure(&mut self, site: &str, now: SimInstant) -> bool {
        let config = self.config;
        self.breakers
            .entry(Arc::from(site))
            .or_default()
            .record_failure(&config, now)
    }

    /// The state of `site`'s breaker at `now` (closed when never used).
    pub fn state_at(&self, site: &str, now: SimInstant) -> BreakerState {
        self.breakers
            .get(site)
            .map(|b| b.state_at(&self.config, now))
            .unwrap_or(BreakerState::Closed)
    }

    /// Sites whose breaker is open (still cooling down) at `now` — the set
    /// failover replanning routes around.
    pub fn open_sites(&self, now: SimInstant) -> Vec<Arc<str>> {
        self.breakers
            .iter()
            .filter(|(_, b)| b.state_at(&self.config, now) == BreakerState::Open)
            .map(|(s, _)| s.clone())
            .collect()
    }

    /// Forgets all breaker state.
    pub fn reset(&mut self) {
        self.breakers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_millis(ms)
    }

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_millis(1_000),
        }
    }

    #[test]
    fn trips_after_consecutive_failures_and_short_circuits() {
        let mut b = Breaker::default();
        assert!(!b.record_failure(&cfg(), t(0)));
        assert!(!b.record_failure(&cfg(), t(1)));
        assert!(b.record_failure(&cfg(), t(2))); // third failure trips
        assert_eq!(b.admit(&cfg(), t(3)), Admission::ShortCircuit);
        assert_eq!(b.state_at(&cfg(), t(3)), BreakerState::Open);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::default();
        b.record_failure(&cfg(), t(0));
        b.record_failure(&cfg(), t(1));
        b.record_success();
        // Streak broken: two more failures do not trip.
        assert!(!b.record_failure(&cfg(), t(2)));
        assert!(!b.record_failure(&cfg(), t(3)));
        assert!(b.record_failure(&cfg(), t(4)));
    }

    #[test]
    fn cooldown_half_opens_then_probe_closes_or_reopens() {
        let mut b = Breaker::default();
        for i in 0..3 {
            b.record_failure(&cfg(), t(i));
        }
        // Cooling: short-circuit until t(2) + 1000.
        assert_eq!(b.admit(&cfg(), t(1_001)), Admission::ShortCircuit);
        assert_eq!(b.admit(&cfg(), t(1_002)), Admission::Probe);
        // Failed probe reopens with a fresh cooldown from the failure time.
        assert!(b.record_failure(&cfg(), t(1_002)));
        assert_eq!(b.admit(&cfg(), t(1_500)), Admission::ShortCircuit);
        assert_eq!(b.admit(&cfg(), t(2_002)), Admission::Probe);
        // Successful probe closes.
        assert!(b.record_success());
        assert_eq!(b.admit(&cfg(), t(2_003)), Admission::Allow);
        assert_eq!(b.state_at(&cfg(), t(2_003)), BreakerState::Closed);
    }

    #[test]
    fn bank_keys_by_site_and_lists_open_sites() {
        let mut bank = BreakerBank::new(cfg());
        for i in 0..3 {
            bank.record_failure("milan", t(i));
        }
        bank.record_failure("cornell", t(0));
        assert_eq!(bank.state_at("milan", t(10)), BreakerState::Open);
        assert_eq!(bank.state_at("cornell", t(10)), BreakerState::Closed);
        assert_eq!(bank.state_at("never-seen", t(10)), BreakerState::Closed);
        assert_eq!(bank.open_sites(t(10)), vec![Arc::from("milan") as Arc<str>]);
        // After the cooldown the site is half-open, no longer listed.
        assert!(bank.open_sites(t(5_000)).is_empty());
        bank.reset();
        assert_eq!(bank.state_at("milan", t(10)), BreakerState::Closed);
    }

    #[test]
    fn threshold_of_zero_behaves_like_one() {
        let mut b = Breaker::default();
        let cfg = BreakerConfig {
            failure_threshold: 0,
            cooldown: SimDuration::from_millis(10),
        };
        assert!(b.record_failure(&cfg, t(0)));
        assert_eq!(b.admit(&cfg, t(1)), Admission::ShortCircuit);
    }
}
