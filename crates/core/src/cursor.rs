//! Interactive-mode streaming (§3's second mode of operation).
//!
//! The plan runs on a worker thread; answers cross a rendezvous channel,
//! so the executor is *suspended* between pulls — exactly the "mediator
//! calculates a first set of answers and presents them to the user" loop.
//! Dropping or stopping the handle closes the channel; the executor's next
//! send fails and evaluation unwinds, cancelling outstanding source calls
//! (the paper: "the query processor stops the execution of all the running
//! external programs when they are no longer needed").
//!
//! The cursor inherits the mediator's [`ExecConfig`] verbatim, including
//! `max_parallel_calls`: with `k > 1` the worker dispatches each
//! independence group before the first pull that touches it, so early
//! answers already reflect the overlapped (shorter) virtual timeline, and
//! stopping between pulls abandons only calls not yet dispatched.

use crate::breaker::BreakerBank;
use crate::exec::{ExecConfig, ExecStats, Executor};
use crate::plan::Plan;
use hermes_cim::Cim;
use hermes_common::sync::Mutex;
use hermes_common::{HermesError, SimClock, SimDuration, Value};
use hermes_dcsm::Dcsm;
use hermes_net::Network;
use std::sync::mpsc;
use std::sync::Arc;

/// One streamed answer: the projected row and the virtual time at which it
/// became available.
pub type StreamedAnswer = (Vec<Value>, SimDuration);

/// Final summary of an interactive run.
#[derive(Clone, Debug, Default)]
pub struct InteractiveSummary {
    /// True if the plan ran to completion (not cancelled).
    pub finished: bool,
    /// Total simulated time of the run (to completion or cancellation).
    pub t_all: Option<SimDuration>,
    /// Execution counters (present when the run finished).
    pub stats: Option<ExecStats>,
    /// True when an unavailable source truncated the answers.
    pub incomplete: bool,
    /// The error that ended the run, if any.
    pub error: Option<HermesError>,
}

enum Event {
    Answer(StreamedAnswer),
    Done {
        t_all: SimDuration,
        stats: ExecStats,
        incomplete: bool,
    },
    Failed(HermesError),
}

/// A running interactive query.
pub struct InteractiveQuery {
    rx: Option<mpsc::Receiver<Event>>,
    handle: Option<std::thread::JoinHandle<()>>,
    summary: InteractiveSummary,
    exhausted: bool,
}

impl InteractiveQuery {
    /// Spawns the worker thread (used by `Mediator::query_interactive`).
    pub(crate) fn spawn(
        network: Arc<Network>,
        cim: Arc<Mutex<Cim>>,
        dcsm: Arc<Mutex<Dcsm>>,
        breakers: Option<Arc<Mutex<BreakerBank>>>,
        clock: SimClock,
        config: ExecConfig,
        plan: Plan,
    ) -> Self {
        // Rendezvous channel: the executor blocks until the consumer pulls.
        let (tx, rx) = mpsc::sync_channel::<Event>(0);
        let handle = std::thread::spawn(move || {
            let columns = plan.answer_vars.clone();
            let mut sink = |theta: &hermes_lang::Subst, elapsed: SimDuration| {
                let row: Vec<Value> = columns
                    .iter()
                    .map(|v| theta.get(v).cloned().unwrap_or(Value::Null))
                    .collect();
                tx.send(Event::Answer((row, elapsed))).is_ok()
            };
            let mut executor = Executor::new(&network, cim.as_ref(), dcsm.as_ref(), clock, config);
            if let Some(bank) = breakers.as_ref() {
                executor = executor.with_breakers(bank);
            }
            match executor.run_with_sink(&plan, None, Some(&mut sink)) {
                Ok(outcome) => {
                    let _ = tx.send(Event::Done {
                        t_all: outcome.t_all,
                        stats: outcome.stats,
                        incomplete: outcome.incomplete,
                    });
                }
                Err(e) => {
                    let _ = tx.send(Event::Failed(e));
                }
            }
        });
        InteractiveQuery {
            rx: Some(rx),
            handle: Some(handle),
            summary: InteractiveSummary::default(),
            exhausted: false,
        }
    }

    /// Pulls the next answer; `None` when the stream has ended (finished,
    /// failed, or cancelled).
    pub fn next_answer(&mut self) -> Option<StreamedAnswer> {
        if self.exhausted {
            return None;
        }
        let rx = self.rx.as_ref().expect("receiver live until exhausted");
        match rx.recv() {
            Ok(Event::Answer(a)) => Some(a),
            Ok(Event::Done {
                t_all,
                stats,
                incomplete,
            }) => {
                self.summary.finished = true;
                self.summary.t_all = Some(t_all);
                self.summary.stats = Some(stats);
                self.summary.incomplete = incomplete;
                self.exhausted = true;
                None
            }
            Ok(Event::Failed(e)) => {
                self.summary.error = Some(e);
                self.exhausted = true;
                None
            }
            Err(_) => {
                self.exhausted = true;
                None
            }
        }
    }

    /// Pulls up to `k` answers (the paper's "next set of answers").
    pub fn next_batch(&mut self, k: usize) -> Vec<StreamedAnswer> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            match self.next_answer() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    /// Stops the query (cancelling any outstanding work) and returns the
    /// summary of what ran.
    pub fn stop(mut self) -> InteractiveSummary {
        self.shutdown();
        self.summary.clone()
    }

    fn shutdown(&mut self) {
        if !self.exhausted {
            // Drain anything in flight without blocking (a rendezvous
            // try_recv picks up a sender mid-handshake), then close the
            // channel: the worker's next send fails and it unwinds.
            if let Some(rx) = self.rx.take() {
                while let Ok(ev) = rx.try_recv() {
                    if let Event::Done {
                        t_all,
                        stats,
                        incomplete,
                    } = ev
                    {
                        self.summary.finished = true;
                        self.summary.t_all = Some(t_all);
                        self.summary.stats = Some(stats);
                        self.summary.incomplete = incomplete;
                    }
                }
            }
            self.exhausted = true;
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for InteractiveQuery {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanStep, Route};
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_lang::{CallTemplate, Term};
    use hermes_net::profiles;

    type World = (Arc<Network>, Arc<Mutex<Cim>>, Arc<Mutex<Dcsm>>, Plan);

    fn setup() -> World {
        let domain = SyntheticDomain::generate("d1", 9, &[RelationSpec::uniform("p", 10, 4.0)]);
        let mut net = Network::new(2);
        net.place(Arc::new(domain), profiles::cornell());
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("P"),
                call: CallTemplate::new("d1", "p_ff", vec![]),
                route: Route::Direct,
            }],
            answer_vars: vec![Arc::from("P")],
        };
        (
            Arc::new(net),
            Arc::new(Mutex::new(Cim::new())),
            Arc::new(Mutex::new(Dcsm::new())),
            plan,
        )
    }

    #[test]
    fn stream_then_stop_midway() {
        let (net, cim, dcsm, plan) = setup();
        let mut iq = InteractiveQuery::spawn(
            net,
            cim,
            dcsm,
            None,
            SimClock::new(),
            ExecConfig::default(),
            plan,
        );
        let batch = iq.next_batch(2);
        assert_eq!(batch.len(), 2);
        // Answers carry nondecreasing virtual timestamps.
        assert!(batch[0].1 <= batch[1].1);
        let summary = iq.stop();
        // Cancelled mid-run: not finished, no error.
        assert!(!summary.finished);
        assert!(summary.error.is_none());
    }

    #[test]
    fn stream_to_completion() {
        let (net, cim, dcsm, plan) = setup();
        let mut iq = InteractiveQuery::spawn(
            net.clone(),
            cim,
            dcsm,
            None,
            SimClock::new(),
            ExecConfig::default(),
            plan,
        );
        let mut n = 0;
        while iq.next_answer().is_some() {
            n += 1;
        }
        let summary = iq.stop();
        assert!(summary.finished);
        assert!(n > 0);
        assert_eq!(summary.stats.unwrap().actual_calls, 1);
        assert!(summary.t_all.unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn drop_without_consuming_does_not_hang() {
        let (net, cim, dcsm, plan) = setup();
        let iq = InteractiveQuery::spawn(
            net,
            cim,
            dcsm,
            None,
            SimClock::new(),
            ExecConfig::default(),
            plan,
        );
        drop(iq); // must join cleanly
    }

    #[test]
    fn failure_is_reported() {
        let (_, cim, dcsm, plan) = setup();
        // Empty network: the call's domain is unknown.
        let net = Arc::new(Network::new(1));
        let mut iq = InteractiveQuery::spawn(
            net,
            cim,
            dcsm,
            None,
            SimClock::new(),
            ExecConfig::default(),
            plan,
        );
        assert!(iq.next_answer().is_none());
        let summary = iq.stop();
        assert!(matches!(summary.error, Some(HermesError::UnknownDomain(_))));
    }
}
