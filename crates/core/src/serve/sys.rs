//! Minimal hand-rolled Linux FFI for the epoll reactor.
//!
//! The workspace is zero-external-dep by policy, so the reactor cannot
//! pull in `libc`/`mio`. This module declares exactly the six syscall
//! wrappers the reactor needs — `epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, `writev`, `fcntl` — against the C library
//! std already links, wraps them in RAII types ([`Epoll`], [`EventFd`]),
//! and keeps every `unsafe` block three lines long with the invariant
//! stated beside it. Everything here is `cfg(target_os = "linux")`; on
//! other platforms [`ServeMode::Auto`](super::ServeMode) resolves to the
//! worker-pool server and this module does not exist.

use hermes_common::{HermesError, Result};
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// ---------------------------------------------------------------- ABI

/// One epoll readiness record. On x86-64 the kernel ABI packs this
/// struct (no padding between `events` and `data`); other 64-bit
/// targets use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-chosen token, echoed back verbatim.
    pub data: u64,
}

/// One `writev` span: base pointer + length.
#[repr(C)]
struct IoVec {
    base: *const c_void,
    len: usize,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn os_err(what: &str) -> HermesError {
    HermesError::Io(format!("{what}: {}", std::io::Error::last_os_error()))
}

fn last_errno_would_block() -> bool {
    matches!(
        std::io::Error::last_os_error().kind(),
        std::io::ErrorKind::WouldBlock
    )
}

fn last_errno_interrupted() -> bool {
    std::io::Error::last_os_error().kind() == std::io::ErrorKind::Interrupted
}

// -------------------------------------------------------------- epoll

/// An owned epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // checked before the fd is used.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(os_err("epoll_create1"));
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(os_err("epoll_ctl"));
        }
        Ok(())
    }

    /// Registers `fd` under `token` for `events`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arms `fd`'s interest set.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> Result<()> {
        // A dummy event survives pre-2.6.9 kernels' non-null requirement.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`.
    /// Returns how many entries are valid. EINTR reads as zero events.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> Result<usize> {
        // SAFETY: the buffer pointer and capacity describe `events`
        // exactly; the kernel writes at most `maxevents` entries.
        let rc = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            if last_errno_interrupted() {
                return Ok(0);
            }
            return Err(os_err("epoll_wait"));
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// ------------------------------------------------------------ eventfd

/// A nonblocking eventfd: worker threads `signal()` it to wake the
/// reactor out of `epoll_wait`; the reactor `drain()`s it on wakeup.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub fn new() -> Result<EventFd> {
        // SAFETY: eventfd takes no pointers; negative return checked.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(os_err("eventfd"));
        }
        Ok(EventFd { fd })
    }

    /// The fd to register with epoll.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll waiter. Infallible from
    /// the caller's view: the only failure mode of interest (counter
    /// saturation, EAGAIN) still leaves the fd readable, so the wakeup
    /// is already guaranteed.
    pub fn signal(&self) {
        let one: u64 = 1;
        // SAFETY: writing exactly 8 bytes from a live u64, as the
        // eventfd contract requires.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes all pending signals.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reading exactly 8 bytes into a live u64; EFD_NONBLOCK
        // makes an empty counter return EAGAIN instead of blocking.
        unsafe { read(self.fd, (&mut count as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: the fd is owned and closed exactly once.
        unsafe { close(self.fd) };
    }
}

// ----------------------------------------------------- fd operations

/// Switches `fd` into nonblocking mode (used for accepted sockets; the
/// std `set_nonblocking` would do, but going through one fcntl keeps
/// the raw-fd handling in this module).
pub fn set_nonblocking(fd: RawFd) -> Result<()> {
    // SAFETY: fcntl with F_GETFL/F_SETFL takes no pointers.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(os_err("fcntl(F_GETFL)"));
    }
    // SAFETY: as above.
    let rc = unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
    if rc < 0 {
        return Err(os_err("fcntl(F_SETFL)"));
    }
    Ok(())
}

/// The result of one nonblocking vectored write.
pub enum WriteOutcome {
    /// `n` bytes left the socket buffer.
    Wrote(usize),
    /// The socket is full; re-arm `EPOLLOUT` and try later.
    WouldBlock,
    /// The peer is gone (EPIPE/ECONNRESET/...).
    Closed,
}

/// Writes as many of `bufs` as the socket accepts in one `writev` call.
/// Each `(buf, offset)` pair is a pending buffer and how much of it has
/// already been sent.
pub fn writev_bufs(fd: RawFd, bufs: &[(&[u8], usize)]) -> WriteOutcome {
    const MAX_IOV: usize = 64;
    let iovs: Vec<IoVec> = bufs
        .iter()
        .take(MAX_IOV)
        .map(|(buf, off)| IoVec {
            base: buf[*off..].as_ptr().cast(),
            len: buf.len() - off,
        })
        .collect();
    if iovs.is_empty() {
        return WriteOutcome::Wrote(0);
    }
    // SAFETY: every iovec points into a slice borrowed for this call;
    // the count matches the vector length.
    let rc = unsafe { writev(fd, iovs.as_ptr(), iovs.len() as c_int) };
    if rc >= 0 {
        WriteOutcome::Wrote(rc as usize)
    } else if last_errno_would_block() {
        WriteOutcome::WouldBlock
    } else if last_errno_interrupted() {
        WriteOutcome::Wrote(0)
    } else {
        WriteOutcome::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.signal();
        ev.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert!({ events[0].events } & EPOLLIN != 0);

        // Drained: level-triggered readiness goes away.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_writev_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd()).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 1).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert!({ events[0].events } & EPOLLIN != 0);

        // Vectored write with a partially sent first buffer.
        let first = b"xxhello ";
        let second = b"world";
        match writev_bufs(server.as_raw_fd(), &[(first, 2), (second, 0)]) {
            WriteOutcome::Wrote(n) => assert_eq!(n, 11),
            _ => panic!("writev failed"),
        }
        let mut got = [0u8; 11];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");

        ep.delete(server.as_raw_fd()).unwrap();
    }
}
