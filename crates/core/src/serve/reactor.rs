//! The epoll reactor engine ([`ServeMode::Reactor`]): one reactor
//! thread owns every socket; the worker pool owns every query.
//!
//! # Event loop
//!
//! The reactor registers three kinds of fds with one epoll instance:
//! the listener (token 0), an eventfd the workers signal when a query
//! completes (token 1), and one token per connection. Each wakeup it
//!
//! 1. accepts as many connections as are pending (refusing past
//!    [`max_conns`](super::ServeConfig::max_conns) with a typed
//!    `shed`/`accept-queue-full` frame),
//! 2. reads ready sockets nonblockingly into each connection's
//!    incremental [`FrameDecoder`] — partial frames simply stay
//!    buffered until more bytes arrive,
//! 3. dispatches decoded `Query` frames to the bounded worker pool and
//!    answers admin frames (`Ping`/`Stats`/`Shutdown`) inline,
//! 4. collects completions the workers parked in the shared vector,
//!    slots each into its connection's FIFO, and
//! 5. flushes: response bytes move from the FIFO into a bounded write
//!    queue (≤ [`WQ_CAP`] buffered bytes per connection) and out
//!    through vectored writes, re-arming `EPOLLOUT` on short writes.
//!
//! # Pipelining
//!
//! A client may send many queries without waiting. Each gets a
//! sequence-numbered FIFO slot at decode time, so responses go back
//! **in request order** no matter which worker finishes first. At most
//! [`pipeline_depth`](super::ServeConfig::pipeline_depth) queries per
//! connection may be unanswered; one more is answered (in order, in
//! its own slot) with `shed`/`pipeline-full` instead of queueing
//! unboundedly — the connection-level face of the admission gate, one
//! layer below it. Sheds here never reach the mediator, so the gate
//! invariant `admitted + shed == queries` is untouched.
//!
//! # Deadlines
//!
//! A sweep every [`idle_poll`](super::ServeConfig::idle_poll) evicts
//! connections that (a) started a frame and stalled past
//! `frame_timeout` (slow loris), (b) sat idle past `idle_timeout` when
//! one is configured, or (c) stopped draining their responses during
//! shutdown. Eviction is counted in `NetServerStats::evicted`.
//!
//! [`ServeMode::Reactor`]: super::ServeMode::Reactor
//! [`FrameDecoder`]: hermes_common::frame::FrameDecoder

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hermes_common::frame::{Frame, FrameDecoder};
use hermes_common::Result;

use super::sys::{
    set_nonblocking, writev_bufs, Epoll, EpollEvent, EventFd, WriteOutcome, EPOLLERR, EPOLLIN,
    EPOLLOUT, EPOLLRDHUP,
};
use super::{io_err, refuse, respond_bytes, shed_bytes, Shared};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKEUP: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection cap on buffered-but-unsent response bytes. Past it,
/// completed responses stay parked in their FIFO slots until the peer
/// drains — backpressure instead of unbounded memory.
const WQ_CAP: usize = 4 << 20;

/// Bytes read per readiness event before yielding to other
/// connections. Level-triggered epoll re-reports the remainder, so a
/// firehose peer cannot starve the loop.
const READ_BUDGET: usize = 64 * 1024;

pub(crate) struct ReactorServer {
    pub(crate) shared: Arc<Shared>,
    pub(crate) addr: SocketAddr,
    wakeup: Arc<EventFd>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    pub(crate) fn bind(shared: Arc<Shared>, addr: impl ToSocketAddrs) -> Result<ReactorServer> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;

        let epoll = Epoll::new()?;
        let wakeup = Arc::new(EventFd::new()?);
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wakeup.fd(), EPOLLIN, TOKEN_WAKEUP)?;

        let (job_tx, job_rx) = sync_channel::<Job>(shared.config.queue_depth.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                let job_rx = job_rx.clone();
                let completions = completions.clone();
                let wakeup = wakeup.clone();
                std::thread::spawn(move || worker_loop(&shared, &job_rx, &completions, &wakeup))
            })
            .collect();

        let reactor = {
            let shared = shared.clone();
            let wakeup = wakeup.clone();
            std::thread::spawn(move || {
                Reactor {
                    shared,
                    epoll,
                    wakeup,
                    listener: Some(listener),
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    job_tx,
                    completions,
                    last_sweep: Instant::now(),
                }
                .run();
            })
        };

        Ok(ReactorServer {
            shared,
            addr,
            wakeup,
            reactor: Some(reactor),
            workers,
        })
    }

    /// Kicks the reactor out of `epoll_wait` so it notices the stop
    /// flag immediately instead of at the next `idle_poll` tick.
    pub(crate) fn wake(&self) {
        self.wakeup.signal();
    }

    pub(crate) fn join(&mut self) {
        // The reactor exits once stopped and drained; dropping it drops
        // the job sender, which drains and releases the workers.
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A query headed for the worker pool, tagged with the FIFO slot its
/// response must fill.
struct Job {
    token: u64,
    seq: u64,
    frame: Frame,
}

/// A finished response headed back to the reactor.
struct Completion {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// One response slot in a connection's FIFO. `bytes` is `None` while a
/// worker is still computing the response.
struct Pending {
    seq: u64,
    bytes: Option<Vec<u8>>,
}

/// Per-connection state machine: decoder in, FIFO + write queue out.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    decoder: FrameDecoder,
    /// Responses owed to the peer, in request order.
    pending: VecDeque<Pending>,
    /// Queries currently at the worker pool (pending slots with
    /// `bytes == None`); bounded by `pipeline_depth`.
    inflight: usize,
    next_seq: u64,
    /// Encoded responses being written: `(buffer, bytes already sent)`.
    wq: VecDeque<(Vec<u8>, usize)>,
    wq_bytes: usize,
    /// The epoll interest set currently registered.
    interest: u32,
    /// Last byte read from or successfully written to the peer.
    last_activity: Instant,
    /// When the currently-incomplete frame started arriving.
    frame_since: Option<Instant>,
    /// Peer half-closed its write side; drain what's owed, then close.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: RawFd) -> Conn {
        Conn {
            stream,
            fd,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            inflight: 0,
            next_seq: 0,
            wq: VecDeque::new(),
            wq_bytes: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            last_activity: Instant::now(),
            frame_since: None,
            eof: false,
        }
    }

    fn drained(&self) -> bool {
        self.pending.is_empty() && self.wq.is_empty()
    }
}

struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    wakeup: Arc<EventFd>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    job_tx: SyncSender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    last_sweep: Instant,
}

impl Reactor {
    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        loop {
            if self.shared.stop.load(Ordering::Relaxed) {
                // Drain mode: stop accepting, stop reading, finish
                // writing what each connection is owed, then leave.
                if let Some(listener) = self.listener.take() {
                    let _ = self.epoll.delete(listener.as_raw_fd());
                }
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for token in tokens {
                    self.flush_conn(token);
                }
                if self.conns.is_empty() {
                    return;
                }
            }

            let timeout = self.shared.config.idle_poll.as_millis().clamp(1, 1000) as i32;
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => return, // epoll itself failing is unrecoverable
            };
            for ev in events.iter().take(n) {
                // Copy out of the (packed) event record first.
                let token = { ev.data };
                let bits = { ev.events };
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKEUP => self.wakeup.drain(),
                    _ => self.conn_ready(token, bits),
                }
            }
            self.deliver_completions();
            if self.last_sweep.elapsed() >= self.shared.config.idle_poll {
                self.sweep();
                self.last_sweep = Instant::now();
            }
        }
    }

    /// Accepts every pending connection; past `max_conns` each is told
    /// why (`shed`/`accept-queue-full`) and closed.
    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.shared.config.max_conns.max(1) {
                        self.shared.counters.refused.fetch_add(1, Ordering::Relaxed);
                        refuse(stream);
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    if set_nonblocking(fd).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP, token).is_err() {
                        continue;
                    }
                    self.shared
                        .counters
                        .accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(token, Conn::new(stream, fd));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        if bits & EPOLLERR != 0 {
            self.close(token);
            return;
        }
        // EPOLLHUP/EPOLLRDHUP arrive alongside the final readable data;
        // the read path sees the EOF itself, so both funnel into it.
        if bits & (EPOLLIN | EPOLLRDHUP | super::sys::EPOLLHUP) != 0 {
            self.read_conn(token);
        }
        if bits & EPOLLOUT != 0 {
            self.flush_conn(token);
        }
    }

    /// Reads what the socket has (up to `READ_BUDGET`), decodes every
    /// complete frame, dispatches queries, answers admin frames inline.
    fn read_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut close = false;
        let mut chunk = [0u8; 16 * 1024];
        let mut consumed = 0;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.decoder.feed(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    consumed += n;
                    if consumed >= READ_BUDGET {
                        break; // level-triggered: the rest re-reports
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }

        while !close {
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => {
                    self.shared
                        .counters
                        .requests
                        .fetch_add(1, Ordering::Relaxed);
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    match frame {
                        Frame::Query(_) => {
                            let depth = self.shared.config.pipeline_depth.max(1);
                            if conn.inflight >= depth {
                                self.shared
                                    .counters
                                    .pre_gate_shed
                                    .fetch_add(1, Ordering::Relaxed);
                                conn.pending.push_back(Pending {
                                    seq,
                                    bytes: Some(shed_bytes("pipeline-full")),
                                });
                            } else {
                                match self.job_tx.try_send(Job { token, seq, frame }) {
                                    Ok(()) => {
                                        conn.inflight += 1;
                                        conn.pending.push_back(Pending { seq, bytes: None });
                                    }
                                    Err(TrySendError::Full(_)) => {
                                        self.shared
                                            .counters
                                            .pre_gate_shed
                                            .fetch_add(1, Ordering::Relaxed);
                                        conn.pending.push_back(Pending {
                                            seq,
                                            bytes: Some(shed_bytes("worker-queue-full")),
                                        });
                                    }
                                    Err(TrySendError::Disconnected(_)) => {
                                        close = true;
                                    }
                                }
                            }
                        }
                        other => {
                            let (bytes, is_shutdown) = respond_bytes(&self.shared, other);
                            conn.pending.push_back(Pending {
                                seq,
                                bytes: Some(bytes),
                            });
                            if is_shutdown {
                                self.shared.stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.shared
                        .counters
                        .bad_frames
                        .fetch_add(1, Ordering::Relaxed);
                    close = true;
                }
            }
        }
        if conn.eof && conn.decoder.mid_frame() {
            // EOF in the middle of a frame is a protocol error, same as
            // the pool path's "connection closed mid-frame".
            self.shared
                .counters
                .bad_frames
                .fetch_add(1, Ordering::Relaxed);
            close = true;
        }
        conn.frame_since = if conn.decoder.mid_frame() {
            conn.frame_since.or_else(|| Some(Instant::now()))
        } else {
            None
        };

        if close {
            self.close(token);
        } else {
            self.flush_conn(token);
        }
    }

    /// Moves ready FIFO heads into the bounded write queue and writes as
    /// much as the socket accepts; re-arms interest; closes when done.
    fn flush_conn(&mut self, token: u64) {
        let stop = self.shared.stop.load(Ordering::Relaxed);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut closed = false;
        loop {
            // Promote completed responses, FIFO order, under the cap.
            while conn.wq_bytes < WQ_CAP {
                match conn.pending.front_mut() {
                    Some(p) if p.bytes.is_some() => {
                        let bytes = p.bytes.take().unwrap_or_default();
                        conn.pending.pop_front();
                        if !bytes.is_empty() {
                            conn.wq_bytes += bytes.len();
                            conn.wq.push_back((bytes, 0));
                        }
                    }
                    _ => break,
                }
            }
            if conn.wq.is_empty() {
                break;
            }
            let bufs: Vec<(&[u8], usize)> = conn
                .wq
                .iter()
                .map(|(b, off)| (b.as_slice(), *off))
                .collect();
            match writev_bufs(conn.fd, &bufs) {
                WriteOutcome::Wrote(0) => break, // EINTR; EPOLLOUT re-arms below
                WriteOutcome::Wrote(mut n) => {
                    conn.last_activity = Instant::now();
                    while n > 0 {
                        let Some((buf, off)) = conn.wq.front_mut() else {
                            break;
                        };
                        let remaining = buf.len() - *off;
                        if n >= remaining {
                            n -= remaining;
                            conn.wq_bytes -= buf.len();
                            conn.wq.pop_front();
                        } else {
                            *off += n;
                            n = 0;
                        }
                    }
                }
                WriteOutcome::WouldBlock => break,
                WriteOutcome::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        if closed || ((conn.eof || stop) && conn.drained()) {
            self.close(token);
            return;
        }
        let mut want = EPOLLRDHUP;
        if !stop && !conn.eof {
            want |= EPOLLIN;
        }
        if !conn.wq.is_empty() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            let fd = conn.fd;
            if self.epoll.modify(fd, want, token).is_ok() {
                conn.interest = want;
            }
        }
    }

    /// Slots worker completions into their FIFO positions and flushes
    /// the touched connections. Completions for closed connections are
    /// discarded — the work was wasted, the server is unharmed.
    fn deliver_completions(&mut self) {
        let ready = match self.completions.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => return,
        };
        let mut touched = Vec::new();
        for completion in ready {
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            if let Some(slot) = conn
                .pending
                .iter_mut()
                .find(|p| p.seq == completion.seq && p.bytes.is_none())
            {
                slot.bytes = Some(completion.bytes);
                conn.inflight = conn.inflight.saturating_sub(1);
                if !touched.contains(&completion.token) {
                    touched.push(completion.token);
                }
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }

    /// Evicts deadline violators: mid-frame stalls (slow loris), idle
    /// timeouts, and connections not draining during shutdown.
    fn sweep(&mut self) {
        let now = Instant::now();
        let cfg = &self.shared.config;
        let stop = self.shared.stop.load(Ordering::Relaxed);
        let evict: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                let loris = c
                    .frame_since
                    .is_some_and(|since| now.duration_since(since) > cfg.frame_timeout);
                let idle = cfg.idle_timeout.is_some_and(|limit| {
                    c.drained()
                        && c.decoder.buffered() == 0
                        && now.duration_since(c.last_activity) > limit
                });
                let drain_stall = stop
                    && !c.wq.is_empty()
                    && now.duration_since(c.last_activity) > cfg.frame_timeout;
                loris || idle || drain_stall
            })
            .map(|(t, _)| *t)
            .collect();
        for token in evict {
            self.shared.counters.evicted.fetch_add(1, Ordering::Relaxed);
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.fd);
            // Dropping the stream closes the fd and resets anything the
            // peer still had in flight.
        }
    }
}

fn worker_loop(
    shared: &Shared,
    jobs: &Mutex<Receiver<Job>>,
    completions: &Mutex<Vec<Completion>>,
    wakeup: &EventFd,
) {
    loop {
        let job = {
            let guard = match jobs.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            guard.recv()
        };
        match job {
            Ok(job) => {
                let (bytes, _) = respond_bytes(shared, job.frame);
                if let Ok(mut guard) = completions.lock() {
                    guard.push(Completion {
                        token: job.token,
                        seq: job.seq,
                        bytes,
                    });
                }
                wakeup.signal();
            }
            Err(_) => return, // reactor gone and queue drained
        }
    }
}
