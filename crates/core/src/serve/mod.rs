//! The network serving core: two TCP servers over
//! [`ConcurrentMediator`] speaking the [`hermes_common::frame`] binary
//! protocol, plus the [`WireClient`] the REPL and load generator use.
//!
//! # Two server shapes, one dispatch
//!
//! * [`ServeMode::Pool`] ([`pool`]) is the PR 9 worker-pool server: one
//!   handler thread per in-flight connection, blocking reads, bounded
//!   accept queue. Simple, portable, and capped — max concurrent
//!   connections equals the pool size.
//! * [`ServeMode::Reactor`] ([`reactor`], Linux) is a readiness-driven
//!   epoll event loop: reactor thread(s) own every socket with
//!   nonblocking per-connection state machines (incremental frame
//!   decode, bounded write queues with vectored writes, read deadlines
//!   that evict slow-loris peers), while queries execute on the same
//!   bounded worker pool and wake the reactor through an eventfd.
//!   Connections are decoupled from compute: tens of thousands of open
//!   connections cost a few hundred bytes each, not a thread. Requests
//!   on one connection may be **pipelined** — multiple queries in
//!   flight, responses strictly FIFO, depth bounded by
//!   [`ServeConfig::pipeline_depth`] with a typed `shed`/`pipeline-full`
//!   wire error past it.
//!
//! [`ServeMode::Auto`] (the default) picks the reactor on Linux and the
//! pool elsewhere; both modes share the dispatch path (`respond_bytes`),
//! so the PR 6 admission-gate invariant `admitted + shed == queries`
//! holds identically in either.
//!
//! Queries run with the mediator in **wall-clock** mode (unless
//! configured off): deadlines, budgets, and retry backoff bind to real
//! elapsed time, which is what a network client means by "2 seconds".
//! The serial simulated-clock path is untouched.

pub(crate) mod pool;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
#[cfg(target_os = "linux")]
pub(crate) mod sys;

use std::io::Write;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hermes_common::frame::{DoneFrame, ErrorFrame, Frame, FrameDecoder, QueryFrame};
use hermes_common::{HermesError, Record, Result, SimDuration, Value};

use crate::mediator::{QueryRequest, QueryResult};
use crate::server::ConcurrentMediator;
use crate::tier::PlanTier;

/// Which serving engine a [`NetServer`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// The readiness-driven epoll reactor on Linux, the worker pool
    /// elsewhere.
    #[default]
    Auto,
    /// The worker-pool server: one thread per in-flight connection.
    Pool,
    /// The epoll reactor (Linux). On other platforms this falls back to
    /// the pool — the wire behavior is identical, only the connection
    /// ceiling differs.
    Reactor,
}

impl ServeMode {
    /// The engine that actually runs on this platform.
    pub fn resolved(self) -> ServeMode {
        match self {
            ServeMode::Pool => ServeMode::Pool,
            ServeMode::Auto | ServeMode::Reactor => {
                if cfg!(target_os = "linux") {
                    ServeMode::Reactor
                } else {
                    ServeMode::Pool
                }
            }
        }
    }

    /// Stable name (`pool` | `reactor`) for stats and CLI flags.
    pub fn name(self) -> &'static str {
        match self.resolved() {
            ServeMode::Pool => "pool",
            _ => "reactor",
        }
    }

    /// Parses a CLI-facing mode name.
    pub fn parse(s: &str) -> Option<ServeMode> {
        match s {
            "auto" => Some(ServeMode::Auto),
            "pool" => Some(ServeMode::Pool),
            "reactor" => Some(ServeMode::Reactor),
            _ => None,
        }
    }
}

/// How a [`NetServer`] binds, pools, pipelines, and sheds.
///
/// The struct is `#[non_exhaustive]`: outside `hermes-core`, construct
/// it with [`ServeConfig::builder`] (consistent with
/// [`ExecConfig`](crate::ExecConfig)) so future knobs aren't breaking
/// changes.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Which serving engine to run (default [`ServeMode::Auto`]).
    pub mode: ServeMode,
    /// Query worker threads. In pool mode this is also the number of
    /// connections served at once; in reactor mode connections are
    /// independent of workers.
    pub workers: usize,
    /// Pool mode: accepted connections waiting for a free handler; one
    /// more connection than this is refused with
    /// `shed`/`accept-queue-full`.
    pub pending_conns: usize,
    /// Reactor mode: open-connection ceiling; a connection past it is
    /// refused with `shed`/`accept-queue-full`.
    pub max_conns: usize,
    /// Reactor mode: queries in flight per connection. A pipelined
    /// request past this depth is answered (in order) with a
    /// `shed`/`pipeline-full` error frame instead of queueing unboundedly.
    pub pipeline_depth: usize,
    /// Reactor mode: bound on queries queued for the worker pool across
    /// all connections; past it requests shed with
    /// `shed`/`worker-queue-full`.
    pub queue_depth: usize,
    /// Rows per `Batch` frame in a streamed response.
    pub batch_rows: usize,
    /// Serve queries on the wall-anchored clock (real deadlines). Off
    /// restores virtual time — useful for deterministic protocol tests.
    pub wall_clock: bool,
    /// How often idle handlers, the accept loop, and the reactor's
    /// deadline sweep run; bounds shutdown latency, not request latency.
    pub idle_poll: Duration,
    /// How long a started frame may take to finish arriving before the
    /// connection is dropped as stalled (the slow-loris deadline). The
    /// reactor also applies it to write-stalled peers during drain.
    pub frame_timeout: Duration,
    /// Reactor mode: evict a connection with no traffic and no pending
    /// work for this long. `None` (the default) keeps idle connections
    /// forever — cheap under the reactor, they cost no thread.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServeMode::Auto,
            workers: 8,
            pending_conns: 64,
            max_conns: 10_000,
            pipeline_depth: 32,
            queue_depth: 1024,
            batch_rows: 512,
            wall_clock: true,
            idle_poll: Duration::from_millis(50),
            frame_timeout: Duration::from_secs(30),
            idle_timeout: None,
        }
    }
}

impl ServeConfig {
    /// A builder starting from [`ServeConfig::default`] — the only way
    /// to construct a customized config outside `hermes-core`.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builds a [`ServeConfig`]; obtain one via [`ServeConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

macro_rules! serve_builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        impl ServeConfigBuilder {
            $(
                $(#[$doc])*
                pub fn $field(mut self, value: $ty) -> Self {
                    self.config.$field = value;
                    self
                }
            )*

            /// Finishes the build.
            pub fn build(self) -> ServeConfig {
                self.config
            }
        }
    };
}

serve_builder_setters! {
    /// See [`ServeConfig::mode`].
    mode: ServeMode,
    /// See [`ServeConfig::workers`].
    workers: usize,
    /// See [`ServeConfig::pending_conns`].
    pending_conns: usize,
    /// See [`ServeConfig::max_conns`].
    max_conns: usize,
    /// See [`ServeConfig::pipeline_depth`].
    pipeline_depth: usize,
    /// See [`ServeConfig::queue_depth`].
    queue_depth: usize,
    /// See [`ServeConfig::batch_rows`].
    batch_rows: usize,
    /// See [`ServeConfig::wall_clock`].
    wall_clock: bool,
    /// See [`ServeConfig::idle_poll`].
    idle_poll: Duration,
    /// See [`ServeConfig::frame_timeout`].
    frame_timeout: Duration,
    /// See [`ServeConfig::idle_timeout`].
    idle_timeout: Option<Duration>,
}

/// Socket-level counters, one step below [`crate::server::ServerStats`]:
/// these count connections and frames, the gate counts queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetServerStats {
    /// Connections handed to a worker (pool) or registered with the
    /// reactor.
    pub accepted: u64,
    /// Connections refused because the pending queue (pool) or the
    /// connection ceiling (reactor) was full.
    pub refused: u64,
    /// Frames served (all kinds).
    pub requests: u64,
    /// Connections dropped for protocol errors (malformed frames).
    pub bad_frames: u64,
    /// Connections evicted by a deadline: slow-loris reads that never
    /// finished a frame, idle timeouts, write-stalled drains.
    pub evicted: u64,
    /// Requests shed before reaching the mediator (pipeline depth or
    /// worker queue exceeded); gate sheds are counted by the gate, not
    /// here.
    pub pre_gate_shed: u64,
}

#[derive(Default)]
pub(crate) struct NetCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) bad_frames: AtomicU64,
    pub(crate) evicted: AtomicU64,
    pub(crate) pre_gate_shed: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            pre_gate_shed: self.pre_gate_shed.load(Ordering::Relaxed),
        }
    }
}

/// State both server engines share: the mediator, the config, the stop
/// flag, and the socket counters.
pub(crate) struct Shared {
    pub(crate) mediator: Arc<ConcurrentMediator>,
    pub(crate) config: ServeConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) counters: NetCounters,
}

/// A running server — a worker pool behind either an accept loop
/// ([`ServeMode::Pool`]) or an epoll reactor ([`ServeMode::Reactor`]).
/// Dropping without calling [`NetServer::shutdown`] or
/// [`NetServer::wait`] detaches the threads (they stop at the next
/// stop-flag poll once the process asks).
pub struct NetServer {
    inner: Inner,
}

enum Inner {
    Pool(pool::PoolServer),
    #[cfg(target_os = "linux")]
    Reactor(reactor::ReactorServer),
}

impl NetServer {
    /// Bind `addr` and start serving `mediator` in the background.
    /// `addr` may use port 0; the picked port is in [`NetServer::addr`].
    pub fn bind(
        mediator: Arc<ConcurrentMediator>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> Result<NetServer> {
        mediator.set_wall_clock(config.wall_clock);
        let mode = config.mode.resolved();
        let shared = Arc::new(Shared {
            mediator,
            config,
            stop: AtomicBool::new(false),
            counters: NetCounters::default(),
        });
        let inner = match mode {
            #[cfg(target_os = "linux")]
            ServeMode::Reactor => Inner::Reactor(reactor::ReactorServer::bind(shared, addr)?),
            _ => Inner::Pool(pool::PoolServer::bind(shared, addr)?),
        };
        Ok(NetServer { inner })
    }

    fn shared(&self) -> &Arc<Shared> {
        match &self.inner {
            Inner::Pool(p) => &p.shared,
            #[cfg(target_os = "linux")]
            Inner::Reactor(r) => &r.shared,
        }
    }

    /// The engine actually serving (resolves [`ServeMode::Auto`]).
    pub fn mode(&self) -> ServeMode {
        match &self.inner {
            Inner::Pool(_) => ServeMode::Pool,
            #[cfg(target_os = "linux")]
            Inner::Reactor(_) => ServeMode::Reactor,
        }
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::Pool(p) => p.addr,
            #[cfg(target_os = "linux")]
            Inner::Reactor(r) => r.addr,
        }
    }

    /// Socket-level counters so far.
    pub fn net_stats(&self) -> NetServerStats {
        self.shared().counters.snapshot()
    }

    /// The mediator being served.
    pub fn mediator(&self) -> &Arc<ConcurrentMediator> {
        &self.shared().mediator
    }

    /// True once a `Shutdown` frame (or [`NetServer::shutdown`]) has
    /// asked the server to drain.
    pub fn stopping(&self) -> bool {
        self.shared().stop.load(Ordering::Relaxed)
    }

    /// Block until the server drains — i.e. until a client sends a
    /// `Shutdown` frame. Returns the final socket counters.
    pub fn wait(self) -> NetServerStats {
        match self.inner {
            Inner::Pool(mut p) => {
                p.join();
                p.shared.counters.snapshot()
            }
            #[cfg(target_os = "linux")]
            Inner::Reactor(mut r) => {
                r.join();
                r.shared.counters.snapshot()
            }
        }
    }

    /// Ask the server to stop, drain in-flight responses, and join all
    /// threads. Returns the final socket counters.
    pub fn shutdown(self) -> NetServerStats {
        self.shared().stop.store(true, Ordering::Relaxed);
        match &self.inner {
            Inner::Pool(_) => {}
            #[cfg(target_os = "linux")]
            Inner::Reactor(r) => r.wake(),
        }
        self.wait()
    }
}

pub(crate) fn io_err(e: std::io::Error) -> HermesError {
    HermesError::Io(e.to_string())
}

/// Tell a refused connection *why* before closing, so the client can
/// count socket sheds instead of seeing a bare reset.
pub(crate) fn refuse(stream: TcpStream) {
    let frame = Frame::Error(ErrorFrame {
        code: "shed".into(),
        message: "accept-queue-full".into(),
    });
    let mut stream = stream;
    let _ = stream.write_all(&frame.encode());
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Encodes a pre-gate shed response (`pipeline-full`,
/// `worker-queue-full`): the typed wire error a request gets when the
/// reactor refuses it before the admission gate ever sees a query.
pub(crate) fn shed_bytes(reason: &str) -> Vec<u8> {
    Frame::Error(ErrorFrame {
        code: "shed".into(),
        message: reason.into(),
    })
    .encode()
}

// ------------------------------------------------- shared dispatch

/// Serves one request frame to bytes: the complete encoded response
/// stream (`Batch* Done`, `Error`, `Pong`, `StatsReply`). The second
/// return is true when the frame asked the server to drain. Both server
/// engines call this — pool handlers directly, the reactor from its
/// worker pool — so wire behavior and the gate invariant are identical.
pub(crate) fn respond_bytes(shared: &Shared, frame: Frame) -> (Vec<u8>, bool) {
    match frame {
        Frame::Query(q) => match run_query(shared, &q) {
            Ok((result, elapsed)) => (result_bytes(shared, &q, &result, elapsed), false),
            Err(e) => (Frame::Error(ErrorFrame::from_error(&e)).encode(), false),
        },
        Frame::Ping => (Frame::Pong.encode(), false),
        Frame::Stats => (Frame::StatsReply(stats_value(shared)).encode(), false),
        Frame::Shutdown => (Frame::Pong.encode(), true),
        // Response frames arriving at the server are a peer bug; answer
        // with a structured error rather than hanging up silently.
        other => {
            let err = ErrorFrame {
                code: "bad-frame".into(),
                message: format!("server cannot serve a response frame ({other:?})"),
            };
            (Frame::Error(err).encode(), false)
        }
    }
}

fn run_query(shared: &Shared, q: &QueryFrame) -> Result<(QueryResult, Duration)> {
    let mut req = QueryRequest::new(q.src.clone()).trace(q.trace);
    if let Some(n) = q.limit {
        req = req.limit(n as usize);
    }
    if let Some(us) = q.deadline_us {
        req = req.deadline(SimDuration::from_micros(us));
    }
    if let Some(us) = q.budget_us {
        req = req.budget(SimDuration::from_micros(us));
    }
    if let Some(name) = &q.tier {
        let tier = PlanTier::parse(name)
            .ok_or_else(|| HermesError::Eval(format!("[bad-frame] unknown plan tier {name:?}")))?;
        req = req.tier(tier);
    }
    let start = Instant::now();
    let result = shared.mediator.query(req)?;
    Ok((result, start.elapsed()))
}

/// Encodes `result` as `Batch*` + `Done`, batching `batch_rows` rows
/// per frame so a large answer set stays incrementally decodable on the
/// client side.
fn result_bytes(
    shared: &Shared,
    q: &QueryFrame,
    result: &QueryResult,
    elapsed: Duration,
) -> Vec<u8> {
    let batch = shared.config.batch_rows.max(1);
    let mut out = Vec::new();
    for chunk in result.rows.chunks(batch) {
        out.extend(Frame::Batch(chunk.to_vec()).encode());
    }
    let trace = if q.trace && !result.trace.is_empty() {
        crate::trace::render(&result.trace)
            .lines()
            .map(str::to_owned)
            .collect()
    } else {
        Vec::new()
    };
    let done = DoneFrame {
        columns: result.columns.iter().map(|c| c.to_string()).collect(),
        rows: result.rows.len() as u64,
        incomplete: result.incomplete,
        elapsed_us: elapsed.as_micros() as u64,
        source_calls: result.stats.actual_calls,
        cache_hits: result.stats.cim_exact + result.stats.cim_equal + result.stats.cim_partial,
        tier_downgrades: result.stats.tier_downgrades,
        trace,
    };
    out.extend(Frame::Done(done).encode());
    out
}

/// The admin-frame payload: server, cache, and socket counters as one
/// nested record, so clients need no schema beyond field names.
fn stats_value(shared: &Shared) -> Value {
    let s = shared.mediator.stats();
    let snap = shared.mediator.caches().stats();
    let server = Record::from_fields(vec![
        ("queries", Value::Int(s.queries as i64)),
        ("admitted", Value::Int(s.admitted as i64)),
        ("shed", Value::Int(s.shed as i64)),
        ("downgraded", Value::Int(s.downgraded as i64)),
        ("source_calls", Value::Int(s.source_calls as i64)),
        ("calls_coalesced", Value::Int(s.calls_coalesced as i64)),
        ("round_trips_saved", Value::Int(s.round_trips_saved as i64)),
        ("subplan_hits", Value::Int(s.subplan_hits as i64)),
    ]);
    let cache_hits = snap.cim.exact_hits + snap.cim.equal_hits + snap.cim.partial_hits;
    let caches = Record::from_fields(vec![
        ("hits", Value::Int(cache_hits as i64)),
        ("misses", Value::Int(snap.cim.misses as i64)),
        ("answer_entries", Value::Int(snap.answer_entries as i64)),
        ("answer_bytes", Value::Int(snap.answer_bytes as i64)),
        (
            "subplans_materialized",
            Value::Int(snap.subplans.materialized as i64),
        ),
    ]);
    let c = shared.counters.snapshot();
    let net = Record::from_fields(vec![
        ("mode", Value::str(shared.config.mode.name())),
        ("accepted", Value::Int(c.accepted as i64)),
        ("refused", Value::Int(c.refused as i64)),
        ("requests", Value::Int(c.requests as i64)),
        ("bad_frames", Value::Int(c.bad_frames as i64)),
        ("evicted", Value::Int(c.evicted as i64)),
        ("pre_gate_shed", Value::Int(c.pre_gate_shed as i64)),
    ]);
    Value::Record(Record::from_fields(vec![
        ("server", Value::Record(server)),
        ("caches", Value::Record(caches)),
        ("net", Value::Record(net)),
    ]))
}

// ------------------------------------------------------- wire client

/// A query answered over the wire: the rows plus the server's `Done`
/// summary (wall elapsed time, call counts, optional rendered trace).
#[derive(Clone, Debug)]
pub struct RemoteResult {
    /// All rows, reassembled from the batch frames.
    pub rows: Vec<Vec<Value>>,
    /// The terminating summary frame.
    pub done: DoneFrame,
}

/// A client for the frame protocol, built on the incremental
/// [`FrameDecoder`] so it supports both classic request/response
/// ([`WireClient::query`]) and **pipelining**: queue several queries
/// with [`WireClient::send_query`], then collect responses — which the
/// server returns strictly in send order — with
/// [`WireClient::recv_result`] or the nonblocking
/// [`WireClient::poll_result`].
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Queries sent whose terminating frame has not yet been received.
    in_flight: usize,
    /// Batch rows of the response currently being reassembled.
    partial: Vec<Vec<Value>>,
}

impl WireClient {
    /// Connect (with `TCP_NODELAY` — the protocol is request/response,
    /// Nagle would serialize it at ~25 round trips/s).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(WireClient {
            stream,
            decoder: FrameDecoder::new(),
            in_flight: 0,
            partial: Vec::new(),
        })
    }

    /// Keep trying to connect until `timeout` elapses — for racing a
    /// server that is still binding (CI smoke tests, bench warmup).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<WireClient> {
        let deadline = Instant::now() + timeout;
        loop {
            match WireClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Run one query and reassemble the streamed response. A server-side
    /// error (including `Shed`) comes back as the mapped [`HermesError`].
    pub fn query(&mut self, q: QueryFrame) -> Result<RemoteResult> {
        self.send_query(q)?;
        self.recv_result()
    }

    /// Queue a query without waiting for its response (pipelining). The
    /// server answers pipelined queries in FIFO order; collect each
    /// response with [`WireClient::recv_result`] / `poll_result`.
    pub fn send_query(&mut self, q: QueryFrame) -> Result<()> {
        self.send(&Frame::Query(q))?;
        self.in_flight += 1;
        Ok(())
    }

    /// Queries sent but not yet fully answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Blockingly receive the next pipelined response, in send order.
    pub fn recv_result(&mut self) -> Result<RemoteResult> {
        loop {
            let frame = self.recv()?;
            if let Some(out) = self.absorb(frame)? {
                return out;
            }
        }
    }

    /// Nonblocking receive: drains whatever bytes the socket has and
    /// returns one completed response if available. `Ok(None)` means no
    /// complete response yet — call again after more bytes arrive.
    pub fn poll_result(&mut self) -> Result<Option<Result<RemoteResult>>> {
        // First consume frames already buffered from an earlier read.
        while let Some(frame) = self.decoder.next_frame()? {
            if let Some(out) = self.absorb(frame)? {
                return Ok(Some(out));
            }
        }
        self.stream.set_nonblocking(true).map_err(io_err)?;
        let outcome = self.fill_nonblocking();
        self.stream.set_nonblocking(false).map_err(io_err)?;
        outcome?;
        while let Some(frame) = self.decoder.next_frame()? {
            if let Some(out) = self.absorb(frame)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn fill_nonblocking(&mut self) -> Result<()> {
        use std::io::Read;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.in_flight > 0 && self.decoder.buffered() == 0 {
                        return Err(HermesError::Io(
                            "server closed the connection mid-response".into(),
                        ));
                    }
                    return Ok(());
                }
                Ok(n) => self.decoder.feed(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(())
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Folds one received frame into the response being assembled.
    /// `Some(..)` completes a response (successful or failed).
    #[allow(clippy::type_complexity)]
    fn absorb(&mut self, frame: Frame) -> Result<Option<Result<RemoteResult>>> {
        match frame {
            Frame::Batch(mut rows) => {
                self.partial.append(&mut rows);
                Ok(None)
            }
            Frame::Done(done) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                let rows = std::mem::take(&mut self.partial);
                Ok(Some(Ok(RemoteResult { rows, done })))
            }
            Frame::Error(e) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                self.partial.clear();
                Ok(Some(Err(e.into_error())))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the server's counters as the nested stats record. Requires
    /// no pipelined queries outstanding.
    pub fn stats(&mut self) -> Result<Value> {
        debug_assert_eq!(self.in_flight, 0, "stats amid pipelined queries");
        self.send(&Frame::Stats)?;
        match self.recv()? {
            Frame::StatsReply(v) => Ok(v),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    /// Round-trip a ping; returns the wall-clock RTT.
    pub fn ping(&mut self) -> Result<Duration> {
        debug_assert_eq!(self.in_flight, 0, "ping amid pipelined queries");
        let start = Instant::now();
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(start.elapsed()),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to drain and exit. The `Pong` ack arrives before
    /// the server stops accepting.
    pub fn shutdown_server(&mut self) -> Result<()> {
        debug_assert_eq!(self.in_flight, 0, "shutdown amid pipelined queries");
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            Frame::Error(e) => Err(e.into_error()),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        self.stream.write_all(&frame.encode()).map_err(io_err)
    }

    fn recv(&mut self) -> Result<Frame> {
        use std::io::Read;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let want = self.decoder.needed().min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(HermesError::Io(
                        "server closed the connection mid-response".into(),
                    ))
                }
                Ok(n) => self.decoder.feed(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

fn unexpected(frame: &Frame) -> HermesError {
    HermesError::Io(format!("unexpected frame from server: {frame:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use crate::server::GateConfig;
    use hermes_domains::slow::SlowDomain;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::{profiles, Network};
    use std::io::Read;
    use std::net::TcpListener;

    fn mediator() -> Mediator {
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::cornell());
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            ",
            net,
        )
        .unwrap()
    }

    fn slow_mediator(delay: Duration) -> Mediator {
        let domain = SyntheticDomain::generate(
            "d1",
            42,
            &[
                RelationSpec::uniform("p", 8, 2.0),
                RelationSpec::uniform("r", 8, 2.0),
            ],
        );
        let mut net = Network::new(1);
        net.place(
            Arc::new(SlowDomain::new(Arc::new(domain), delay)),
            profiles::cornell(),
        );
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            chain(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & in(B, d1:r_bf(A)).
            ",
            net,
        )
        .unwrap()
    }

    fn serve(config: ServeConfig) -> (NetServer, String) {
        let server = Arc::new(mediator().to_concurrent(2));
        let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
        let addr = net.addr().to_string();
        (net, addr)
    }

    /// Runs `body` under the pool engine and (on Linux) the reactor, so
    /// every wire behavior is pinned identical across both.
    fn in_both_modes(body: impl Fn(ServeMode)) {
        body(ServeMode::Pool);
        if cfg!(target_os = "linux") {
            body(ServeMode::Reactor);
        }
    }

    #[test]
    fn auto_mode_resolves_per_platform_and_names_are_stable() {
        let resolved = ServeMode::Auto.resolved();
        if cfg!(target_os = "linux") {
            assert_eq!(resolved, ServeMode::Reactor);
        } else {
            assert_eq!(resolved, ServeMode::Pool);
        }
        assert_eq!(ServeMode::Pool.name(), "pool");
        assert_eq!(ServeMode::parse("reactor"), Some(ServeMode::Reactor));
        assert_eq!(ServeMode::parse("auto"), Some(ServeMode::Auto));
        assert_eq!(ServeMode::parse("turbo"), None);
    }

    #[test]
    fn builder_sets_every_knob() {
        let config = ServeConfig::builder()
            .mode(ServeMode::Pool)
            .workers(3)
            .pending_conns(7)
            .max_conns(11)
            .pipeline_depth(5)
            .queue_depth(13)
            .batch_rows(17)
            .wall_clock(false)
            .idle_poll(Duration::from_millis(19))
            .frame_timeout(Duration::from_millis(23))
            .idle_timeout(Some(Duration::from_millis(29)))
            .build();
        assert_eq!(config.mode, ServeMode::Pool);
        assert_eq!(config.workers, 3);
        assert_eq!(config.pending_conns, 7);
        assert_eq!(config.max_conns, 11);
        assert_eq!(config.pipeline_depth, 5);
        assert_eq!(config.queue_depth, 13);
        assert_eq!(config.batch_rows, 17);
        assert!(!config.wall_clock);
        assert_eq!(config.idle_poll, Duration::from_millis(19));
        assert_eq!(config.frame_timeout, Duration::from_millis(23));
        assert_eq!(config.idle_timeout, Some(Duration::from_millis(29)));
    }

    #[test]
    fn query_over_loopback_matches_direct_query() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            assert_eq!(net.mode(), mode.resolved());
            let mut expected = mediator().query("?- item(A, B).").unwrap().rows;
            expected.sort();

            let mut client = WireClient::connect(&addr).unwrap();
            let got = client.query(QueryFrame::new("?- item(A, B).")).unwrap();
            let mut rows = got.rows.clone();
            rows.sort();
            assert_eq!(rows, expected);
            assert_eq!(got.done.rows as usize, got.rows.len());
            assert_eq!(got.done.columns, vec!["A".to_string(), "B".to_string()]);
            assert!(!got.done.incomplete);
            net.shutdown();
        });
    }

    #[test]
    fn batches_stream_in_configured_chunks() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).batch_rows(3).build());
            let mut client = WireClient::connect(&addr).unwrap();
            let got = client.query(QueryFrame::new("?- item(A, B).")).unwrap();
            assert!(got.rows.len() > 3, "need multiple batches to test chunking");
            net.shutdown();
        });
    }

    #[test]
    fn ping_stats_and_repeat_queries_share_one_connection() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut client = WireClient::connect(&addr).unwrap();
            client.ping().unwrap();
            let first = client.query(QueryFrame::new("?- item('p_1', B).")).unwrap();
            let again = client.query(QueryFrame::new("?- item('p_1', B).")).unwrap();
            assert_eq!(first.rows, again.rows);
            assert_eq!(again.done.source_calls, 0, "second hit is cached");

            let stats = client.stats().unwrap();
            let Value::Record(rec) = &stats else {
                panic!("stats reply is not a record: {stats:?}");
            };
            let Some(Value::Record(server)) = rec.get("server") else {
                panic!("no server section: {stats:?}");
            };
            assert_eq!(server.get("queries"), Some(&Value::Int(2)));
            let Some(Value::Record(net_rec)) = rec.get("net") else {
                panic!("no net section: {stats:?}");
            };
            assert_eq!(
                net_rec.get("mode"),
                Some(&Value::str(mode.name())),
                "stats must name the serving engine"
            );
            let snap = net.net_stats();
            assert_eq!(snap.accepted, 1);
            assert_eq!(snap.requests, 4, "ping + 2 queries + stats");
            net.shutdown();
        });
    }

    #[test]
    fn parse_errors_come_back_as_error_frames_not_hangups() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut client = WireClient::connect(&addr).unwrap();
            let err = client
                .query(QueryFrame::new("this is not a query"))
                .unwrap_err();
            assert!(!matches!(err, HermesError::Io(_)), "got {err:?}");
            // The connection survives a failed query.
            client.ping().unwrap();
            net.shutdown();
        });
    }

    #[test]
    fn unknown_tier_is_rejected_without_running_the_query() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut client = WireClient::connect(&addr).unwrap();
            let mut q = QueryFrame::new("?- item(A, B).");
            q.tier = Some("warp-speed".into());
            let err = client.query(q).unwrap_err();
            assert!(err.to_string().contains("bad-frame"), "got {err}");
            assert_eq!(net.mediator().stats().queries, 0);
            net.shutdown();
        });
    }

    #[test]
    fn gate_sheds_surface_as_shed_errors_on_the_wire() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            net.mediator().set_gate(GateConfig::bounded(0));
            let mut client = WireClient::connect(&addr).unwrap();
            let err = client.query(QueryFrame::new("?- item(A, B).")).unwrap_err();
            assert!(matches!(err, HermesError::Shed { .. }), "got {err:?}");
            net.shutdown();
        });
    }

    #[test]
    fn full_accept_queue_refuses_with_a_shed_frame() {
        // Pool-specific: one worker, zero pending slots — while the
        // worker is stuck in a slow query, any new connection must be
        // refused at the socket. (The reactor has no such ceiling; its
        // equivalent is `max_conns`, covered in tests/reactor.rs.)
        let server = Arc::new(slow_mediator(Duration::from_millis(400)).to_concurrent(2));
        let config = ServeConfig::builder()
            .mode(ServeMode::Pool)
            .workers(1)
            .pending_conns(0)
            .idle_poll(Duration::from_millis(5))
            .build();
        let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
        let addr = net.addr().to_string();

        let busy_addr = addr.clone();
        let busy = std::thread::spawn(move || {
            let mut c = WireClient::connect(&busy_addr).unwrap();
            c.query(QueryFrame::new("?- item('p_1', B).")).unwrap()
        });
        // Give the worker time to pick up the slow query.
        std::thread::sleep(Duration::from_millis(100));

        let mut refused = WireClient::connect(&addr).unwrap();
        let err = refused
            .query(QueryFrame::new("?- item('p_1', B)."))
            .unwrap_err();
        assert!(matches!(err, HermesError::Shed { .. }), "got {err:?}");

        busy.join().unwrap();
        let stats = net.shutdown();
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn shutdown_frame_drains_the_server() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut client = WireClient::connect(&addr).unwrap();
            client.shutdown_server().unwrap();
            let stats = net.wait();
            assert_eq!(stats.requests, 1);
            // The port is released: a fresh bind to the same address works.
            let addr: SocketAddr = addr.parse().unwrap();
            TcpListener::bind(addr).unwrap();
        });
    }

    #[test]
    fn wall_clock_deadline_binds_to_real_time_over_the_wire() {
        let server = Arc::new(slow_mediator(Duration::from_millis(120)).to_concurrent(2));
        let net = NetServer::bind(server, "127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = net.addr().to_string();

        let mut client = WireClient::connect(&addr).unwrap();
        // `chain` needs 1 + 8 sequential 120ms calls; a 150ms deadline
        // binds after the first few.
        let mut q = QueryFrame::new("?- chain(A, B).");
        q.deadline_us = Some(150_000);
        let start = Instant::now();
        let out = client.query(q);
        let elapsed = start.elapsed();
        match out {
            Err(HermesError::DeadlineExceeded { .. }) => {}
            Ok(r) => assert!(r.done.incomplete, "fast path must flag partiality"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "deadline did not bind to wall time: {elapsed:?}"
        );
        net.shutdown();
    }

    #[test]
    fn garbage_bytes_close_the_connection_and_count_as_bad_frames() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut raw = TcpStream::connect(&addr).unwrap();
            raw.write_all(&[0xff; 64]).unwrap();
            let mut buf = Vec::new();
            let _ = raw.read_to_end(&mut buf); // server hangs up (EOF or reset)
            drop(raw);
            // The server is still alive for well-formed clients.
            let mut client = WireClient::connect(&addr).unwrap();
            client.ping().unwrap();
            let stats = net.shutdown();
            assert_eq!(stats.bad_frames, 1);
        });
    }

    #[test]
    fn pipelined_queries_come_back_in_order_via_the_client() {
        in_both_modes(|mode| {
            let (net, addr) = serve(ServeConfig::builder().mode(mode).build());
            let mut client = WireClient::connect(&addr).unwrap();
            for _ in 0..4 {
                client
                    .send_query(QueryFrame::new("?- item(A, B)."))
                    .unwrap();
            }
            assert_eq!(client.in_flight(), 4);
            let baseline = client.recv_result().unwrap().rows.len();
            while client.in_flight() > 0 {
                let got = client.recv_result().unwrap();
                assert_eq!(got.rows.len(), baseline);
            }
            net.shutdown();
        });
    }

    #[test]
    fn poll_result_is_nonblocking_until_the_response_lands() {
        let (net, addr) = serve(ServeConfig::default());
        let mut client = WireClient::connect(&addr).unwrap();
        assert!(client.poll_result().unwrap().is_none(), "nothing in flight");
        client
            .send_query(QueryFrame::new("?- item(A, B)."))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let got = loop {
            if let Some(out) = client.poll_result().unwrap() {
                break out.unwrap();
            }
            assert!(Instant::now() < deadline, "response never arrived");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(!got.rows.is_empty());
        assert_eq!(client.in_flight(), 0);
        net.shutdown();
    }
}
