//! The worker-pool server engine ([`ServeMode::Pool`]): one *accept*
//! thread and `workers` handler threads. The accept thread runs a
//! non-blocking poll loop so it can notice shutdown promptly; accepted
//! sockets flow to the handlers through a **bounded** queue. When the
//! queue is full the connection is refused at the socket with a
//! `shed`/`accept-queue-full` error frame — this is the socket-level
//! face of the PR 6 admission gate: the gate sheds *queries* under
//! concurrency pressure, the accept queue sheds *connections* before
//! they ever cost a worker.
//!
//! Each handler owns one connection at a time and serves its frames
//! request/response: `Query` → `Batch*` + `Done` (or `Error`),
//! `Stats` → `StatsReply`, `Ping` → `Pong`, `Shutdown` → `Pong` then a
//! graceful drain. Handlers poll for the stop flag between frames
//! (bounded by `idle_poll`), so `shutdown`/a `Shutdown` frame drains in
//! bounded time without cutting off an in-flight response.
//!
//! The cost of this simplicity is the connection ceiling: a handler
//! holds its connection until EOF, so at most `workers` clients are
//! served at once regardless of how idle they are. The
//! [`reactor`](super::reactor) engine removes that ceiling.
//!
//! [`ServeMode::Pool`]: super::ServeMode::Pool

use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use hermes_common::frame::Frame;
use hermes_common::Result;

use super::{io_err, refuse, respond_bytes, Shared};

pub(crate) struct PoolServer {
    pub(crate) shared: Arc<Shared>,
    pub(crate) addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PoolServer {
    pub(crate) fn bind(shared: Arc<Shared>, addr: impl ToSocketAddrs) -> Result<PoolServer> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;

        let workers = shared.config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(shared.config.pending_conns);
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };

        Ok(PoolServer {
            shared,
            addr,
            accept: Some(accept),
            workers: handles,
        })
    }

    pub(crate) fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return; // drops `tx`; workers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {
                    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(stream)) => {
                    shared.counters.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.idle_poll);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(shared.config.idle_poll),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            guard.recv()
        };
        match conn {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => return, // accept loop gone and queue drained
        }
    }
}

/// Serve one connection request/response until EOF, a protocol error,
/// or drain. Errors on the socket just close the connection — the
/// server itself never dies from a bad peer.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match next_frame(shared, &stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(_) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (bytes, is_shutdown) = respond_bytes(shared, frame);
        if (&stream).write_all(&bytes).is_err() {
            return; // peer went away mid-response
        }
        if is_shutdown {
            shared.stop.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// Wait for the next frame, polling the stop flag while the connection
/// is idle. Once a frame's first byte arrives it must finish within
/// `frame_timeout`. `Ok(None)` means clean EOF or drain.
fn next_frame(shared: &Shared, stream: &TcpStream) -> Result<Option<Frame>> {
    let mut probe = [0u8; 1];
    loop {
        stream
            .set_read_timeout(Some(shared.config.idle_poll))
            .map_err(io_err)?;
        match stream.peek(&mut probe) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(None), // connection reset: not a protocol error
        }
    }
    stream
        .set_read_timeout(Some(shared.config.frame_timeout))
        .map_err(io_err)?;
    Frame::read_from(&mut &*stream)
}
