//! The pipelined plan executor.
//!
//! Evaluation is nested-loops with left-to-right backtracking (the §7
//! execution model) on the mediator's virtual clock:
//!
//! * every answer of a domain call carries a *charge schedule* — the first
//!   answer costs the call's `t_first`, later answers amortize the
//!   remaining `t_all − t_first` — so time-to-first-answer and early
//!   termination behave like the real pipelined system;
//! * CIM-routed calls run the §4.1 pipeline: exact/equality hits answer
//!   from the cache, subset (partial) hits yield the cached prefix fast
//!   and issue the actual call *in parallel* on the virtual timeline
//!   (configurable, for the Figure 5 ablation);
//! * completed actual calls feed the DCSM statistics cache and (for
//!   CIM-routed calls) the answer cache, closing the feedback loop;
//! * a source that is temporarily unavailable fails the query unless the
//!   cache can still serve it — then the result is delivered but flagged
//!   incomplete, the paper's §1 motivation for result caching.

use crate::breaker::{Admission, BreakerBank};
use crate::flight::{FlightRole, InFlightRegistry};
use crate::matcache::{MatCache, MatLookup, MatRole, MatTicket};
use crate::plan::{Plan, PlanStep, Route};
use crate::tier::{PlanTier, TierReason};
use crate::trace::{TraceEntry, TraceEvent};
use hermes_cim::{CimPreview, CimResolution, CimView};
use hermes_common::sync::Mutex;
use hermes_common::{
    CallPattern, GroundCall, HermesError, PatArg, Result, Rng64, SimClock, SimDuration, SimInstant,
    Value,
};
use hermes_dcsm::DcsmView;
use hermes_lang::{Relop, Subst, Term};
use hermes_net::{Network, RemoteOutcome};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A streaming answer sink: receives each answer binding and the elapsed
/// virtual time; returning `false` stops the run.
pub type AnswerSink<'s> = &'s mut dyn FnMut(&Subst, SimDuration) -> bool;

/// Executor knobs.
///
/// The struct is `#[non_exhaustive]`: outside `hermes-core`, construct it
/// with [`ExecConfig::builder`] (or start from [`ExecConfig::default`] and
/// assign fields) so new knobs can be added without breaking callers.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Issue the actual call concurrently with serving cached partial
    /// answers (§4.1: "it is possible to make the actual domain call in
    /// parallel whenever a partial answer set is obtained").
    pub partial_parallel: bool,
    /// Feed observed call costs into DCSM.
    pub record_stats: bool,
    /// Store completed CIM-routed calls into the answer cache.
    pub store_results: bool,
    /// Per-query memoization of identical ground calls (§7 footnote's
    /// duplicate elimination; off by default to match assumption 3(b)).
    pub memoize_calls: bool,
    /// Simulated milliseconds per fact row scanned.
    pub fact_row_ms: f64,
    /// Collect a structured execution trace (off by default; costs an
    /// allocation per event).
    pub collect_trace: bool,
    /// Extra attempts after a call finds its site unavailable (covers the
    /// §1 "temporary unavailability" case when the cache cannot help).
    /// `0` means **no retries**: the first unavailability is final.
    pub retry_attempts: u32,
    /// Base of the capped exponential backoff: retry `k` waits
    /// `retry_backoff_ms * 2^(k-1)` simulated ms (plus jitter), capped at
    /// [`retry_backoff_cap_ms`](Self::retry_backoff_cap_ms).
    pub retry_backoff_ms: f64,
    /// Ceiling on a single backoff sleep.
    pub retry_backoff_cap_ms: f64,
    /// Relative jitter added to each backoff sleep (`0.1` = up to +10%),
    /// drawn from a seeded stream so runs stay deterministic.
    pub retry_jitter_frac: f64,
    /// Seed of the backoff-jitter stream.
    pub retry_seed: u64,
    /// Optional virtual-clock deadline, measured from the start of the
    /// run and checked at every call boundary. When it fires, evaluation
    /// unwinds cleanly: the answers produced so far are returned with
    /// per-subgoal completeness provenance (strict mode instead fails
    /// with [`HermesError::DeadlineExceeded`]).
    pub deadline: Option<SimDuration>,
    /// Fail deadline-exceeded runs with an error instead of returning
    /// partial answers.
    pub deadline_strict: bool,
    /// Concurrent in-flight calls allowed when an *independence group* of
    /// the plan (consecutive calls sharing no unbound variables) is
    /// dispatched. `1` — the default — disables group dispatch entirely
    /// and preserves the paper's sequential pipelined executor exactly;
    /// `k > 1` overlaps up to `k` of a group's domain calls on the
    /// virtual timeline.
    pub max_parallel_calls: usize,
    /// Within one dispatched group, let repeated `(site, function)` calls
    /// piggyback on the first one's round trip: the repeats pay transfer
    /// time but not connect + RTT.
    pub batch_calls: bool,
    /// Simulated mediator-side milliseconds to put one call of a
    /// dispatched group in flight.
    pub dispatch_overhead_ms: f64,
    /// The plan tier this run starts at. `Full` — the default — is the
    /// paper-exact executor; the cheaper tiers restrict which calls may
    /// go over the wire (see [`crate::tier`]).
    pub tier: PlanTier,
    /// Optional per-query time budget on the virtual clock. Unlike a
    /// deadline, burning through the budget does not abort: it steps the
    /// active tier down one level (one-way) and re-arms. Pair it with a
    /// larger `deadline` to guarantee the downgrade fires first.
    pub budget: Option<SimDuration>,
    /// Estimated `T_all` (DCSM, milliseconds) at or under which a remote
    /// call still qualifies for the `CachedPlusCheapRemote` tier.
    pub cheap_call_ms: f64,
    /// Consult the subplan materialization cache ([`crate::matcache`]):
    /// serve repeated plans from their materialized answers, coalesce
    /// concurrent identical plans into one computation, and store
    /// complete results for later queries. Off by default — the
    /// paper-exact serial path recomputes every plan. Requires a cache
    /// attached via [`Executor::with_matcache`]; a no-op without one.
    pub share_subplans: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            partial_parallel: true,
            record_stats: true,
            store_results: true,
            memoize_calls: false,
            fact_row_ms: 0.002,
            collect_trace: false,
            retry_attempts: 0,
            retry_backoff_ms: 500.0,
            retry_backoff_cap_ms: 8_000.0,
            retry_jitter_frac: 0.1,
            retry_seed: 0x4245_4b45_5321,
            deadline: None,
            deadline_strict: false,
            max_parallel_calls: 1,
            batch_calls: true,
            dispatch_overhead_ms: 0.05,
            tier: PlanTier::Full,
            budget: None,
            cheap_call_ms: 250.0,
            share_subplans: false,
        }
    }
}

impl ExecConfig {
    /// A builder starting from [`ExecConfig::default`] — the only way to
    /// construct a customized config outside `hermes-core`.
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder {
            config: ExecConfig::default(),
        }
    }
}

/// Builds an [`ExecConfig`]; obtain one via [`ExecConfig::builder`].
#[derive(Clone, Copy, Debug)]
pub struct ExecConfigBuilder {
    config: ExecConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        impl ExecConfigBuilder {
            $(
                $(#[$doc])*
                pub fn $field(mut self, value: $ty) -> Self {
                    self.config.$field = value;
                    self
                }
            )*

            /// Finishes the build.
            pub fn build(self) -> ExecConfig {
                self.config
            }
        }
    };
}

builder_setters! {
    /// See [`ExecConfig::partial_parallel`].
    partial_parallel: bool,
    /// See [`ExecConfig::record_stats`].
    record_stats: bool,
    /// See [`ExecConfig::store_results`].
    store_results: bool,
    /// See [`ExecConfig::memoize_calls`].
    memoize_calls: bool,
    /// See [`ExecConfig::fact_row_ms`].
    fact_row_ms: f64,
    /// See [`ExecConfig::collect_trace`].
    collect_trace: bool,
    /// See [`ExecConfig::retry_attempts`].
    retry_attempts: u32,
    /// See [`ExecConfig::retry_backoff_ms`].
    retry_backoff_ms: f64,
    /// See [`ExecConfig::retry_backoff_cap_ms`].
    retry_backoff_cap_ms: f64,
    /// See [`ExecConfig::retry_jitter_frac`].
    retry_jitter_frac: f64,
    /// See [`ExecConfig::retry_seed`].
    retry_seed: u64,
    /// See [`ExecConfig::deadline`].
    deadline: Option<SimDuration>,
    /// See [`ExecConfig::deadline_strict`].
    deadline_strict: bool,
    /// See [`ExecConfig::max_parallel_calls`].
    max_parallel_calls: usize,
    /// See [`ExecConfig::batch_calls`].
    batch_calls: bool,
    /// See [`ExecConfig::dispatch_overhead_ms`].
    dispatch_overhead_ms: f64,
    /// See [`ExecConfig::tier`].
    tier: PlanTier,
    /// See [`ExecConfig::budget`].
    budget: Option<SimDuration>,
    /// See [`ExecConfig::cheap_call_ms`].
    cheap_call_ms: f64,
    /// See [`ExecConfig::share_subplans`].
    share_subplans: bool,
}

/// Execution counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Call steps entered (including repeats from backtracking).
    pub calls_attempted: u64,
    /// Calls that actually reached a source over the network.
    pub actual_calls: u64,
    /// CIM exact hits.
    pub cim_exact: u64,
    /// CIM equality-invariant hits.
    pub cim_equal: u64,
    /// CIM partial (subset-invariant) hits.
    pub cim_partial: u64,
    /// CIM misses.
    pub cim_miss: u64,
    /// Misses executed through an invariant substitute call.
    pub substituted_calls: u64,
    /// Calls answered from the per-query memo.
    pub memo_hits: u64,
    /// Actual calls skipped because the consumer stopped early.
    pub cancelled_calls: u64,
    /// Call attempts that found their site unavailable.
    pub unavailable: u64,
    /// Retries issued after unavailability.
    pub retries: u64,
    /// Bytes received from sources.
    pub bytes: u64,
    /// Breakers tripped open by consecutive failures.
    pub breaker_trips: u64,
    /// Calls short-circuited by an open breaker (no network time paid).
    pub breaker_short_circuits: u64,
    /// Probe calls admitted by half-open breakers.
    pub breaker_probes: u64,
    /// Breakers closed by a successful probe.
    pub breaker_recoveries: u64,
    /// Runs aborted by the deadline.
    pub deadline_aborts: u64,
    /// Actual calls whose answer set arrived truncated (injected fault).
    pub truncated_calls: u64,
    /// Independence groups dispatched concurrently.
    pub parallel_groups: u64,
    /// Calls put in flight as part of a dispatched group.
    pub overlapped_calls: u64,
    /// Group calls that piggybacked on an earlier call's round trip.
    pub batched_calls: u64,
    /// Simulated microseconds saved by overlap (serial sum − makespan).
    pub overlap_saved_us: u64,
    /// Calls that joined another query's identical in-flight call instead
    /// of opening their own (single-flight followers).
    pub calls_coalesced: u64,
    /// Coalesced calls actually served by the leader's published outcome —
    /// each one is a source round trip this query never paid. (A follower
    /// whose leader failed falls back to its own call and saves nothing.)
    pub round_trips_saved: u64,
    /// Mid-execution tier downgrades fired by budget pressure.
    pub tier_downgrades: u64,
    /// Remote calls skipped because the active tier forbade them.
    pub tier_skipped_calls: u64,
    /// Runs served whole from a materialized subplan entry.
    pub subplan_hits: u64,
    /// Complete plan results admitted into the subplan cache.
    pub subplans_materialized: u64,
    /// Runs served by another query's in-flight subplan computation
    /// (single-flight followers at the plan level).
    pub subplans_coalesced: u64,
    /// Complete plan results the subplan cache refused to admit
    /// (admission price or byte budget).
    pub subplan_rejections: u64,
}

impl ExecStats {
    /// Adds `other`'s counters into `self` — used to carry the work a
    /// failed plan attempt did into the result of the plan that finally
    /// answered (failover must not make burned calls disappear).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.calls_attempted += other.calls_attempted;
        self.actual_calls += other.actual_calls;
        self.cim_exact += other.cim_exact;
        self.cim_equal += other.cim_equal;
        self.cim_partial += other.cim_partial;
        self.cim_miss += other.cim_miss;
        self.substituted_calls += other.substituted_calls;
        self.memo_hits += other.memo_hits;
        self.cancelled_calls += other.cancelled_calls;
        self.unavailable += other.unavailable;
        self.retries += other.retries;
        self.bytes += other.bytes;
        self.breaker_trips += other.breaker_trips;
        self.breaker_short_circuits += other.breaker_short_circuits;
        self.breaker_probes += other.breaker_probes;
        self.breaker_recoveries += other.breaker_recoveries;
        self.deadline_aborts += other.deadline_aborts;
        self.truncated_calls += other.truncated_calls;
        self.parallel_groups += other.parallel_groups;
        self.overlapped_calls += other.overlapped_calls;
        self.batched_calls += other.batched_calls;
        self.overlap_saved_us += other.overlap_saved_us;
        self.calls_coalesced += other.calls_coalesced;
        self.round_trips_saved += other.round_trips_saved;
        self.tier_downgrades += other.tier_downgrades;
        self.tier_skipped_calls += other.tier_skipped_calls;
        self.subplan_hits += other.subplan_hits;
        self.subplans_materialized += other.subplans_materialized;
        self.subplans_coalesced += other.subplans_coalesced;
        self.subplan_rejections += other.subplan_rejections;
    }
}

/// Why part of a subgoal's answer set may be missing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncompleteReason {
    /// The subgoal's site was unavailable and the cache could only serve
    /// a prefix.
    SiteUnavailable {
        /// The unreachable site.
        site: String,
    },
    /// An open circuit breaker short-circuited the subgoal's call.
    BreakerOpen {
        /// The isolated site.
        site: String,
    },
    /// The query's deadline fired before the subgoal finished.
    DeadlineExceeded,
    /// The active plan tier forbade the subgoal's remote call: the query
    /// was selected into (or downgraded to) a cheaper tier, and only the
    /// cache could serve this subgoal. Distinct from `DeadlineExceeded` —
    /// a downgrade is a deliberate fail-soft decision, not a timeout.
    Downgraded,
    /// An injected fault truncated the subgoal's answer set in flight.
    Truncated {
        /// The site whose answers were cut short.
        site: String,
    },
}

impl fmt::Display for IncompleteReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncompleteReason::SiteUnavailable { site } => {
                write!(f, "site `{site}` unavailable")
            }
            IncompleteReason::BreakerOpen { site } => {
                write!(f, "breaker open for `{site}`")
            }
            IncompleteReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            IncompleteReason::Downgraded => {
                write!(f, "downgraded to a cheaper plan tier")
            }
            IncompleteReason::Truncated { site } => {
                write!(f, "answers truncated by `{site}`")
            }
        }
    }
}

/// Completeness provenance for one call step of the plan: which subgoal,
/// and every reason its contribution may be partial. Replaces a single
/// query-wide boolean with an auditable per-subgoal account.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgoalProvenance {
    /// The subgoal (rendered call template) this entry covers.
    pub subgoal: String,
    /// Gaps observed while evaluating it; empty means complete.
    pub gaps: Vec<IncompleteReason>,
}

impl SubgoalProvenance {
    /// True when no gaps were recorded for this subgoal.
    pub fn complete(&self) -> bool {
        self.gaps.is_empty()
    }
}

/// The result of executing a plan.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Full variable bindings, one per answer, in production order.
    pub answers: Vec<Subst>,
    /// Time to the first answer (None if there were no answers).
    pub t_first: Option<SimDuration>,
    /// Time to completion (or to the stop point, in limited runs).
    pub t_all: SimDuration,
    /// Counters.
    pub stats: ExecStats,
    /// True when any subgoal's answers may be incomplete (derived from
    /// `provenance`).
    pub incomplete: bool,
    /// Per-subgoal completeness provenance, one entry per call step.
    pub provenance: Vec<SubgoalProvenance>,
    /// The execution trace (empty unless `collect_trace` was set).
    pub trace: Vec<TraceEntry>,
    /// The clock at completion (the mediator carries it forward).
    pub clock: SimClock,
}

struct RunState<'s> {
    answers: Vec<Subst>,
    limit: Option<usize>,
    t_first: Option<SimDuration>,
    start: SimInstant,
    incomplete: bool,
    /// One entry per call step of the plan, in step order.
    provenance: Vec<SubgoalProvenance>,
    /// Plan step index → slot in `provenance`.
    prov_slot: HashMap<usize, usize>,
    /// Optional streaming sink: called with each answer and the elapsed
    /// virtual time; returning `false` stops the run (the §3 interactive
    /// mode's "user doesn't want more answers").
    sink: Option<AnswerSink<'s>>,
}

impl RunState<'_> {
    /// Records a completeness gap against the call step at `idx`
    /// (deduplicated).
    fn mark_gap(&mut self, idx: usize, reason: IncompleteReason) {
        self.incomplete = true;
        if let Some(&slot) = self.prov_slot.get(&idx) {
            let gaps = &mut self.provenance[slot].gaps;
            if !gaps.contains(&reason) {
                gaps.push(reason);
            }
        }
    }
}

/// The executor. Borrow the mediator's shared CIM/DCSM and network, hand
/// it a clock, run one plan.
///
/// The CIM and DCSM are reached through their shared-state views, so the
/// same executor serves the serial mediator (`&Mutex<Cim>` /
/// `&Mutex<Dcsm>` coerce to the views) and the concurrent mediator's
/// sharded facades.
pub struct Executor<'w> {
    network: &'w Network,
    cim: &'w dyn CimView,
    dcsm: &'w dyn DcsmView,
    config: ExecConfig,
    clock: SimClock,
    stats: ExecStats,
    memo: HashMap<GroundCall, Arc<[Value]>>,
    trace: Vec<TraceEntry>,
    /// Shared per-site circuit breakers (the mediator's bank, so breaker
    /// state persists across queries). `None` disables breaking.
    breakers: Option<&'w Mutex<BreakerBank>>,
    /// Seeded stream for backoff jitter — runs replay deterministically.
    retry_rng: Rng64,
    /// Absolute deadline instant, fixed when the run starts.
    deadline_at: Option<SimInstant>,
    /// The plan's independence groups, keyed by starting step index.
    /// Empty unless `max_parallel_calls > 1`.
    groups: HashMap<usize, std::ops::Range<usize>>,
    /// Outcomes fetched ahead by a group dispatch, keyed by the step
    /// index and the call that actually went over the wire. Consumption
    /// serves them at zero additional charge — the group barrier already
    /// paid the overlapped makespan.
    prefetch: HashMap<(usize, GroundCall), RemoteOutcome>,
    /// Shared single-flight registry: identical calls from concurrent
    /// queries coalesce into one source round trip. `None` (the serial
    /// mediator) disables coalescing.
    flight: Option<&'w InFlightRegistry>,
    /// Shared subplan materialization cache. `None`, or
    /// `share_subplans: false`, disables whole-plan caching.
    matcache: Option<&'w MatCache>,
    /// The tier the run is currently serving at. Starts at
    /// `config.tier`; budget pressure may step it down, never up.
    tier: PlanTier,
    /// Next budget checkpoint on the virtual clock; `None` disarms.
    budget_at: Option<SimInstant>,
}

impl<'w> Executor<'w> {
    /// Builds an executor.
    pub fn new(
        network: &'w Network,
        cim: &'w dyn CimView,
        dcsm: &'w dyn DcsmView,
        clock: SimClock,
        config: ExecConfig,
    ) -> Self {
        Executor {
            network,
            cim,
            dcsm,
            config,
            clock,
            stats: ExecStats::default(),
            memo: HashMap::new(),
            trace: Vec::new(),
            breakers: None,
            retry_rng: Rng64::new(config.retry_seed),
            deadline_at: None,
            groups: HashMap::new(),
            prefetch: HashMap::new(),
            flight: None,
            matcache: None,
            tier: config.tier,
            budget_at: None,
        }
    }

    /// Attaches a shared circuit-breaker bank: calls consult it before
    /// going out, and trip/recover transitions are recorded into it.
    pub fn with_breakers(mut self, bank: &'w Mutex<BreakerBank>) -> Self {
        self.breakers = Some(bank);
        self
    }

    /// Attaches a shared single-flight registry: before reaching the
    /// source, calls join the registry and either lead (one real round
    /// trip) or follow (block for the leader's published answers).
    pub fn with_flight(mut self, registry: &'w InFlightRegistry) -> Self {
        self.flight = Some(registry);
        self
    }

    /// Attaches a shared subplan materialization cache: runs with
    /// [`ExecConfig::share_subplans`] set serve repeated plans from their
    /// materialized answers and store complete results for later queries.
    pub fn with_matcache(mut self, cache: &'w MatCache) -> Self {
        self.matcache = Some(cache);
        self
    }

    /// Appends a trace event when collection is enabled.
    fn note(&mut self, event: TraceEvent) {
        if self.config.collect_trace {
            self.trace.push(TraceEntry {
                at: self.clock.now(),
                event,
            });
        }
    }

    /// Runs a plan, producing up to `limit` answers (all when `None`).
    pub fn run(&mut self, plan: &Plan, limit: Option<usize>) -> Result<ExecOutcome> {
        self.run_with_sink(plan, limit, None)
    }

    /// The executor's current virtual time. Meaningful after a failed run
    /// too: a caller that retries elsewhere still owes the time this
    /// attempt burned.
    pub fn now(&self) -> hermes_common::SimInstant {
        self.clock.now()
    }

    /// Counters so far — like [`Executor::now`], available after a failed
    /// run, whose work would otherwise be unaccounted for.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Runs a plan, streaming each answer into `sink` as it is produced.
    /// The sink returning `false` stops evaluation — pending source calls
    /// are cancelled, like the paper's interactive mode.
    pub fn run_with_sink(
        &mut self,
        plan: &Plan,
        limit: Option<usize>,
        sink: Option<AnswerSink<'_>>,
    ) -> Result<ExecOutcome> {
        let mut provenance = Vec::new();
        let mut prov_slot = HashMap::new();
        for (i, step) in plan.steps.iter().enumerate() {
            if let PlanStep::Call { call, .. } = step {
                prov_slot.insert(i, provenance.len());
                provenance.push(SubgoalProvenance {
                    subgoal: call.to_string(),
                    gaps: Vec::new(),
                });
            }
        }
        let mut out = RunState {
            answers: Vec::new(),
            limit,
            t_first: None,
            start: self.clock.now(),
            incomplete: false,
            provenance,
            prov_slot,
            sink,
        };
        self.deadline_at = self.config.deadline.map(|d| out.start + d);
        self.tier = self.config.tier;
        self.budget_at = self.config.budget.map(|b| out.start + b);
        self.groups = if self.config.max_parallel_calls > 1 {
            crate::plan::independence_groups(&plan.steps)
                .into_iter()
                .map(|r| (r.start, r))
                .collect()
        } else {
            HashMap::new()
        };
        self.prefetch.clear();

        // Subplan materialization (matcache). A ticket exists only when
        // sharing is on, a cache is attached, and the installed verdicts
        // classify every source the plan reads as safe (HA070/HA071).
        let mat = if self.config.share_subplans {
            self.matcache
        } else {
            None
        };
        let ticket = mat.and_then(|m| m.ticket(plan));
        let mut flight_leader = None;
        if let (Some(mat), Some(ticket)) = (mat, ticket.as_ref()) {
            match mat.lookup(ticket) {
                MatLookup::Hit(rows) => {
                    self.stats.subplan_hits += 1;
                    return Ok(self.serve_materialized(ticket, &rows, out));
                }
                MatLookup::Miss { invalidated } => {
                    if let Some((domain, function)) = invalidated {
                        self.note(TraceEvent::SubplanInvalidated {
                            fingerprint: ticket.fingerprint(),
                            domain: domain.to_string(),
                            function: function.to_string(),
                        });
                    }
                }
            }
            // Single-flight at the plan level — only for full, sink-less
            // runs: a limited or streaming run may stop early, so its
            // result is neither shareable nor storable.
            if out.limit.is_none() && out.sink.is_none() {
                while flight_leader.is_none() {
                    match mat.join(ticket) {
                        MatRole::Leader(leader) => flight_leader = Some(leader),
                        MatRole::Follower(follower) => {
                            if let Some(rows) = follower.wait() {
                                self.stats.subplans_coalesced += 1;
                                return Ok(self.serve_materialized(ticket, &rows, out));
                            }
                            // The leader abandoned (error, deadline,
                            // downgrade). Another query may have stored
                            // meanwhile; otherwise re-join, so one waiter
                            // inherits leadership.
                            if let MatLookup::Hit(rows) = mat.lookup(ticket) {
                                self.stats.subplan_hits += 1;
                                return Ok(self.serve_materialized(ticket, &rows, out));
                            }
                        }
                    }
                }
            }
        }

        let finished = self.exec(&plan.steps, 0, &Subst::new(), &mut out)?;
        let t_all = self.clock.now().duration_since(out.start);
        let incomplete = out.incomplete || out.provenance.iter().any(|p| !p.complete());
        if let (Some(mat), Some(ticket), Some(leader)) =
            (mat, ticket.as_ref(), flight_leader.take())
        {
            // Store + publish only complete results; a partial snapshot
            // must never masquerade as the subplan's full answer set. An
            // unpublishable flight abandons on drop, releasing followers
            // to compute for themselves.
            if finished && !incomplete {
                let shared: Arc<[Subst]> = out.answers.as_slice().into();
                let patterns = crate::cost::plan_patterns(plan);
                let savings_ms = self.dcsm.estimate_subplan_savings(&patterns, 2);
                match mat.store(ticket, shared.clone(), savings_ms) {
                    crate::matcache::StoreOutcome::Stored(_) => {
                        self.stats.subplans_materialized += 1;
                        self.note(TraceEvent::SubplanMaterialized {
                            fingerprint: ticket.fingerprint(),
                            rows: shared.len(),
                            savings_ms,
                        });
                    }
                    crate::matcache::StoreOutcome::RejectedSavings
                    | crate::matcache::StoreOutcome::RejectedSize => {
                        self.stats.subplan_rejections += 1;
                    }
                }
                leader.publish(&shared);
            }
        }
        Ok(ExecOutcome {
            answers: out.answers,
            t_first: out.t_first,
            t_all,
            stats: self.stats,
            incomplete,
            provenance: out.provenance,
            trace: std::mem::take(&mut self.trace),
            clock: self.clock.clone(),
        })
    }

    /// Serves a materialized answer set as the run's result: every row is
    /// delivered through the normal answer path (limit, sink, trace), but
    /// no source is called and no virtual time is charged — the subplan
    /// cache is mediator-local memory.
    fn serve_materialized(
        &mut self,
        ticket: &MatTicket,
        rows: &Arc<[Subst]>,
        mut out: RunState,
    ) -> ExecOutcome {
        self.note(TraceEvent::SubplanHit {
            fingerprint: ticket.fingerprint(),
            rows: rows.len(),
        });
        for theta in rows.iter() {
            let elapsed = self.clock.now().duration_since(out.start);
            if out.t_first.is_none() {
                out.t_first = Some(elapsed);
            }
            out.answers.push(theta.clone());
            self.note(TraceEvent::Answer {
                ordinal: out.answers.len(),
            });
            if let Some(sink) = out.sink.as_mut() {
                if !sink(theta, elapsed) {
                    break;
                }
            }
            if out.limit.is_some_and(|l| out.answers.len() >= l) {
                break;
            }
        }
        ExecOutcome {
            answers: out.answers,
            t_first: out.t_first,
            t_all: self.clock.now().duration_since(out.start),
            stats: self.stats,
            incomplete: false,
            provenance: out.provenance,
            trace: std::mem::take(&mut self.trace),
            clock: self.clock.clone(),
        }
    }

    /// Recursive nested-loops step. Returns `false` when the consumer has
    /// seen enough answers and evaluation should unwind.
    fn exec(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
    ) -> Result<bool> {
        if idx == steps.len() {
            let elapsed = self.clock.now().duration_since(out.start);
            if out.t_first.is_none() {
                out.t_first = Some(elapsed);
            }
            out.answers.push(theta.clone());
            self.note(TraceEvent::Answer {
                ordinal: out.answers.len(),
            });
            if let Some(sink) = out.sink.as_mut() {
                if !sink(theta, elapsed) {
                    return Ok(false);
                }
            }
            return Ok(out.limit.is_none_or(|l| out.answers.len() < l));
        }
        match &steps[idx] {
            PlanStep::Cond(c) => {
                let lhs = theta.path_term(&c.lhs);
                let rhs = theta.path_term(&c.rhs);
                match (lhs, rhs) {
                    (Some(l), Some(r)) => {
                        if c.op.eval(&l, &r) {
                            self.exec(steps, idx + 1, theta, out)
                        } else {
                            Ok(true)
                        }
                    }
                    (Some(l), None) if c.op == Relop::Eq && c.rhs.path.is_empty() => {
                        let v = c.rhs.var_name().ok_or_else(|| {
                            HermesError::Eval(format!("condition `{c}` not evaluable"))
                        })?;
                        let mut t2 = theta.clone();
                        t2.bind(v.clone(), l);
                        self.exec(steps, idx + 1, &t2, out)
                    }
                    (None, Some(r)) if c.op == Relop::Eq && c.lhs.path.is_empty() => {
                        let v = c.lhs.var_name().ok_or_else(|| {
                            HermesError::Eval(format!("condition `{c}` not evaluable"))
                        })?;
                        let mut t2 = theta.clone();
                        t2.bind(v.clone(), r);
                        self.exec(steps, idx + 1, &t2, out)
                    }
                    _ => Err(HermesError::Eval(format!(
                        "condition `{c}` has unbound operands at execution \
                         (planner bug or malformed plan)"
                    ))),
                }
            }
            PlanStep::Facts { args, rows, .. } => {
                for row in rows.iter() {
                    self.clock
                        .advance(SimDuration::from_millis_f64(self.config.fact_row_ms));
                    let mut t2 = theta.clone();
                    let mut ok = true;
                    for (t, v) in args.iter().zip(row.iter()) {
                        match t {
                            Term::Const(c) => {
                                if c != v {
                                    ok = false;
                                    break;
                                }
                            }
                            Term::Var(x) => match t2.get(x) {
                                Some(existing) => {
                                    if existing != v {
                                        ok = false;
                                        break;
                                    }
                                }
                                None => t2.bind(x.clone(), v.clone()),
                            },
                        }
                    }
                    if ok && !self.exec(steps, idx + 1, &t2, out)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            PlanStep::Call {
                target,
                call,
                route,
            } => {
                if let Some(group) = self.groups.get(&idx).cloned() {
                    // This call opens an independence group: put every
                    // member's network call in flight together before the
                    // nested-loops walk consumes their answers.
                    self.dispatch_group(steps, group, theta, out);
                }
                let ground = theta.ground_call(call).ok_or_else(|| {
                    HermesError::Eval(format!(
                        "call `{call}` has unbound arguments at execution \
                         (planner bug or malformed plan)"
                    ))
                })?;
                self.stats.calls_attempted += 1;
                let probe = theta.term(target);
                self.run_call(
                    steps,
                    idx,
                    theta,
                    out,
                    &ground,
                    *route,
                    probe.as_ref(),
                    target,
                )
            }
        }
    }

    /// Executes one ground call and iterates its answers into the
    /// continuation.
    #[allow(clippy::too_many_arguments)]
    fn run_call(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
        ground: &GroundCall,
        route: Route,
        probe: Option<&Value>,
        target: &Term,
    ) -> Result<bool> {
        // Budget check first: a budget is softer than a deadline, so with
        // both configured (budget < deadline) the downgrade fires before
        // the deadline ever can — degraded answers beat aborted ones.
        if self.budget_at.is_some_and(|b| self.clock.now() > b) {
            self.budget_downgrade();
        }
        // Deadline check at the call boundary: the cheapest safe point to
        // abort, because no partial per-call state exists here.
        if self.deadline_at.is_some_and(|d| self.clock.now() > d) {
            return self.deadline_abort(idx, out);
        }

        // Per-query memo (§7 footnote duplicate elimination).
        if self.config.memoize_calls {
            if let Some(answers) = self.memo.get(ground).cloned() {
                self.stats.memo_hits += 1;
                return self.iterate(
                    steps,
                    idx,
                    theta,
                    out,
                    &answers,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    probe,
                    target,
                );
            }
        }

        let result = match route {
            Route::Direct => {
                if let Some(outcome) = self.prefetched(idx, ground) {
                    // The group dispatch already paid the overlapped
                    // makespan: serve the parked answers at zero charge.
                    self.note_truncation(out, idx, ground, &outcome);
                    let truncated = outcome.truncated;
                    // One shared allocation backs memo and iteration.
                    let answers = outcome.answers;
                    if self.config.memoize_calls && !truncated {
                        self.memo.insert(ground.clone(), answers.clone());
                    }
                    self.iterate(
                        steps,
                        idx,
                        theta,
                        out,
                        &answers,
                        SimDuration::ZERO,
                        SimDuration::ZERO,
                        probe,
                        target,
                    )
                } else if !self.tier_allows_wire(ground) {
                    self.tier_skip(steps, idx, theta, out, ground, probe, target)
                } else {
                    let outcome = self.actual_call(ground)?;
                    self.note_truncation(out, idx, ground, &outcome);
                    let (first, per) = charge_schedule(&outcome);
                    if outcome.answers.is_empty() {
                        self.clock.advance(outcome.t_all);
                    }
                    let truncated = outcome.truncated;
                    let answers = outcome.answers;
                    if self.config.memoize_calls && !truncated {
                        self.memo.insert(ground.clone(), answers.clone());
                    }
                    self.iterate(steps, idx, theta, out, &answers, first, per, probe, target)
                }
            }
            Route::Cim => self.run_cim_call(steps, idx, theta, out, ground, probe, target),
        }?;
        Ok(result)
    }

    /// Budget checkpoint passed: step the active tier down one level
    /// (one-way, never up) and re-arm the checkpoint — or disarm at the
    /// `CacheOnly` floor, where nothing cheaper remains.
    fn budget_downgrade(&mut self) {
        let Some(next) = self.tier.downgraded() else {
            self.budget_at = None;
            return;
        };
        self.stats.tier_downgrades += 1;
        self.note(TraceEvent::TierDowngraded {
            from: self.tier,
            to: next,
            reason: TierReason::BudgetPressure,
        });
        self.tier = next;
        self.budget_at = if next == PlanTier::CacheOnly {
            None
        } else {
            self.config.budget.map(|b| self.clock.now() + b)
        };
    }

    /// Whether the active tier lets `wire` go over the network. `Full`
    /// allows everything; `CacheOnly` nothing; `CachedPlusCheapRemote`
    /// asks the DCSM whether the fully-bound call pattern is estimated at
    /// or under [`ExecConfig::cheap_call_ms`].
    fn tier_allows_wire(&self, wire: &GroundCall) -> bool {
        match self.tier {
            PlanTier::Full => true,
            PlanTier::CacheOnly => false,
            PlanTier::CachedPlusCheapRemote => {
                let pattern = CallPattern::new(
                    wire.domain.clone(),
                    wire.function.clone(),
                    wire.args.iter().map(|v| PatArg::Const(v.clone())).collect(),
                );
                self.dcsm.cost(&pattern).t_all_ms() <= self.config.cheap_call_ms
            }
        }
    }

    /// The active tier forbade `ground`'s remote call: record the gap
    /// (`IncompleteReason::Downgraded`), then fail soft — serve whatever
    /// stale cached answers exist, else contribute nothing and move on.
    #[allow(clippy::too_many_arguments)]
    fn tier_skip(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
        ground: &GroundCall,
        probe: Option<&Value>,
        target: &Term,
    ) -> Result<bool> {
        self.stats.tier_skipped_calls += 1;
        self.note(TraceEvent::TierSkipped {
            call: ground.clone(),
            tier: self.tier,
        });
        out.mark_gap(idx, IncompleteReason::Downgraded);
        if let Some(answers) = self.cim.stale_answers(ground) {
            self.note(TraceEvent::ServedStale {
                call: ground.clone(),
                answers: answers.len(),
            });
            return self.iterate(
                steps,
                idx,
                theta,
                out,
                &answers,
                SimDuration::ZERO,
                SimDuration::ZERO,
                probe,
                target,
            );
        }
        Ok(true)
    }

    /// Deadline fired: account for it, then either unwind cleanly (answers
    /// so far are returned with provenance) or fail in strict mode.
    fn deadline_abort(&mut self, idx: usize, out: &mut RunState) -> Result<bool> {
        let elapsed = self.clock.now().duration_since(out.start);
        let deadline = self
            .config
            .deadline
            .expect("deadline_at is only set from config.deadline");
        self.stats.deadline_aborts += 1;
        self.note(TraceEvent::DeadlineExceeded { elapsed, deadline });
        out.mark_gap(idx, IncompleteReason::DeadlineExceeded);
        // Disarm so the unwind does not re-fire at every remaining call.
        self.deadline_at = None;
        if self.config.deadline_strict {
            Err(HermesError::DeadlineExceeded { deadline, elapsed })
        } else {
            Ok(false)
        }
    }

    /// Records a truncated answer set (injected fault) against the call
    /// step's provenance.
    fn note_truncation(
        &mut self,
        out: &mut RunState,
        idx: usize,
        ground: &GroundCall,
        outcome: &RemoteOutcome,
    ) {
        if outcome.truncated {
            self.stats.truncated_calls += 1;
            self.note(TraceEvent::Truncated {
                call: ground.clone(),
                kept: outcome.answers.len(),
            });
            let site = self.site_name(ground).unwrap_or_default();
            out.mark_gap(idx, IncompleteReason::Truncated { site });
        }
    }

    /// The name of the site serving `ground`'s domain, when placed.
    fn site_name(&self, ground: &GroundCall) -> Option<String> {
        self.network
            .site_of(&ground.domain)
            .ok()
            .map(|s| s.name.to_string())
    }

    /// The §4.1 pipeline for a CIM-routed call.
    #[allow(clippy::too_many_arguments)]
    fn run_cim_call(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
        ground: &GroundCall,
        probe: Option<&Value>,
        target: &Term,
    ) -> Result<bool> {
        let (resolution, cim_cost) = self.cim.lookup(ground, self.clock.now());
        self.clock.advance(cim_cost);
        match resolution {
            CimResolution::ExactHit { answers } => {
                self.stats.cim_exact += 1;
                self.note(TraceEvent::CacheHit {
                    call: ground.clone(),
                    via: ground.clone(),
                    answers: answers.len(),
                });
                if self.config.memoize_calls {
                    self.memo.insert(ground.clone(), answers.clone());
                }
                self.iterate(
                    steps,
                    idx,
                    theta,
                    out,
                    &answers,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    probe,
                    target,
                )
            }
            CimResolution::EqualHit { via, answers } => {
                self.stats.cim_equal += 1;
                self.note(TraceEvent::CacheHit {
                    call: ground.clone(),
                    via,
                    answers: answers.len(),
                });
                if self.config.store_results {
                    // Make the next lookup an exact hit.
                    self.cim
                        .store(ground.clone(), answers.clone(), true, self.clock.now());
                }
                self.iterate(
                    steps,
                    idx,
                    theta,
                    out,
                    &answers,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    probe,
                    target,
                )
            }
            CimResolution::PartialHit {
                via,
                answers: cached,
            } => {
                self.stats.cim_partial += 1;
                self.note(TraceEvent::PartialHit {
                    call: ground.clone(),
                    via,
                    answers: cached.len(),
                });
                self.run_partial_hit(steps, idx, theta, out, ground, cached, probe, target)
            }
            CimResolution::Miss { substitute } => {
                self.stats.cim_miss += 1;
                let exec_call = match substitute {
                    Some(s) => {
                        self.stats.substituted_calls += 1;
                        self.note(TraceEvent::Substituted {
                            call: ground.clone(),
                            executed: s.clone(),
                        });
                        s
                    }
                    None => ground.clone(),
                };
                let parked = self.prefetched(idx, &exec_call);
                let was_parked = parked.is_some();
                if !was_parked && !self.tier_allows_wire(&exec_call) {
                    return self.tier_skip(steps, idx, theta, out, ground, probe, target);
                }
                let outcome = if let Some(o) = parked {
                    o
                } else {
                    match self.actual_call(&exec_call) {
                        Ok(o) => o,
                        Err(HermesError::Unavailable { site, reason }) => {
                            // Serve-stale fallback: a possibly-incomplete old
                            // entry beats failing the whole query.
                            let stale = self.cim.stale_answers(ground);
                            match stale {
                                Some(answers) => {
                                    self.note(TraceEvent::ServedStale {
                                        call: ground.clone(),
                                        answers: answers.len(),
                                    });
                                    let gap = if reason.contains("circuit breaker") {
                                        IncompleteReason::BreakerOpen { site }
                                    } else {
                                        IncompleteReason::SiteUnavailable { site }
                                    };
                                    out.mark_gap(idx, gap);
                                    return self.iterate(
                                        steps,
                                        idx,
                                        theta,
                                        out,
                                        &answers,
                                        SimDuration::ZERO,
                                        SimDuration::ZERO,
                                        probe,
                                        target,
                                    );
                                }
                                None => return Err(HermesError::Unavailable { site, reason }),
                            }
                        }
                        Err(e) => return Err(e),
                    }
                };
                self.note_truncation(out, idx, &exec_call, &outcome);
                let (first, per) = if was_parked {
                    // Already paid for by the group barrier.
                    (SimDuration::ZERO, SimDuration::ZERO)
                } else {
                    charge_schedule(&outcome)
                };
                if !was_parked && outcome.answers.is_empty() {
                    self.clock.advance(outcome.t_all);
                }
                let complete = !outcome.truncated;
                // One shared allocation backs the CIM store(s), the memo,
                // and the iteration below (Arc clones, no deep copies).
                let answers = outcome.answers;
                if self.config.store_results {
                    let now = self.clock.now();
                    self.cim
                        .store(exec_call.clone(), answers.clone(), complete, now);
                    if exec_call != *ground {
                        // Equality invariant: the original call has the
                        // same answers — cache it under its own key too.
                        self.cim
                            .store(ground.clone(), answers.clone(), complete, now);
                    }
                }
                if self.config.memoize_calls && complete {
                    self.memo.insert(ground.clone(), answers.clone());
                }
                self.iterate(steps, idx, theta, out, &answers, first, per, probe, target)
            }
        }
    }

    /// Partial hit: yield the cached prefix, then (if the consumer still
    /// wants answers) the remainder from the actual call.
    #[allow(clippy::too_many_arguments)]
    fn run_partial_hit(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
        ground: &GroundCall,
        cached: Arc<[Value]>,
        probe: Option<&Value>,
        target: &Term,
    ) -> Result<bool> {
        let started = self.clock.now();
        // Serve the cached prefix (the CIM lookup already charged for it).
        // Membership probes must not early-out here: a hit in the prefix
        // answers the probe, but a missing value may still arrive in the
        // remainder — so probes fall through to the actual call when the
        // prefix does not contain the value.
        if let Some(v) = probe {
            if cached.contains(v) {
                return self.exec(steps, idx + 1, theta, out);
            }
        } else {
            for a in cached.iter() {
                let mut t2 = theta.clone();
                let var = target.as_var().expect("non-probe target is a variable");
                t2.bind(var.clone(), a.clone());
                if !self.exec(steps, idx + 1, &t2, out)? {
                    // Consumer stopped inside the cached prefix: the
                    // actual call never needs to be issued.
                    self.stats.cancelled_calls += 1;
                    self.note(TraceEvent::Cancelled {
                        call: ground.clone(),
                    });
                    return Ok(false);
                }
            }
        }

        // Need the remainder: issue (or join) the actual call — unless
        // the active tier forbids it, in which case the cached prefix is
        // all this subgoal contributes (flagged `Downgraded`).
        if !self.tier_allows_wire(ground) {
            self.stats.tier_skipped_calls += 1;
            self.note(TraceEvent::TierSkipped {
                call: ground.clone(),
                tier: self.tier,
            });
            out.mark_gap(idx, IncompleteReason::Downgraded);
            return Ok(true);
        }
        match self.actual_call(ground) {
            Ok(outcome) => {
                self.note_truncation(out, idx, ground, &outcome);
                if self.config.partial_parallel {
                    // The call ran concurrently since `started`.
                    self.clock.advance_to(started + outcome.t_all);
                } else {
                    self.clock.advance(outcome.t_all);
                }
                let truncated = outcome.truncated;
                let answers = outcome.answers;
                let (remainder, merge_cost) = self.cim.merge_partial(ground, &cached, &answers);
                self.clock.advance(merge_cost);
                if self.config.store_results {
                    self.cim.store(
                        ground.clone(),
                        answers.clone(),
                        !truncated,
                        self.clock.now(),
                    );
                }
                if self.config.memoize_calls && !truncated {
                    self.memo.insert(ground.clone(), answers);
                }
                if let Some(v) = probe {
                    if remainder.contains(v) {
                        return self.exec(steps, idx + 1, theta, out);
                    }
                    return Ok(true);
                }
                self.iterate(
                    steps,
                    idx,
                    theta,
                    out,
                    &remainder,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    None,
                    target,
                )
            }
            Err(HermesError::Unavailable { site, reason }) => {
                // The cache already served what it could (§1: use prior
                // results when the source is not readily available).
                // `actual_call` already counted the unavailability.
                let gap = if reason.contains("circuit breaker") {
                    IncompleteReason::BreakerOpen { site }
                } else {
                    IncompleteReason::SiteUnavailable { site }
                };
                out.mark_gap(idx, gap);
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Iterates an answer list into the continuation, charging the
    /// pipelined schedule: `first` before the first answer, `per` before
    /// each later one.
    #[allow(clippy::too_many_arguments)]
    fn iterate(
        &mut self,
        steps: &[PlanStep],
        idx: usize,
        theta: &Subst,
        out: &mut RunState,
        answers: &[Value],
        first: SimDuration,
        per: SimDuration,
        probe: Option<&Value>,
        target: &Term,
    ) -> Result<bool> {
        if let Some(v) = probe {
            // Membership: scan (and pay) until the value appears.
            for (j, a) in answers.iter().enumerate() {
                self.clock.advance(if j == 0 { first } else { per });
                if a == v {
                    return self.exec(steps, idx + 1, theta, out);
                }
            }
            return Ok(true);
        }
        let var = match target.as_var() {
            Some(v) => v.clone(),
            None => {
                return Err(HermesError::Eval(
                    "call target is neither ground nor a variable".into(),
                ))
            }
        };
        for (j, a) in answers.iter().enumerate() {
            self.clock.advance(if j == 0 { first } else { per });
            let mut t2 = theta.clone();
            t2.bind(var.clone(), a.clone());
            if !self.exec(steps, idx + 1, &t2, out)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Dispatches an independence group: grounds every member call
    /// against the group-entry bindings, puts the ones that actually need
    /// the network in flight across up to
    /// [`max_parallel_calls`](ExecConfig::max_parallel_calls) virtual
    /// slots (greedy earliest-slot list scheduling), advances the clock
    /// once by the schedule's makespan, and parks the outcomes for the
    /// nested-loops walk to consume at zero additional charge.
    ///
    /// Members that would be served by the per-query memo or a CIM hit
    /// are skipped — they never touch the network. (A partial hit's
    /// remainder call is also skipped: it already overlaps with serving
    /// the cached prefix when `partial_parallel` is on.) Failed dispatches
    /// are *not* parked; consumption re-attempts the call and runs the
    /// ordinary unavailability handling (serve-stale, breakers,
    /// failover). Answer content and order are identical to the
    /// sequential walk — only the virtual-time charging changes.
    fn dispatch_group(
        &mut self,
        steps: &[PlanStep],
        group: std::ops::Range<usize>,
        theta: &Subst,
        out: &mut RunState,
    ) {
        let t0 = self.clock.now();
        if self.deadline_at.is_some_and(|d| t0 > d) {
            return; // the call-boundary check aborts before consumption
        }
        // Which members actually need the wire, and with which call.
        let mut pending: Vec<(usize, GroundCall)> = Vec::new();
        for idx in group {
            let PlanStep::Call { call, route, .. } = &steps[idx] else {
                continue;
            };
            let Some(ground) = theta.ground_call(call) else {
                continue; // run_call will report the planner bug
            };
            if self.config.memoize_calls && self.memo.contains_key(&ground) {
                continue;
            }
            let wire = match route {
                Route::Direct => ground,
                Route::Cim => match self.cim.preview(&ground) {
                    CimPreview::Hit | CimPreview::Partial => continue,
                    CimPreview::Miss { executed } => executed,
                },
            };
            if self.prefetch.contains_key(&(idx, wire.clone())) {
                continue; // still parked from an earlier group entry
            }
            if !self.tier_allows_wire(&wire) {
                continue; // consumption records the Downgraded gap
            }
            pending.push((idx, wire));
        }
        if pending.len() < 2 {
            return; // nothing to overlap with
        }

        let slots = self.config.max_parallel_calls.min(pending.len());
        let overhead = SimDuration::from_millis_f64(self.config.dispatch_overhead_ms.max(0.0));
        let mut free = vec![SimDuration::ZERO; slots];
        let mut batch_seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut intervals: Vec<(String, SimDuration, SimDuration)> = Vec::new();
        let mut sites: BTreeSet<String> = BTreeSet::new();
        let mut serial = SimDuration::ZERO;
        let mut dispatched = 0usize;
        let mut abandoned = false;
        for (idx, wire) in pending {
            let slot = (0..free.len()).min_by_key(|&i| (free[i], i)).unwrap_or(0);
            let begin = free[slot];
            if abandoned || self.deadline_at.is_some_and(|d| t0 + begin > d) {
                // This member's slot would only open after the deadline:
                // abandon it — and every later member — un-issued. The
                // makespan necessarily exceeds the deadline too, so the
                // call-boundary check aborts before any consumption.
                abandoned = true;
                self.stats.cancelled_calls += 1;
                self.note(TraceEvent::Cancelled { call: wire });
                out.mark_gap(idx, IncompleteReason::DeadlineExceeded);
                continue;
            }
            let site = self.site_name(&wire).unwrap_or_default();
            let piggyback = self.config.batch_calls
                && !batch_seen.insert((site.clone(), format!("{}:{}", wire.domain, wire.function)));
            if piggyback {
                self.stats.batched_calls += 1;
            }
            // Every member's wait runs from the group-entry instant:
            // clone the clock, let retry backoff advance the copy,
            // restore, and fold the waited time into the slot occupancy.
            let saved = self.clock.clone();
            let result = self.actual_call_with(&wire, piggyback);
            let waited = self.clock.now().duration_since(t0);
            self.clock = saved;
            let duration = overhead
                + waited
                + match &result {
                    Ok(o) => o.t_all,
                    Err(_) => SimDuration::ZERO,
                };
            free[slot] = begin + duration;
            serial += duration;
            intervals.push((site.clone(), begin, begin + duration));
            sites.insert(site);
            dispatched += 1;
            if let Ok(outcome) = result {
                self.prefetch.insert((idx, wire), outcome);
            }
        }
        if dispatched == 0 {
            return;
        }
        let makespan = free.iter().copied().max().unwrap_or(SimDuration::ZERO);
        // Report each site's concurrency peak (event sweep over the
        // schedule intervals; ends sort before starts at equal instants
        // so back-to-back calls in one slot never count as overlapping).
        for site in &sites {
            let mut events: Vec<(SimDuration, i32)> = Vec::new();
            for (s, b, e) in &intervals {
                if s == site {
                    events.push((*b, 1));
                    events.push((*e, -1));
                }
            }
            events.sort_by_key(|&(t, delta)| (t, delta));
            let (mut cur, mut peak) = (0i32, 0i32);
            for (_, delta) in events {
                cur += delta;
                peak = peak.max(cur);
            }
            self.network.record_in_flight(site, peak.max(0) as usize);
        }
        self.stats.parallel_groups += 1;
        self.stats.overlapped_calls += dispatched as u64;
        self.stats.overlap_saved_us += serial.saturating_sub(makespan).as_micros();
        self.note(TraceEvent::GroupDispatched {
            calls: dispatched,
            sites: sites.len(),
            makespan,
        });
        self.clock.advance(makespan);
        self.note(TraceEvent::Overlapped {
            serial,
            parallel: makespan,
            calls: dispatched,
        });
    }

    /// A parked group-dispatch outcome for step `idx`, if one exists. Not
    /// removed: with the group's bindings unchanged, every backtracking
    /// revisit of the step consumes the same in-flight answer set, which
    /// is exactly what a buffering parallel executor would serve.
    fn prefetched(&self, idx: usize, wire: &GroundCall) -> Option<RemoteOutcome> {
        self.prefetch.get(&(idx, wire.clone())).cloned()
    }

    /// Reaches the source over the network and records statistics,
    /// retrying transient unavailability with capped exponential backoff.
    /// When a breaker bank is attached, the site's breaker is consulted
    /// first — open means fail instantly, paying no simulated retry time.
    fn actual_call(&mut self, ground: &GroundCall) -> Result<RemoteOutcome> {
        self.actual_call_with(ground, false)
    }

    /// [`Executor::actual_call`], with control over round-trip batching:
    /// a `piggyback` call shares an already-dispatched group sibling's
    /// round trip and pays no connect + RTT.
    ///
    /// With a single-flight registry attached, identical concurrent calls
    /// coalesce here: the first caller in leads (performing the real call
    /// below, breakers and retries included) and publishes its outcome;
    /// later callers follow, blocking until the leader's answers arrive
    /// as an `Arc` bump. A follower whose leader failed re-joins — one
    /// inherits leadership of a fresh flight, the rest coalesce behind it.
    fn actual_call_with(&mut self, ground: &GroundCall, piggyback: bool) -> Result<RemoteOutcome> {
        let Some(registry) = self.flight else {
            return self.actual_call_direct(ground, piggyback);
        };
        loop {
            match registry.join(ground) {
                FlightRole::Leader(token) => {
                    let result = self.actual_call_direct(ground, piggyback);
                    match &result {
                        Ok(outcome) => token.publish(outcome),
                        Err(_) => token.abandon(),
                    }
                    return result;
                }
                FlightRole::Follower(handle) => {
                    self.stats.calls_coalesced += 1;
                    if let Some(outcome) = handle.wait() {
                        self.stats.round_trips_saved += 1;
                        registry.note_round_trip_saved();
                        self.note(TraceEvent::Coalesced {
                            call: ground.clone(),
                            answers: outcome.answers.len(),
                        });
                        return Ok(outcome);
                    }
                    // The leader abandoned without publishing: contend
                    // for leadership of a fresh flight.
                }
            }
        }
    }

    /// The uncoalesced call path: breaker admission, the wire, retries
    /// with backoff, and DCSM recording.
    fn actual_call_direct(
        &mut self,
        ground: &GroundCall,
        piggyback: bool,
    ) -> Result<RemoteOutcome> {
        let site = match self.breakers {
            Some(_) => self.site_name(ground),
            None => None,
        };
        if let (Some(bank), Some(site)) = (self.breakers, site.as_deref()) {
            match bank.lock().admit(site, self.clock.now()) {
                Admission::ShortCircuit => {
                    self.stats.breaker_short_circuits += 1;
                    self.note(TraceEvent::BreakerShortCircuit {
                        call: ground.clone(),
                        site: site.to_string(),
                    });
                    return Err(HermesError::Unavailable {
                        site: site.to_string(),
                        reason: "circuit breaker open".into(),
                    });
                }
                Admission::Probe => {
                    self.stats.breaker_probes += 1;
                    self.note(TraceEvent::BreakerProbe {
                        site: site.to_string(),
                    });
                }
                Admission::Allow => {}
            }
        }
        let mut attempt = 0u32;
        let outcome = loop {
            match self
                .network
                .execute_batched(ground, self.clock.now(), piggyback)
            {
                Ok(out) => {
                    if let (Some(bank), Some(site)) = (self.breakers, site.as_deref()) {
                        if bank.lock().record_success(site) {
                            self.stats.breaker_recoveries += 1;
                            self.note(TraceEvent::BreakerRecovered {
                                site: site.to_string(),
                            });
                        }
                    }
                    break out;
                }
                Err(e @ HermesError::Unavailable { .. }) => {
                    self.stats.unavailable += 1;
                    let mut tripped = false;
                    if let (Some(bank), Some(site)) = (self.breakers, site.as_deref()) {
                        if bank.lock().record_failure(site, self.clock.now()) {
                            tripped = true;
                            self.stats.breaker_trips += 1;
                            self.note(TraceEvent::BreakerTripped {
                                site: site.to_string(),
                            });
                        }
                    }
                    // A tripped breaker ends the retry loop — isolation
                    // beats persistence — and so does a spent deadline.
                    let past_deadline = self.deadline_at.is_some_and(|d| self.clock.now() > d);
                    let will_retry =
                        !tripped && !past_deadline && attempt < self.config.retry_attempts;
                    self.note(TraceEvent::Unavailable {
                        call: ground.clone(),
                        will_retry,
                    });
                    if !will_retry {
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    let backoff = self.retry_backoff(attempt);
                    // `sleep`, not `advance`: on a wall-anchored clock the
                    // backoff must actually wait real time out.
                    self.clock.sleep(backoff);
                }
                Err(e) => return Err(e),
            }
        };
        self.stats.actual_calls += 1;
        self.stats.bytes += outcome.bytes as u64;
        self.note(TraceEvent::ActualCall {
            call: ground.clone(),
            answers: outcome.answers.len(),
            t_all: outcome.t_all,
            bytes: outcome.bytes,
        });
        if self.config.record_stats {
            self.dcsm.record(
                ground,
                Some(outcome.t_first.as_millis_f64()),
                Some(outcome.t_all.as_millis_f64()),
                Some(outcome.answers.len() as f64),
                self.clock.now(),
            );
        }
        Ok(outcome)
    }

    /// Backoff before retry `attempt` (1-based): capped exponential with
    /// deterministic jitter. Retry 1 waits at least `retry_backoff_ms`.
    fn retry_backoff(&mut self, attempt: u32) -> SimDuration {
        let base = self.config.retry_backoff_ms.max(0.0);
        let exp = base * 2f64.powi(attempt.saturating_sub(1).min(20) as i32);
        let capped = exp.min(self.config.retry_backoff_cap_ms.max(base));
        let jitter = 1.0 + self.config.retry_jitter_frac.max(0.0) * self.retry_rng.f64();
        SimDuration::from_millis_f64(capped * jitter)
    }
}

/// The pipelined charge schedule for a fresh call's answers.
fn charge_schedule(outcome: &RemoteOutcome) -> (SimDuration, SimDuration) {
    let n = outcome.answers.len();
    let first = outcome.t_first;
    let per = if n > 1 {
        SimDuration::from_micros(
            outcome.t_all.saturating_sub(outcome.t_first).as_micros() / (n as u64 - 1),
        )
    } else {
        SimDuration::ZERO
    };
    (first, per)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlanStep};
    use hermes_cim::Cim;
    use hermes_dcsm::Dcsm;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_lang::{parse_invariant, CallTemplate};
    use hermes_net::profiles;
    use std::sync::Arc;

    fn world() -> (Network, Mutex<Cim>, Mutex<Dcsm>) {
        let mut net = Network::new(11);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        net.place(Arc::new(d), profiles::cornell());
        (net, Mutex::new(Cim::new()), Mutex::new(Dcsm::new()))
    }

    fn call_plan(route: Route) -> (Plan, Value) {
        // Pick a domain value with at least one neighbor.
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        let a = d
            .domain_values("p")
            .into_iter()
            .next()
            .expect("relation non-empty");
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                route,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        (plan, a)
    }

    #[test]
    fn direct_call_produces_answers_and_time() {
        let (net, cim, dcsm) = world();
        let (plan, _) = call_plan(Route::Direct);
        let mut ex = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default());
        let out = ex.run(&plan, None).unwrap();
        assert!(!out.answers.is_empty());
        assert!(out.t_first.unwrap() <= out.t_all);
        assert!(out.t_all > SimDuration::ZERO);
        assert_eq!(out.stats.actual_calls, 1);
        assert_eq!(out.stats.cim_exact, 0);
        // Direct route records statistics but does not populate the cache.
        assert_eq!(cim.lock().cache().len(), 0);
        assert_eq!(dcsm.lock().db().len(), 1);
    }

    #[test]
    fn cim_route_caches_and_second_run_is_fast() {
        let (net, cim, dcsm) = world();
        let (plan, _) = call_plan(Route::Cim);
        let out1 = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out1.stats.cim_miss, 1);
        assert_eq!(cim.lock().cache().len(), 1);
        let out2 = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out2.stats.cim_exact, 1);
        assert_eq!(out2.stats.actual_calls, 0);
        assert_eq!(out2.answers, out1.answers);
        assert!(out2.t_all < out1.t_all, "{} !< {}", out2.t_all, out1.t_all);
    }

    #[test]
    fn limit_stops_early_and_charges_less() {
        let (net, cim, dcsm) = world();
        // Use the ff view so there are many answers.
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("P"),
                call: CallTemplate::new("d1", "p_ff", vec![]),
                route: Route::Direct,
            }],
            answer_vars: vec![Arc::from("P")],
        };
        let full = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        let limited = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, Some(1))
            .unwrap();
        assert_eq!(limited.answers.len(), 1);
        assert!(full.answers.len() > 1);
        assert!(limited.t_all < full.t_all);
    }

    #[test]
    fn partial_hit_fast_first_answer() {
        let (net, cim, dcsm) = world();
        // Relation-style invariant on the synthetic domain is awkward;
        // fake one: cache a call under g and declare f ⊇ g via condition.
        cim.lock()
            .add_invariant(parse_invariant("X <= Y => d1:p_bf(Y) >= d1:p_bf(X).").unwrap())
            .unwrap();
        // This invariant is *not sound* for the synthetic relation, but
        // the executor machinery is what's under test: seed a cached
        // "narrower" call whose answers are a subset of the actual one.
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        let a = d.domain_values("p").into_iter().max().expect("non-empty");
        let full = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        use hermes_domains::Domain;
        // Cache a strict subset under a "smaller" key (string ordering).
        let prefix: Vec<Value> = full.iter().take(1).cloned().collect();
        let smaller_key = GroundCall::new("d1", "p_bf", vec![Value::str("")]);
        cim.lock()
            .store(smaller_key, prefix.clone(), true, SimInstant::EPOCH);

        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.stats.cim_partial, 1);
        assert_eq!(out.stats.actual_calls, 1);
        // All answers still delivered exactly once.
        assert_eq!(out.answers.len(), full.len());
        // First answer came from the cache: far faster than the network
        // round trip (~400ms on the cornell profile).
        assert!(
            out.t_first.unwrap().as_millis_f64() < 100.0,
            "t_first {}",
            out.t_first.unwrap()
        );
    }

    #[test]
    fn partial_hit_with_limit_cancels_actual_call() {
        let (net, cim, dcsm) = world();
        cim.lock()
            .add_invariant(parse_invariant("X <= Y => d1:p_bf(Y) >= d1:p_bf(X).").unwrap())
            .unwrap();
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().max().unwrap();
        let full = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        let prefix: Vec<Value> = full.iter().take(1).cloned().collect();
        cim.lock().store(
            GroundCall::new("d1", "p_bf", vec![Value::str("")]),
            prefix,
            true,
            SimInstant::EPOCH,
        );
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, Some(1))
            .unwrap();
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.stats.cancelled_calls, 1);
        assert_eq!(out.stats.actual_calls, 0);
    }

    #[test]
    fn membership_probe_binds_nothing() {
        let (net, cim, dcsm) = world();
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().next().unwrap();
        let b = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers[0].clone();
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::Const(b),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                route: Route::Direct,
            }],
            answer_vars: vec![],
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.answers.len(), 1); // one empty binding = "true"
                                          // A probe for a value that is not in the answers yields nothing.
        let plan2 = Plan {
            steps: vec![PlanStep::Call {
                target: Term::Const(Value::str("definitely-not-an-answer")),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Direct,
            }],
            answer_vars: vec![],
        };
        let out2 = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan2, None)
            .unwrap();
        assert!(out2.answers.is_empty());
    }

    #[test]
    fn memoization_avoids_repeat_calls() {
        let (net, cim, dcsm) = world();
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        let a = d.domain_values("p").into_iter().next().unwrap();
        // Two identical calls in sequence (a cross-product shape).
        let plan = Plan {
            steps: vec![
                PlanStep::Call {
                    target: Term::var("B"),
                    call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                    route: Route::Direct,
                },
                PlanStep::Call {
                    target: Term::var("C"),
                    call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                    route: Route::Direct,
                },
            ],
            answer_vars: vec![Arc::from("B"), Arc::from("C")],
        };
        let cfg = ExecConfig {
            memoize_calls: true,
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        // The two steps issue the *same* ground call: one actual call,
        // every repetition (outer loop and inner loops) memoized.
        assert_eq!(out.stats.actual_calls, 1);
        assert!(out.stats.memo_hits > 0);
        let n = out.answers.len();
        let without = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(without.answers.len(), n);
        assert!(without.stats.actual_calls > 1);
    }

    #[test]
    fn unavailable_source_fails_query_without_cache() {
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        let dcsm = Mutex::new(Dcsm::new());
        let (plan, _) = call_plan(Route::Cim);
        let err = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
    }

    #[test]
    fn unavailable_source_served_from_cache_is_incomplete_on_partial() {
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().max().unwrap();
        let full = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        cim.lock()
            .add_invariant(parse_invariant("X <= Y => d1:p_bf(Y) >= d1:p_bf(X).").unwrap())
            .unwrap();
        let prefix: Vec<Value> = full.iter().take(1).cloned().collect();
        cim.lock().store(
            GroundCall::new("d1", "p_bf", vec![Value::str("")]),
            prefix.clone(),
            true,
            SimInstant::EPOCH,
        );
        let dcsm = Mutex::new(Dcsm::new());
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        // Cached prefix delivered; the rest marked incomplete.
        assert_eq!(out.answers.len(), prefix.len());
        assert!(out.incomplete);
        assert_eq!(out.stats.unavailable, 1);
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        use hermes_net::profiles;
        // 60% failure rate: with 6 retries success is near-certain.
        let mut net = Network::new(5);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        net.place(Arc::new(d), profiles::italy_flaky(0.6));
        let cim = Mutex::new(Cim::new());
        let dcsm = Mutex::new(Dcsm::new());
        let (plan, _) = call_plan(Route::Direct);
        // Without retries: the flaky site fails some runs; find a seed
        // where the first attempt fails to make the comparison meaningful.
        let cfg = ExecConfig {
            retry_attempts: 6,
            retry_backoff_ms: 250.0,
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert!(!out.answers.is_empty());
        // The seeded jitter stream makes at least one attempt fail here.
        assert!(out.stats.retries > 0, "expected retries with 60% failure");
        // Backoff shows up on the virtual clock.
        assert!(out.t_all >= SimDuration::from_millis(250));
    }

    #[test]
    fn retries_do_not_mask_hard_outages() {
        use hermes_net::profiles;
        let mut net = Network::new(5);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        let dcsm = Mutex::new(Dcsm::new());
        let (plan, _) = call_plan(Route::Direct);
        let cfg = ExecConfig {
            retry_attempts: 3,
            retry_backoff_ms: 100.0,
            ..ExecConfig::default()
        };
        let err = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
    }

    #[test]
    fn exact_cache_hit_works_during_outage() {
        // The §1 motivation: a complete cached answer fully shields the
        // query from an unavailable site.
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().next().unwrap();
        let answers = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        net.place(
            Arc::new(d),
            profiles::italy().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        cim.lock().store(
            GroundCall::new("d1", "p_bf", vec![a.clone()]),
            answers.clone(),
            true,
            SimInstant::EPOCH,
        );
        let dcsm = Mutex::new(Dcsm::new());
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.answers.len(), answers.len());
        assert!(!out.incomplete);
        assert_eq!(out.stats.actual_calls, 0);
        // Provenance agrees: the one call step is complete.
        assert_eq!(out.provenance.len(), 1);
        assert!(out.provenance[0].complete());
    }

    /// A world whose only site is hard-down for an hour, with a cached
    /// partial prefix so queries degrade instead of failing.
    fn outage_world_with_prefix() -> (Network, Mutex<Cim>, Mutex<Dcsm>, Plan, usize) {
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().max().unwrap();
        let full = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        cim.lock()
            .add_invariant(parse_invariant("X <= Y => d1:p_bf(Y) >= d1:p_bf(X).").unwrap())
            .unwrap();
        let prefix: Vec<Value> = full.iter().take(1).cloned().collect();
        cim.lock().store(
            GroundCall::new("d1", "p_bf", vec![Value::str("")]),
            prefix.clone(),
            true,
            SimInstant::EPOCH,
        );
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        (net, cim, dcsm_new(), plan, prefix.len())
    }

    fn dcsm_new() -> Mutex<Dcsm> {
        Mutex::new(Dcsm::new())
    }

    #[test]
    fn breaker_short_circuit_saves_simulated_time_over_retries() {
        use crate::breaker::{BreakerBank, BreakerConfig, BreakerState};
        let cfg = ExecConfig {
            retry_attempts: 2,
            retry_backoff_ms: 500.0,
            retry_jitter_frac: 0.0,
            ..ExecConfig::default()
        };
        // Retry-only baseline: every run pays the full backoff ladder.
        let (net, cim, dcsm, plan, _) = outage_world_with_prefix();
        let without = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert!(without.t_all >= SimDuration::from_millis(1500)); // 500 + 1000
        assert_eq!(without.stats.retries, 2);

        // With a breaker: the first failure trips it (threshold 1), ending
        // the retry ladder; the next run short-circuits entirely.
        let (net, cim, dcsm, plan, prefix_len) = outage_world_with_prefix();
        let bank = Mutex::new(BreakerBank::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(300),
        }));
        let first = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .with_breakers(&bank)
            .run(&plan, None)
            .unwrap();
        assert_eq!(first.stats.breaker_trips, 1);
        assert_eq!(first.stats.retries, 0, "trip ends the retry ladder");
        assert!(first.t_all < without.t_all);
        let second = Executor::new(&net, &cim, &dcsm, first.clock.clone(), cfg)
            .with_breakers(&bank)
            .run(&plan, None)
            .unwrap();
        assert_eq!(second.stats.breaker_short_circuits, 1);
        assert_eq!(second.stats.unavailable, 0, "no network attempt at all");
        assert_eq!(second.answers.len(), prefix_len);
        assert!(second.incomplete);
        assert_eq!(second.provenance.len(), 1);
        assert!(matches!(
            second.provenance[0].gaps[0],
            IncompleteReason::BreakerOpen { .. }
        ));
        assert_eq!(
            bank.lock().state_at("cornell", second.clock.now()),
            BreakerState::Open
        );
    }

    #[test]
    fn half_open_probe_recovers_after_cooldown_on_virtual_clock() {
        use crate::breaker::{BreakerBank, BreakerConfig, BreakerState};
        // Outage covers only the first 10 virtual seconds.
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(10),
            ),
        );
        let cim = Mutex::new(Cim::new());
        let dcsm = dcsm_new();
        let (plan, _) = call_plan(Route::Direct);
        let bank = Mutex::new(BreakerBank::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(30),
        }));
        let cfg = ExecConfig::default();
        // Trip during the outage.
        let err = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .with_breakers(&bank)
            .run(&plan, None)
            .unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
        // Still cooling at t=20s: short-circuited.
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(20));
        let err = Executor::new(&net, &cim, &dcsm, clock, cfg)
            .with_breakers(&bank)
            .run(&plan, None)
            .unwrap_err();
        assert!(
            matches!(&err, HermesError::Unavailable { reason, .. } if reason.contains("circuit breaker")),
            "{err}"
        );
        // Past the cooldown (and the outage): the probe succeeds and the
        // breaker closes.
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(40));
        let out = Executor::new(&net, &cim, &dcsm, clock, cfg)
            .with_breakers(&bank)
            .run(&plan, None)
            .unwrap();
        assert!(!out.answers.is_empty());
        assert_eq!(out.stats.breaker_probes, 1);
        assert_eq!(out.stats.breaker_recoveries, 1);
        assert_eq!(
            bank.lock().state_at("cornell", out.clock.now()),
            BreakerState::Closed
        );
    }

    #[test]
    fn backoff_is_exponential_with_a_cap() {
        let cfg = ExecConfig {
            retry_attempts: 3,
            retry_backoff_ms: 100.0,
            retry_backoff_cap_ms: 150.0,
            retry_jitter_frac: 0.0,
            ..ExecConfig::default()
        };
        let (net, cim, dcsm, plan, _) = outage_world_with_prefix();
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        // Sleeps: 100 (base), then 200→capped 150, then 150. CIM probe
        // costs add a few more milliseconds.
        assert!(out.t_all >= SimDuration::from_millis(400), "{}", out.t_all);
        assert!(out.t_all <= SimDuration::from_millis(460), "{}", out.t_all);
        assert_eq!(out.stats.retries, 3);
    }

    #[test]
    fn retry_attempts_zero_means_first_failure_is_final() {
        let (net, cim, dcsm, plan, _) = outage_world_with_prefix();
        let cfg = ExecConfig {
            retry_attempts: 0,
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.stats.unavailable, 1);
        assert_eq!(out.stats.retries, 0);
        // And no backoff time was charged: only CIM processing cost.
        assert!(out.t_all < SimDuration::from_millis(100), "{}", out.t_all);
    }

    #[test]
    fn deadline_returns_partial_answers_with_provenance() {
        // Two-step cross product: the deadline fires between inner calls,
        // so some answers exist when evaluation unwinds.
        fn cross_world() -> (Network, Mutex<Cim>, Mutex<Dcsm>, Plan) {
            let (net, cim, dcsm) = world();
            let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
            let a = d.domain_values("p").into_iter().next().unwrap();
            let plan = Plan {
                steps: vec![
                    PlanStep::Call {
                        target: Term::var("B"),
                        call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a.clone())]),
                        route: Route::Direct,
                    },
                    PlanStep::Call {
                        target: Term::var("C"),
                        call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                        route: Route::Direct,
                    },
                ],
                answer_vars: vec![Arc::from("B"), Arc::from("C")],
            };
            (net, cim, dcsm, plan)
        }
        let (net, cim, dcsm, plan) = cross_world();
        let full = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert!(full.answers.len() > 1);
        // Halfway between first answer and completion: some answers make
        // it, the rest are cut off. Identical world seed → identical
        // timings, so the midpoint is deterministic.
        let deadline = SimDuration::from_micros(
            (full.t_first.unwrap().as_micros() + full.t_all.as_micros()) / 2,
        );
        let (net, cim, dcsm, plan) = cross_world();
        let cfg = ExecConfig {
            deadline: Some(deadline),
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert!(!out.answers.is_empty(), "deadline after first answer");
        assert!(out.answers.len() < full.answers.len());
        assert!(out.incomplete);
        assert_eq!(out.stats.deadline_aborts, 1);
        let gapped: Vec<_> = out.provenance.iter().filter(|p| !p.complete()).collect();
        assert!(!gapped.is_empty());
        assert!(gapped
            .iter()
            .all(|p| p.gaps.contains(&IncompleteReason::DeadlineExceeded)));
        // Answers the run did produce agree with a prefix of the full run.
        assert_eq!(out.answers[..], full.answers[..out.answers.len()]);
    }

    #[test]
    fn strict_deadline_fails_with_typed_error() {
        let (net, cim, dcsm) = world();
        let (plan, _) = call_plan(Route::Direct);
        // Zero-length virtual deadline with a two-call plan: the second
        // boundary is necessarily past it.
        let plan2 = Plan {
            steps: vec![plan.steps[0].clone(), plan.steps[0].clone()],
            answer_vars: plan.answer_vars.clone(),
        };
        let cfg = ExecConfig {
            deadline: Some(SimDuration::ZERO),
            deadline_strict: true,
            ..ExecConfig::default()
        };
        let err = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan2, None)
            .unwrap_err();
        assert!(matches!(err, HermesError::DeadlineExceeded { .. }));
    }

    #[test]
    fn serve_stale_answers_outage_from_incomplete_entry() {
        let mut net = Network::new(3);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 10, 3.0)]);
        use hermes_domains::Domain;
        let a = d.domain_values("p").into_iter().next().unwrap();
        let full = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
        net.place(
            Arc::new(d),
            profiles::cornell().with_outage(
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(3600),
            ),
        );
        let cim = Mutex::new(Cim::new());
        // An *incomplete* entry (e.g. from an earlier truncated call):
        // normally not a hit, but good enough during an outage.
        let stale: Vec<Value> = full.iter().take(2).cloned().collect();
        cim.lock().store(
            GroundCall::new("d1", "p_bf", vec![a.clone()]),
            stale.clone(),
            false,
            SimInstant::EPOCH,
        );
        let dcsm = dcsm_new();
        let plan = Plan {
            steps: vec![PlanStep::Call {
                target: Term::var("B"),
                call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                route: Route::Cim,
            }],
            answer_vars: vec![Arc::from("B")],
        };
        // Knob off: the outage is fatal.
        let err = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
        // Knob on: stale answers, flagged incomplete with provenance.
        cim.lock().set_serve_stale_on_outage(true);
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.answers.len(), stale.len());
        assert!(out.incomplete);
        assert!(matches!(
            out.provenance[0].gaps[0],
            IncompleteReason::SiteUnavailable { .. }
        ));
    }

    #[test]
    fn cache_only_tier_never_touches_the_wire() {
        let (net, cim, dcsm) = world();
        let (plan, _) = call_plan(Route::Cim);
        // Cold cache: the subgoal contributes nothing, flagged Downgraded.
        let cfg = ExecConfig {
            tier: PlanTier::CacheOnly,
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert!(out.answers.is_empty());
        assert!(out.incomplete);
        assert_eq!(out.stats.actual_calls, 0);
        assert_eq!(out.stats.tier_skipped_calls, 1);
        assert!(out.provenance[0]
            .gaps
            .contains(&IncompleteReason::Downgraded));

        // Warm the cache at Full, then CacheOnly serves the same answers
        // without a single network call.
        let full = Executor::new(&net, &cim, &dcsm, SimClock::new(), ExecConfig::default())
            .run(&plan, None)
            .unwrap();
        assert!(!full.answers.is_empty());
        let warm = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert_eq!(warm.answers, full.answers);
        assert_eq!(warm.stats.actual_calls, 0);
        assert!(!warm.incomplete);
    }

    #[test]
    fn budget_pressure_downgrades_one_way_and_beats_the_deadline() {
        let (net, cim, dcsm) = world();
        let (plan1, a) = call_plan(Route::Direct);
        // Two independent calls: the first burns the budget, the second
        // hits the re-checked boundary and triggers the downgrade.
        let plan = Plan {
            steps: vec![
                plan1.steps[0].clone(),
                PlanStep::Call {
                    target: Term::var("C"),
                    call: CallTemplate::new("d1", "p_bf", vec![Term::Const(a)]),
                    route: Route::Direct,
                },
            ],
            answer_vars: vec![Arc::from("B"), Arc::from("C")],
        };
        let cfg = ExecConfig {
            budget: Some(SimDuration::from_millis(1)),
            // A deadline far beyond the budget: the downgrade must fire
            // first, and the deadline must never be reached.
            deadline: Some(SimDuration::from_secs(3600)),
            cheap_call_ms: 0.0, // nothing qualifies as cheap
            collect_trace: true,
            ..ExecConfig::default()
        };
        let out = Executor::new(&net, &cim, &dcsm, SimClock::new(), cfg)
            .run(&plan, None)
            .unwrap();
        assert_eq!(out.stats.actual_calls, 1, "second call must be skipped");
        assert!(out.stats.tier_downgrades >= 1);
        assert!(out.stats.tier_skipped_calls >= 1);
        assert_eq!(out.stats.deadline_aborts, 0);
        assert!(out.incomplete);
        assert!(out.provenance[1]
            .gaps
            .contains(&IncompleteReason::Downgraded));
        // Downgrades only ever step down.
        for e in &out.trace {
            if let TraceEvent::TierDowngraded { from, to, reason } = &e.event {
                assert!(to < from);
                assert_eq!(*reason, TierReason::BudgetPressure);
            }
        }
        assert!(out
            .trace
            .iter()
            .any(|e| matches!(e.event, TraceEvent::TierDowngraded { .. })));
    }
}
