//! The mediator facade: parse → rewrite → cost → choose → execute.

use crate::breaker::BreakerBank;
use crate::caches::CacheControl;
use crate::cost::{choose_plan, estimate_plan, CostConfig};
use crate::cursor::InteractiveQuery;
use crate::exec::{ExecConfig, ExecOutcome, ExecStats, Executor, SubgoalProvenance};
use crate::matcache::MatCache;
use crate::plan::{Plan, PlanStep};
use crate::rewrite::{
    cache_servable_plans, enumerate_plans_with_pushdowns, PushdownRule, RewriteConfig,
};
use crate::tier::{select_tier, PlanTier, TierDecision, TierInputs, TierLoad, TierReason};
use crate::trace::{TraceEntry, TraceEvent};
use hermes_analysis::{AnalysisReport, Analyzer, Diagnostic, QueryForm};
use hermes_cim::{Cim, CimPolicy, RoutingDecision};
use hermes_common::sync::Mutex;
use hermes_common::{HermesError, Result, SimClock, SimDuration, Value};
use hermes_dcsm::{CostVector, Dcsm};
use hermes_lang::{parse_program, parse_query, validate_program, Program, Query};
use hermes_net::Network;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Mediator-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct MediatorConfig {
    /// Rewriter limits.
    pub rewrite: RewriteConfig,
    /// Cost-model knobs.
    pub cost: CostConfig,
    /// Executor knobs.
    pub exec: ExecConfig,
    /// Optimize for time-to-first-answer (interactive mode, §3) instead of
    /// time-to-all-answers.
    pub optimize_first_answer: bool,
    /// When a hard outage (or open breaker) kills the chosen plan, re-enter
    /// the plan space and run the cheapest alternative that avoids the dead
    /// site. Work the failed attempt completed survives in the answer
    /// cache, so the replanned run resumes rather than restarts.
    pub failover: bool,
    /// Run the deterministic tier selector before every query (see
    /// [`crate::tier`]). Off by default: the paper-exact path never
    /// consults the selector unless the request itself carries a tier or
    /// a budget.
    pub adaptive_tiers: bool,
}

impl Default for MediatorConfig {
    fn default() -> Self {
        MediatorConfig {
            rewrite: RewriteConfig::default(),
            cost: CostConfig::default(),
            exec: ExecConfig::default(),
            optimize_first_answer: false,
            failover: true,
            adaptive_tiers: false,
        }
    }
}

/// The chosen plan plus the full plan space and estimates — what
/// `EXPLAIN` shows.
#[derive(Clone, Debug)]
pub struct Planned {
    /// All executable plans found.
    pub plans: Vec<Plan>,
    /// The §7 estimate for each plan (aligned with `plans`).
    pub estimates: Vec<CostVector>,
    /// Index of the chosen plan.
    pub chosen: usize,
}

impl Planned {
    /// The chosen plan.
    pub fn plan(&self) -> &Plan {
        &self.plans[self.chosen]
    }

    /// The chosen plan's estimate.
    pub fn estimate(&self) -> &CostVector {
        &self.estimates[self.chosen]
    }
}

/// The result of an all-answers query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Answer-variable names, in output order.
    pub columns: Vec<Arc<str>>,
    /// One row per answer, aligned with `columns`. Variables an answer
    /// leaves unbound (possible only for probe-style queries) are `Null`.
    pub rows: Vec<Vec<Value>>,
    /// Simulated time to the first answer.
    pub t_first: Option<SimDuration>,
    /// Simulated time to completion.
    pub t_all: SimDuration,
    /// The executed plan.
    pub plan: Plan,
    /// The optimizer's pre-execution estimate for that plan.
    pub estimate: CostVector,
    /// Number of plans the rewriter produced.
    pub plans_considered: usize,
    /// Execution counters.
    pub stats: ExecStats,
    /// True when any subgoal's answers may be incomplete.
    pub incomplete: bool,
    /// Per-subgoal completeness provenance for the executed plan.
    pub provenance: Vec<SubgoalProvenance>,
    /// Alternative plans executed after outages killed earlier ones.
    pub failovers: u32,
    /// The execution trace (empty unless `ExecConfig::collect_trace`).
    pub trace: Vec<crate::trace::TraceEntry>,
}

/// One query and its per-run options, built fluently:
///
/// ```ignore
/// m.query(QueryRequest::new("?- item(A, B).").limit(5).trace(true))?;
/// ```
///
/// A bare `&str` (or `String`) converts into a request with all options
/// at their defaults, so `m.query("?- item(A, B).")` keeps working.
/// Options override the mediator's configuration for this run only.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    pub(crate) src: String,
    pub(crate) limit: Option<usize>,
    pub(crate) deadline: Option<SimDuration>,
    pub(crate) bindings: Option<hermes_lang::Subst>,
    pub(crate) trace: Option<bool>,
    pub(crate) parallelism: Option<usize>,
    pub(crate) budget: Option<SimDuration>,
    pub(crate) tier: Option<PlanTier>,
}

impl QueryRequest {
    /// A request for `src` with every option at its default.
    pub fn new(src: impl Into<String>) -> Self {
        QueryRequest {
            src: src.into(),
            limit: None,
            deadline: None,
            bindings: None,
            trace: None,
            parallelism: None,
            budget: None,
            tier: None,
        }
    }

    /// Stop after `n` answers.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Abort (returning the answers so far) once the virtual clock has
    /// advanced `d` past the start of the run.
    pub fn deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Substitute these parameter bindings into the query *before*
    /// planning, so the optimizer sees real constants (and DCSM can use
    /// exact-constant statistics) instead of `$b` placeholders.
    pub fn bindings(mut self, params: hermes_lang::Subst) -> Self {
        self.bindings = Some(params);
        self
    }

    /// Collect an execution trace for this run.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = Some(on);
        self
    }

    /// Let the scheduler overlap up to `k` independent domain calls
    /// (`1` = the paper's sequential executor). Also makes the cost model
    /// overlap-aware and biases plan enumeration toward orderings with
    /// wide independence groups.
    pub fn parallelism(mut self, k: usize) -> Self {
        self.parallelism = Some(k.max(1));
        self
    }

    /// Give the run a virtual-time budget. Unlike a deadline, exhausting
    /// the budget never aborts: the executor steps the active plan tier
    /// down one level (one-way) and keeps going, so a budgeted query
    /// returns degraded answers instead of an error. Setting a budget
    /// also engages the tier selector for this run.
    pub fn budget(mut self, b: SimDuration) -> Self {
        self.budget = Some(b);
        self
    }

    /// Pin the plan tier for this run (the selector's explicit-override
    /// rule — it beats every other selection rule).
    pub fn tier(mut self, tier: PlanTier) -> Self {
        self.tier = Some(tier);
        self
    }
}

impl From<&str> for QueryRequest {
    fn from(src: &str) -> Self {
        QueryRequest::new(src)
    }
}

impl From<String> for QueryRequest {
    fn from(src: String) -> Self {
        QueryRequest::new(src)
    }
}

impl From<&String> for QueryRequest {
    fn from(src: &String) -> Self {
        QueryRequest::new(src.as_str())
    }
}

/// The HERMES mediator: a program, a network of domains, the two caches,
/// and a persistent virtual clock.
pub struct Mediator {
    program: Program,
    network: Arc<Network>,
    cim: Arc<Mutex<Cim>>,
    dcsm: Arc<Mutex<Dcsm>>,
    breakers: Arc<Mutex<BreakerBank>>,
    policy: CimPolicy,
    config: MediatorConfig,
    clock: SimClock,
    pushdowns: Vec<PushdownRule>,
    /// Warning-severity findings from the last `register_program` (or
    /// `analyze`) run; queryable via [`Mediator::analysis_warnings`].
    analysis_warnings: Vec<Diagnostic>,
    /// The subplan materialization cache. Inert until a query runs with
    /// `ExecConfig::share_subplans` on.
    matcache: Arc<MatCache>,
    /// Monotone counter of program/policy states; the matcache's installed
    /// verdicts are tagged with it, so a `register_program` or routing
    /// change triggers a verdict refresh before the next sharing query.
    cache_epoch: u64,
}

impl Mediator {
    /// Builds a mediator from a parsed program. The program is validated.
    pub fn new(program: Program, network: Network) -> Result<Self> {
        validate_program(&program)?;
        Ok(Mediator {
            program,
            network: Arc::new(network),
            cim: Arc::new(Mutex::new(Cim::new())),
            dcsm: Arc::new(Mutex::new(Dcsm::new())),
            breakers: Arc::new(Mutex::new(BreakerBank::default())),
            policy: CimPolicy::cache_everything(),
            config: MediatorConfig::default(),
            clock: SimClock::new(),
            pushdowns: Vec::new(),
            analysis_warnings: Vec::new(),
            matcache: Arc::new(MatCache::default()),
            cache_epoch: 0,
        })
    }

    /// Builds a mediator from program source text.
    pub fn from_source(src: &str, network: Network) -> Result<Self> {
        Mediator::new(parse_program(src)?, network)
    }

    /// Runs the whole-program static analyzer over `program` (against this
    /// mediator's domain registry, invariant store, and DCSM) and installs
    /// it as the active program **only** when no error-severity diagnostics
    /// are found. On rejection the error carries every rendered diagnostic;
    /// on success warning-severity findings are stored and queryable via
    /// [`Mediator::analysis_warnings`].
    pub fn register_program(&mut self, program: Program, query_forms: &[QueryForm]) -> Result<()> {
        let report = self.analyze_program(&program, query_forms);
        if report.has_errors() {
            return Err(HermesError::Analysis {
                diagnostics: report.diagnostics.iter().map(|d| d.to_string()).collect(),
            });
        }
        self.analysis_warnings = report.warnings().into_iter().cloned().collect();
        self.program = program;
        self.cache_epoch += 1;
        Ok(())
    }

    /// Parses and registers program source text (see `register_program`).
    pub fn register_source(&mut self, src: &str, query_forms: &[QueryForm]) -> Result<()> {
        self.register_program(parse_program(src)?, query_forms)
    }

    /// Runs the analyzer over the *active* program without changing it.
    pub fn analyze(&self, query_forms: &[QueryForm]) -> AnalysisReport {
        self.analyze_program(&self.program, query_forms)
    }

    fn analyze_program(&self, program: &Program, query_forms: &[QueryForm]) -> AnalysisReport {
        let cim = self.cim.lock();
        let dcsm = self.dcsm.lock();
        let routes = |domain: &str, function: &str| {
            self.policy.decide(domain, function) == RoutingDecision::UseCim
        };
        Analyzer::new(program)
            .with_registry(self.network.registry())
            .with_invariant_store(cim.invariants())
            .with_dcsm(&dcsm)
            .with_query_forms(query_forms.iter().cloned())
            .with_cache_routing(&routes)
            .analyze()
    }

    /// Runs the analyzer over the active program with the
    /// materialization-safety pass (`HA070`–`HA074`) enabled: a note-level
    /// inventory of which subplans are safe to materialize, priced against
    /// the live DCSM, with the CIM routing policy doubling as the
    /// volatility signal (a call the policy routes around the CIM has no
    /// invalidation path, so its answers may go stale unnoticed). This is
    /// what the REPL's `:materialize` command prints.
    pub fn analyze_materialization(&self, query_forms: &[QueryForm]) -> AnalysisReport {
        let cim = self.cim.lock();
        let dcsm = self.dcsm.lock();
        let routes = |domain: &str, function: &str| {
            self.policy.decide(domain, function) == RoutingDecision::UseCim
        };
        Analyzer::new(&self.program)
            .with_registry(self.network.registry())
            .with_invariant_store(cim.invariants())
            .with_dcsm(&dcsm)
            .with_query_forms(query_forms.iter().cloned())
            .with_cache_routing(&routes)
            .with_materialization()
            .analyze()
    }

    /// Warning-severity findings from the most recent
    /// [`Mediator::register_program`] run.
    pub fn analysis_warnings(&self) -> &[Diagnostic] {
        &self.analysis_warnings
    }

    /// Replaces the CIM routing policy.
    #[deprecated(
        since = "0.1.0",
        note = "use `caches().policy().routing(..).apply()` — the unified \
                cache-control facade keeps the subplan cache's safety \
                verdicts in sync with routing changes"
    )]
    pub fn set_policy(&mut self, policy: CimPolicy) {
        self.policy = policy;
        self.cache_epoch += 1;
    }

    /// The unified cache-control facade over both cache tiers (the CIM's
    /// ground-call answer cache and the subplan materialization cache):
    /// stats, per-source invalidation, clearing, invariants, and the
    /// policy builder. See [`CacheControl`].
    pub fn caches(&mut self) -> CacheControl<'_> {
        CacheControl::serial(
            &self.cim,
            &mut self.policy,
            &mut self.config.exec,
            &mut self.cache_epoch,
            &self.matcache,
        )
    }

    /// Registers a selection-pushdown rule (§5: "push selections to the
    /// source"). The rewriter will emit fused plan variants for it.
    pub fn add_pushdown(&mut self, rule: PushdownRule) {
        self.pushdowns.push(rule);
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut MediatorConfig {
        &mut self.config
    }

    /// The configuration.
    pub fn config(&self) -> &MediatorConfig {
        &self.config
    }

    /// The shared CIM (cache + invariants). Add invariants through this.
    #[deprecated(
        since = "0.1.0",
        note = "use `caches()` for stats/invariants/invalidation/budgets; \
                raw CIM access bypasses the facade and the subplan cache's \
                per-source invalidation scope"
    )]
    pub fn cim(&self) -> Arc<Mutex<Cim>> {
        self.cim.clone()
    }

    /// The shared DCSM (statistics cache).
    pub fn dcsm(&self) -> Arc<Mutex<Dcsm>> {
        self.dcsm.clone()
    }

    /// The per-site circuit breakers. The bank lives as long as the
    /// mediator, so a site isolated during one query stays isolated for the
    /// next until its cooldown elapses.
    pub fn breakers(&self) -> Arc<Mutex<BreakerBank>> {
        self.breakers.clone()
    }

    /// The network of placed domains.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The mediator program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current virtual time (advances across queries, so the simulated
    /// network load drifts like the paper's day-long measurement runs).
    pub fn now(&self) -> hermes_common::SimInstant {
        self.clock.now()
    }

    /// Advances the virtual clock (e.g. to model idle time between
    /// experiment runs).
    pub fn advance_clock(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    /// Parses, rewrites, and costs a query without executing it.
    pub fn plan(&self, query_src: &str) -> Result<Planned> {
        let query = parse_query(query_src)?;
        self.plan_query(&query)
    }

    /// Plans a pre-parsed query.
    pub fn plan_query(&self, query: &Query) -> Result<Planned> {
        self.check_mixed_definitions(query)?;
        let plans = enumerate_plans_with_pushdowns(
            &self.program,
            query,
            &self.policy,
            self.config.rewrite,
            &self.pushdowns,
        )?;
        let dcsm = self.dcsm.lock();
        let (chosen, estimates) = choose_plan(
            &plans,
            &*dcsm,
            &self.config.cost,
            self.config.optimize_first_answer,
        );
        Ok(Planned {
            plans,
            estimates,
            chosen,
        })
    }

    /// Predicates defined by both facts and rules have ambiguous
    /// access-path semantics — reject them with a clear message instead of
    /// silently finding no plan.
    fn check_mixed_definitions(&self, _query: &Query) -> Result<()> {
        check_mixed_definitions(&self.program)
    }

    /// Runs a query. Accepts plain source text (all-answers mode, §3) or
    /// a [`QueryRequest`] carrying per-run options:
    ///
    /// ```ignore
    /// m.query("?- item(A, B).")?;
    /// m.query(QueryRequest::new("?- item(A, B).").limit(5).parallelism(4))?;
    /// ```
    ///
    /// Request options override the mediator's configuration for this run
    /// only; the configuration is restored before returning.
    pub fn query(&mut self, req: impl Into<QueryRequest>) -> Result<QueryResult> {
        let req = req.into();
        let saved = self.config;
        if let Some(d) = req.deadline {
            self.config.exec.deadline = Some(d);
        }
        if let Some(t) = req.trace {
            self.config.exec.collect_trace = t;
        }
        if let Some(k) = req.parallelism {
            self.config.exec.max_parallel_calls = k;
            self.config.cost.max_parallel_calls = k;
            self.config.rewrite.favor_parallel = k > 1;
        }
        if let Some(b) = req.budget {
            self.config.exec.budget = Some(b);
        }
        let result = (|| {
            let mut planned = match &req.bindings {
                Some(params) => {
                    let query = parse_query(&req.src)?;
                    let bound = crate::rewrite::bind_query(&query, params);
                    self.plan_query(&bound)?
                }
                None => self.plan(&req.src)?,
            };
            // The serial mediator has no admission gate, so the selector
            // sees an unbounded, unloaded one.
            let decision = self.select_query_tier(&req, &mut planned, TierLoad::unbounded());
            if let Some(d) = decision {
                self.config.exec.tier = d.tier;
            }
            let selected_at = self.clock.now();
            let mut result = self.execute(planned, req.limit)?;
            if let Some(d) = decision {
                if d.reason != TierReason::Default && self.config.exec.collect_trace {
                    result.trace.insert(
                        0,
                        TraceEntry {
                            at: selected_at,
                            event: TraceEvent::TierSelected {
                                tier: d.tier,
                                reason: d.reason,
                            },
                        },
                    );
                }
            }
            Ok(result)
        })();
        self.config = saved;
        result
    }

    /// Runs the deterministic tier selector for this request, when
    /// engaged — by [`MediatorConfig::adaptive_tiers`], an explicit
    /// `QueryRequest::tier`, or a budget. Returns `None` on the default
    /// path, which therefore stays bit-identical to the paper-exact
    /// behavior. A `CacheOnly` decision also re-points `planned.chosen`
    /// at the cheapest plan whose every call is CIM-routed, when one
    /// exists: a Direct-routed call can never be cache-served.
    fn select_query_tier(
        &self,
        req: &QueryRequest,
        planned: &mut Planned,
        load: TierLoad,
    ) -> Option<TierDecision> {
        let engaged =
            self.config.adaptive_tiers || req.tier.is_some() || self.config.exec.budget.is_some();
        if !engaged {
            return None;
        }
        let plan_sites = self.plan_sites(planned.plan());
        let open = self.breakers.lock().open_sites(self.clock.now());
        let decision = select_tier(&TierInputs {
            requested: req.tier,
            budget: self.config.exec.budget,
            estimate_ms: planned.estimate().t_all_ms.unwrap_or(0.0),
            plan_site_breaker_open: open.iter().any(|s| plan_sites.contains(s.as_ref())),
            load,
        });
        if decision.tier == PlanTier::CacheOnly {
            let servable = cache_servable_plans(&planned.plans);
            if !servable.is_empty() && !servable.contains(&planned.chosen) {
                planned.chosen = servable
                    .into_iter()
                    .min_by(|&a, &b| {
                        let ta = planned.estimates[a].t_all_ms.unwrap_or(f64::INFINITY);
                        let tb = planned.estimates[b].t_all_ms.unwrap_or(f64::INFINITY);
                        ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("servable is non-empty");
            }
        }
        Some(decision)
    }

    /// Splits this mediator into a shared-state concurrent server: the
    /// planning inputs (program, policy, configuration, pushdown rules)
    /// are copied into an immutable core, the answer cache and statistics
    /// cache are redistributed over `shards` independently locked shards,
    /// and the breaker bank is shared. The returned server's
    /// [`query`](crate::server::ConcurrentMediator::query) takes `&self`,
    /// so any number of client threads can call it at once.
    pub fn to_concurrent(&self, shards: usize) -> crate::server::ConcurrentMediator {
        // The concurrent server's planning core is immutable, so its
        // safety verdicts are fixed here, once, from the program and
        // routing policy it is born with.
        if self.config.exec.share_subplans {
            self.refresh_subplan_verdicts();
        }
        crate::server::ConcurrentMediator::from_parts(
            self.program.clone(),
            self.policy.clone(),
            self.config,
            self.pushdowns.clone(),
            self.network.clone(),
            hermes_cim::ShardedCim::from_template(&self.cim.lock(), shards),
            hermes_dcsm::ShardedDcsm::from_dcsm(&self.dcsm.lock(), shards),
            self.breakers.clone(),
            self.matcache.clone(),
            self.clock.now(),
        )
    }

    /// Recomputes and installs the matcache's HA070/HA074 safety verdicts
    /// when the installed ones no longer describe the current
    /// program/policy state. Cheap when current (one epoch compare); a
    /// flat classification pass when stale.
    fn refresh_subplan_verdicts(&self) {
        if self.matcache.verdicts_epoch() == Some(self.cache_epoch) {
            return;
        }
        let routes = |domain: &str, function: &str| {
            self.policy.decide(domain, function) == RoutingDecision::UseCim
        };
        let verdicts = hermes_analysis::MaterializationVerdicts::compute(
            &self.program,
            &[],
            None,
            Some(&routes),
        );
        self.matcache.install_verdicts(self.cache_epoch, verdicts);
    }

    /// Executes an already-planned query. When [`MediatorConfig::failover`]
    /// is on and a hard outage (or open breaker) kills the running plan,
    /// the cheapest alternative plan avoiding every dead site seen so far
    /// is executed instead; answers the failed attempt already cached are
    /// reused, so replanning resumes rather than restarts.
    pub fn execute(&mut self, planned: Planned, limit: Option<usize>) -> Result<QueryResult> {
        if self.config.exec.share_subplans {
            self.refresh_subplan_verdicts();
        }
        let mut idx = planned.chosen;
        let mut avoid: BTreeSet<String> = BTreeSet::new();
        let mut failovers = 0u32;
        // Counters from plan attempts that died mid-run; folded into the
        // final result so the query's cost accounting stays honest.
        let mut carried = ExecStats::default();
        loop {
            let plan = planned.plans[idx].clone();
            let estimate = planned.estimates[idx];
            let mut executor = Executor::new(
                &self.network,
                self.cim.as_ref(),
                self.dcsm.as_ref(),
                self.clock.clone(),
                self.config.exec,
            )
            .with_breakers(&self.breakers);
            if self.config.exec.share_subplans {
                executor = executor.with_matcache(&self.matcache);
            }
            let attempt = executor.run(&plan, limit);
            // The attempt's virtual time is real whether it succeeded or
            // not: a failover resumes *after* the retries the dead plan
            // burned, it does not rewind them.
            self.clock.advance_to(executor.now());
            match attempt {
                Ok(outcome) => {
                    self.clock = outcome.clock.clone();
                    let mut result = project(plan, estimate, planned.plans.len(), outcome);
                    result.failovers = failovers;
                    result.stats.absorb(&carried);
                    return Ok(result);
                }
                Err(HermesError::Unavailable { site, reason }) if self.config.failover => {
                    carried.absorb(&executor.stats());
                    // A site can only fail over once; seeing it again means
                    // no alternative exists and the outage is final.
                    if !avoid.insert(site.clone()) {
                        return Err(HermesError::Unavailable { site, reason });
                    }
                    match self.failover_choice(&planned, &avoid) {
                        Some(next) => {
                            failovers += 1;
                            idx = next;
                        }
                        None => return Err(HermesError::Unavailable { site, reason }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The sites a plan's call steps touch.
    fn plan_sites(&self, plan: &Plan) -> BTreeSet<String> {
        let mut sites = BTreeSet::new();
        for step in &plan.steps {
            if let PlanStep::Call { call, .. } = step {
                if let Ok(site) = self.network.site_of(&call.domain) {
                    sites.insert(site.name.to_string());
                }
            }
        }
        sites
    }

    /// The cheapest plan (under current statistics) touching none of the
    /// sites in `avoid`, if any.
    fn failover_choice(&self, planned: &Planned, avoid: &BTreeSet<String>) -> Option<usize> {
        let eligible: Vec<usize> = (0..planned.plans.len())
            .filter(|&i| self.plan_sites(&planned.plans[i]).is_disjoint(avoid))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let candidates: Vec<Plan> = eligible.iter().map(|&i| planned.plans[i].clone()).collect();
        let dcsm = self.dcsm.lock();
        let (chosen, _) = choose_plan(
            &candidates,
            &*dcsm,
            &self.config.cost,
            self.config.optimize_first_answer,
        );
        Some(eligible[chosen])
    }

    /// Starts a query in interactive mode (§3): answers stream on demand;
    /// dropping the handle cancels outstanding source calls.
    ///
    /// Interactive runs share the caches but do not advance the mediator's
    /// persistent clock (their virtual timeline is reported per-answer).
    pub fn query_interactive(&self, query_src: &str) -> Result<InteractiveQuery> {
        let planned = self.plan(query_src)?;
        let plan = planned.plans[planned.chosen].clone();
        Ok(InteractiveQuery::spawn(
            self.network.clone(),
            self.cim.clone(),
            self.dcsm.clone(),
            Some(self.breakers.clone()),
            self.clock.clone(),
            self.config.exec,
            plan,
        ))
    }

    /// Persists the answer cache and the statistics cache into `dir`
    /// (`answers.cache` and `stats.db`). Expensive remote knowledge
    /// survives a mediator restart.
    pub fn save_state(&self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        hermes_cim::persist::save_to_path(self.cim.lock().cache(), &dir.join("answers.cache"))?;
        hermes_dcsm::persist::save_to_path(self.dcsm.lock().db(), &dir.join("stats.db"))?;
        Ok(())
    }

    /// Restores state saved by [`Mediator::save_state`]. Missing files are
    /// not an error (a fresh deployment); malformed files are.
    pub fn load_state(&mut self, dir: &std::path::Path) -> Result<()> {
        let cache_path = dir.join("answers.cache");
        if cache_path.exists() {
            let cache = hermes_cim::persist::load_from_path(&cache_path)?;
            *self.cim.lock().cache_mut() = cache;
        }
        let stats_path = dir.join("stats.db");
        if stats_path.exists() {
            let db = hermes_dcsm::persist::load_from_path(&stats_path)?;
            self.dcsm.lock().replay_db(&db);
        }
        Ok(())
    }

    /// A human-readable EXPLAIN: every candidate plan with its estimate,
    /// the chosen one marked.
    pub fn explain(&self, query_src: &str) -> Result<String> {
        let planned = self.plan(query_src)?;
        let mut s = String::new();
        for (i, (plan, est)) in planned.plans.iter().zip(&planned.estimates).enumerate() {
            let marker = if i == planned.chosen { ">>" } else { "  " };
            s.push_str(&format!("{marker} plan {i}: est {est}\n"));
            for line in plan.to_string().lines() {
                s.push_str(&format!("     {line}\n"));
            }
        }
        Ok(s)
    }

    /// Re-estimates one plan with the current statistics (used by the
    /// experiment harnesses to ask "what does DCSM predict now?").
    pub fn estimate_plan(&self, plan: &Plan) -> CostVector {
        estimate_plan(plan, &*self.dcsm.lock(), &self.config.cost)
    }
}

/// Rejects programs where a predicate mixes fact and rule definitions
/// (ambiguous access-path semantics).
pub(crate) fn check_mixed_definitions(program: &Program) -> Result<()> {
    for key in program.defined_predicates() {
        let rules = program.rules_for(&key.0, key.1);
        let facts = rules.iter().filter(|r| r.body.is_empty()).count();
        if facts > 0 && facts < rules.len() {
            return Err(HermesError::Plan(format!(
                "predicate `{}/{}` mixes facts and rules; define it by \
                 facts only or by access-path rules only",
                key.0, key.1
            )));
        }
    }
    Ok(())
}

/// Projects an execution outcome onto a plan's answer variables.
pub(crate) fn project(
    plan: Plan,
    estimate: CostVector,
    plans_considered: usize,
    outcome: ExecOutcome,
) -> QueryResult {
    let columns = plan.answer_vars.clone();
    let rows = outcome
        .answers
        .iter()
        .map(|theta| {
            columns
                .iter()
                .map(|v| theta.get(v).cloned().unwrap_or(Value::Null))
                .collect()
        })
        .collect();
    QueryResult {
        columns,
        rows,
        t_first: outcome.t_first,
        t_all: outcome.t_all,
        plan,
        estimate,
        plans_considered,
        stats: outcome.stats,
        incomplete: outcome.incomplete,
        provenance: outcome.provenance,
        failovers: 0,
        trace: outcome.trace,
    }
}

impl std::fmt::Debug for Mediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mediator")
            .field("rules", &self.program.rules.len())
            .field("network", &self.network)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_domains::Domain;
    use hermes_net::profiles;

    fn mediator() -> Mediator {
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::cornell());
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            item(A, B) :- in(A, d1:p_fb(B)).
            ",
            net,
        )
        .unwrap()
    }

    #[test]
    fn query_all_answers_end_to_end() {
        let mut m = mediator();
        let result = m.query("?- item(A, B).").unwrap();
        let expect = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)])
            .call("p_ff", &[])
            .unwrap()
            .answers
            .len();
        assert_eq!(result.rows.len(), expect);
        assert_eq!(result.columns.len(), 2);
        assert!(result.t_all > SimDuration::ZERO);
        assert!(!result.incomplete);
    }

    #[test]
    fn bound_query_uses_probe_path_and_matches_ff_path() {
        let mut m = mediator();
        let all = m.query("?- item(A, B).").unwrap();
        let a0 = all.rows[0][0].clone();
        let expected: Vec<&Vec<Value>> = all.rows.iter().filter(|r| r[0] == a0).collect();
        let bound = m
            .query(format!("?- item({}, B).", a0.to_literal()))
            .unwrap();
        // The bound query projects only B (A is a constant in the query).
        assert_eq!(bound.columns.len(), 1);
        assert_eq!(bound.rows.len(), expected.len());
        let mut got: Vec<Value> = bound.rows.iter().map(|r| r[0].clone()).collect();
        got.sort();
        let mut want: Vec<Value> = expected.iter().map(|r| r[1].clone()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn all_plans_compute_the_same_answers() {
        let m = mediator();
        let planned = m.plan("?- item('p_3', B).").unwrap();
        assert!(planned.plans.len() >= 2);
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for i in 0..planned.plans.len() {
            let mut m2 = mediator();
            let single = Planned {
                plans: vec![planned.plans[i].clone()],
                estimates: vec![planned.estimates[i]],
                chosen: 0,
            };
            let res = m2.execute(single, None).unwrap();
            let mut rows = res.rows.clone();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "plan {i} disagrees"),
            }
        }
    }

    #[test]
    fn caching_speeds_up_repeat_queries() {
        let mut m = mediator();
        let first = m.query("?- item('p_1', B).").unwrap();
        let second = m.query("?- item('p_1', B).").unwrap();
        assert_eq!(first.rows, second.rows);
        assert!(second.t_all < first.t_all);
        assert!(second.stats.cim_exact >= 1);
    }

    #[test]
    fn statistics_accumulate_across_queries() {
        let mut m = mediator();
        assert!(m.dcsm().lock().db().is_empty());
        m.query("?- item('p_1', B).").unwrap();
        assert!(!m.dcsm().lock().db().is_empty());
    }

    #[test]
    fn limited_query_stops_early() {
        let mut m = mediator();
        let result = m
            .query(QueryRequest::new("?- item(A, B).").limit(2))
            .unwrap();
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn request_options_do_not_leak_into_config() {
        let mut m = mediator();
        m.query(
            QueryRequest::new("?- item(A, B).")
                .deadline(SimDuration::from_secs(3600))
                .trace(true)
                .parallelism(4)
                .budget(SimDuration::from_secs(1800))
                .tier(PlanTier::Full),
        )
        .unwrap();
        assert_eq!(m.config().exec.deadline, None);
        assert!(!m.config().exec.collect_trace);
        assert_eq!(m.config().exec.max_parallel_calls, 1);
        assert_eq!(m.config().cost.max_parallel_calls, 1);
        assert!(!m.config().rewrite.favor_parallel);
        assert_eq!(m.config().exec.budget, None);
        assert_eq!(m.config().exec.tier, PlanTier::Full);
    }

    #[test]
    fn explicit_cache_only_tier_serves_warm_queries_without_the_wire() {
        let mut m = mediator();
        // Cold + cache-only: nothing to serve, flagged Downgraded.
        let cold = m
            .query(QueryRequest::new("?- item('p_1', B).").tier(PlanTier::CacheOnly))
            .unwrap();
        assert!(cold.rows.is_empty());
        assert!(cold.incomplete);
        assert_eq!(cold.stats.actual_calls, 0);
        // Warm the cache at the default tier, then cache-only matches it.
        let full = m.query("?- item('p_1', B).").unwrap();
        let warm = m
            .query(
                QueryRequest::new("?- item('p_1', B).")
                    .tier(PlanTier::CacheOnly)
                    .trace(true),
            )
            .unwrap();
        assert_eq!(warm.rows, full.rows);
        assert_eq!(warm.stats.actual_calls, 0);
        assert!(!warm.incomplete);
        // The selection is visible in the trace with its reason code.
        assert!(warm.trace.iter().any(|e| matches!(
            e.event,
            TraceEvent::TierSelected {
                tier: PlanTier::CacheOnly,
                reason: TierReason::ExplicitOverride,
            }
        )));
    }

    #[test]
    fn adaptive_tiers_stay_full_when_nothing_is_wrong() {
        let mut m = mediator();
        m.config_mut().adaptive_tiers = true;
        let adaptive = m
            .query(QueryRequest::new("?- item(A, B).").trace(true))
            .unwrap();
        let mut plain = mediator();
        let reference = plain.query("?- item(A, B).").unwrap();
        // Healthy sites, no budget, no load: the selector's default rule
        // picks Full and the answers match the paper-exact run.
        assert_eq!(adaptive.rows, reference.rows);
        assert!(!adaptive
            .trace
            .iter()
            .any(|e| matches!(e.event, TraceEvent::TierSelected { .. })));
        assert_eq!(adaptive.stats.tier_skipped_calls, 0);
    }

    #[test]
    fn explain_lists_plans_and_choice() {
        let m = mediator();
        let text = m.explain("?- item('p_1', B).").unwrap();
        assert!(text.contains(">> plan"));
        assert!(text.contains("est [Tf="));
    }

    #[test]
    fn interactive_streams_answers() {
        let m = mediator();
        let mut iq = m.query_interactive("?- item(A, B).").unwrap();
        let first = iq.next_answer();
        assert!(first.is_some());
        let batch = iq.next_batch(3);
        assert!(batch.len() <= 3);
        let final_ = iq.stop();
        assert!(final_.error.is_none());
    }

    #[test]
    fn interactive_drain_matches_all_answers() {
        let mut m = mediator();
        let all = m.query("?- item(A, B).").unwrap();
        let mut iq = m.query_interactive("?- item(A, B).").unwrap();
        let mut streamed = Vec::new();
        while let Some((row, _)) = iq.next_answer() {
            streamed.push(row);
        }
        assert_eq!(streamed.len(), all.rows.len());
        let f = iq.stop();
        assert!(f.finished);
    }

    #[test]
    fn mixed_fact_rule_predicate_rejected() {
        let domain = SyntheticDomain::generate("d1", 1, &[RelationSpec::uniform("p", 4, 1.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::maryland());
        let mut m = Mediator::from_source(
            "mix('a', 'b').
             mix(A, B) :- in(B, d1:p_bf(A)).",
            net,
        )
        .unwrap();
        let err = m.query("?- mix(X, Y).").unwrap_err();
        assert!(err.to_string().contains("mixes facts and rules"));
    }

    #[test]
    fn parameterized_queries_bind_before_planning() {
        use hermes_common::Value;
        use hermes_lang::Subst;
        let mut m = mediator();
        let direct = m.query("?- item('p_1', B).").unwrap();
        let params = Subst::from_pairs([("A", Value::str("p_1"))]);
        let bound = m
            .query(QueryRequest::new("?- item(A, B).").bindings(params))
            .unwrap();
        // The bound query projects both A and B; B values must agree.
        let direct_bs: Vec<Value> = direct.rows.iter().map(|r| r[0].clone()).collect();
        let bound_bs: Vec<Value> = bound
            .rows
            .iter()
            .map(|r| {
                r[bound
                    .columns
                    .iter()
                    .position(|c| c.as_ref() == "B")
                    .unwrap()]
                .clone()
            })
            .collect();
        assert_eq!(direct_bs, bound_bs);
        // And the plan saw the constant (no full-scan-only plan space).
        assert!(bound.plan.to_string().contains("'p_1'"), "{}", bound.plan);
    }

    #[test]
    fn traces_tell_the_cache_story() {
        use crate::trace::TraceEvent;
        let mut m = mediator();
        m.config_mut().exec.collect_trace = true;
        let cold = m.query("?- item('p_1', B).").unwrap();
        assert!(cold
            .trace
            .iter()
            .any(|e| matches!(e.event, TraceEvent::ActualCall { .. })));
        let warm = m.query("?- item('p_1', B).").unwrap();
        assert!(warm
            .trace
            .iter()
            .any(|e| matches!(e.event, TraceEvent::CacheHit { .. })));
        assert!(!warm
            .trace
            .iter()
            .any(|e| matches!(e.event, TraceEvent::ActualCall { .. })));
        // Answer ordinals count up.
        let ordinals: Vec<usize> = warm
            .trace
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::Answer { ordinal } => Some(ordinal),
                _ => None,
            })
            .collect();
        assert_eq!(ordinals, (1..=warm.rows.len()).collect::<Vec<_>>());
        // Rendering is line-per-event.
        let text = crate::trace::render(&warm.trace);
        assert_eq!(text.lines().count(), warm.trace.len());
        // Off by default: no allocation.
        m.config_mut().exec.collect_trace = false;
        let silent = m.query("?- item('p_1', B).").unwrap();
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn state_survives_a_restart() {
        let dir =
            std::env::temp_dir().join(format!("hermes-mediator-state-{}", std::process::id()));
        let (rows, cold_ms) = {
            let mut m = mediator();
            let r = m.query("?- item('p_1', B).").unwrap();
            m.save_state(&dir).unwrap();
            (r.rows.clone(), r.t_all.as_millis_f64())
        };
        // A brand-new mediator process loads the saved caches.
        let mut m2 = mediator();
        m2.load_state(&dir).unwrap();
        let warm = m2.query("?- item('p_1', B).").unwrap();
        assert_eq!(warm.rows, rows);
        assert_eq!(warm.stats.actual_calls, 0, "served from restored cache");
        assert!(warm.t_all.as_millis_f64() < cold_ms);
        // Restored statistics inform estimates too.
        assert!(!m2.dcsm().lock().db().is_empty());
        // Loading from an empty directory is a no-op, not an error.
        let empty = dir.join("nothing-here");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(m2.load_state(&empty).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two replica domains with identical data (same generator seed):
    /// `d1` on a healthy site, `d2` on a permanently dark one.
    fn replicated_mediator() -> Mediator {
        let spec = [RelationSpec::uniform("p", 8, 2.0)];
        let d1 = SyntheticDomain::generate("d1", 42, &spec);
        let d2 = SyntheticDomain::generate("d2", 42, &spec);
        let mut net = Network::new(1);
        net.place(Arc::new(d1), profiles::cornell());
        net.place(
            Arc::new(d2),
            profiles::italy().with_outage(
                hermes_common::SimInstant::EPOCH,
                hermes_common::SimInstant::EPOCH + SimDuration::from_secs(86_400),
            ),
        );
        Mediator::from_source(
            "
            item(A, B) :- in(B, d2:p_bf(A)).
            item(A, B) :- in(B, d1:p_bf(A)).
            ",
            net,
        )
        .unwrap()
    }

    /// Forces the chosen plan to one that calls the dead `d2` replica.
    fn choose_dead_plan(planned: &mut Planned) {
        let dead = planned
            .plans
            .iter()
            .position(|p| p.to_string().contains("d2:"))
            .expect("a plan uses the d2 replica");
        planned.chosen = dead;
    }

    #[test]
    fn failover_replans_around_a_dead_site() {
        let mut m = replicated_mediator();
        let mut planned = m.plan("?- item('p_1', B).").unwrap();
        assert!(planned.plans.len() >= 2);
        choose_dead_plan(&mut planned);
        let result = m.execute(planned, None).unwrap();
        assert_eq!(result.failovers, 1);
        assert!(!result.incomplete);
        assert!(
            result.plan.to_string().contains("d1:"),
            "replanned onto the live replica: {}",
            result.plan
        );
        // Same answers as asking the live replica directly.
        let direct = m.query("?- item('p_1', B).").unwrap();
        let mut a: Vec<_> = result.rows.clone();
        let mut b: Vec<_> = direct.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn failover_can_be_disabled() {
        let mut m = replicated_mediator();
        m.config_mut().failover = false;
        let mut planned = m.plan("?- item('p_1', B).").unwrap();
        choose_dead_plan(&mut planned);
        let err = m.execute(planned, None).unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
    }

    #[test]
    fn breaker_bank_persists_across_queries() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let mut m = replicated_mediator();
        m.breakers().lock().set_config(BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(3600),
        });
        let mut planned = m.plan("?- item('p_1', B).").unwrap();
        choose_dead_plan(&mut planned);
        m.execute(planned, None).unwrap();
        // The failed attempt tripped milan's breaker, and the bank outlives
        // the query.
        assert_eq!(
            m.breakers().lock().state_at("milan", m.now()),
            BreakerState::Open
        );
        assert_eq!(m.breakers().lock().open_sites(m.now()).len(), 1);
        // A later query forced onto the dead replica now short-circuits
        // (no retry time) before failing over.
        let mut planned = m.plan("?- item('p_2', B).").unwrap();
        choose_dead_plan(&mut planned);
        let result = m.execute(planned, None).unwrap();
        assert_eq!(result.failovers, 1);
    }

    #[test]
    fn cached_answers_survive_a_later_outage() {
        // The site goes dark one hour in; a query warmed before then is
        // still answerable from the cache during the outage.
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        let epoch = hermes_common::SimInstant::EPOCH;
        net.place(
            Arc::new(domain),
            profiles::cornell().with_outage(
                epoch + SimDuration::from_secs(3600),
                epoch + SimDuration::from_secs(7200),
            ),
        );
        let mut m = Mediator::from_source("item(A, B) :- in(B, d1:p_bf(A)).", net).unwrap();
        let warm = m.query("?- item('p_1', B).").unwrap();
        assert!(!warm.rows.is_empty());
        m.advance_clock(SimDuration::from_secs(3600));
        let during = m.query("?- item('p_1', B).").unwrap();
        assert_eq!(during.rows, warm.rows);
        assert!(!during.incomplete);
        assert_eq!(during.stats.actual_calls, 0);
        assert!(during.provenance.iter().all(|p| p.complete()));
    }

    #[test]
    fn clock_persists_across_queries() {
        let mut m = mediator();
        let t0 = m.now();
        m.query("?- item('p_1', B).").unwrap();
        assert!(m.now() > t0);
        m.advance_clock(SimDuration::from_secs(60));
        let t1 = m.now();
        assert!(t1.duration_since(t0) >= SimDuration::from_secs(60));
    }

    #[test]
    fn register_program_rejects_errors_with_diagnostics() {
        let mut m = mediator();
        let bad = parse_program("item(A) :- in(A, d1:nosuch()).").unwrap();
        let err = m.register_program(bad, &[]).unwrap_err();
        match err {
            HermesError::Analysis { diagnostics } => {
                assert!(
                    diagnostics.iter().any(|d| d.contains("HA021")),
                    "{diagnostics:?}"
                );
            }
            other => panic!("expected Analysis error, got {other}"),
        }
        // The rejected program did not replace the active one.
        assert_eq!(m.program().rules.len(), 3);
    }

    #[test]
    fn register_program_collects_warnings() {
        let mut m = mediator();
        let p = parse_program(
            "
            item(A, B) :- in(B, d1:p_bf(A)).
            dead(A) :- in(A, d1:p_fb('x')).
            ",
        )
        .unwrap();
        m.register_program(p, &[QueryForm::parse("item(b, f)").unwrap()])
            .unwrap();
        assert_eq!(m.program().rules.len(), 2);
        assert!(
            m.analysis_warnings()
                .iter()
                .any(|d| d.code == hermes_analysis::DiagCode::UnreachablePredicate),
            "{:?}",
            m.analysis_warnings()
        );
    }

    #[test]
    fn register_program_rejects_infeasible_declared_adornment() {
        let mut m = mediator();
        // p_bf needs its argument bound, so `item(f, f)` has no ordering.
        let p = parse_program("item(A, B) :- in(B, d1:p_bf(A)).").unwrap();
        let err = m
            .register_program(p, &[QueryForm::parse("item(f, f)").unwrap()])
            .unwrap_err();
        assert!(err.to_string().contains("HA010"), "{err}");
    }
}
