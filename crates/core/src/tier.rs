//! Adaptive plan tiers: canonical service levels with a deterministic,
//! rule-ordered selector and one-way fail-soft downgrade.
//!
//! Under overload the paper's mediator has only two outcomes: the full
//! answer, or a deadline abort. Tiers add a deterministic middle ground.
//! A query runs at exactly one of three canonical [`PlanTier`]s:
//!
//! * [`PlanTier::CacheOnly`] — serve only from the CIM (exact, equal,
//!   invariant-derived, partial, or stale entries); never touch the wire.
//! * [`PlanTier::CachedPlusCheapRemote`] — cache first, plus remote calls
//!   the DCSM estimates under the configured cheap-call threshold.
//! * [`PlanTier::Full`] — the paper-exact behavior: whatever plan the
//!   optimizer picked, every call allowed.
//!
//! [`select_tier`] is a pure function of its [`TierInputs`]: same inputs,
//! same tier, same reason — no randomness, no wall clock. Rules apply in
//! a fixed order (explicit override → breaker-forced fallback → budget
//! rule → load rule → default) and the first match wins. Mid-execution
//! the executor may *downgrade* one step when the per-query budget burns
//! down ([`TierReason::BudgetPressure`]); it never upgrades. Every
//! selection and downgrade carries a [`TierReason`] into the trace and
//! into answer provenance, so a degraded answer is always explainable.

use hermes_common::SimDuration;
use std::fmt;

/// A canonical service level for one query. Ordered: `CacheOnly` is the
/// cheapest, `Full` the most expensive; downgrades only move down.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlanTier {
    /// Serve from the CIM only; no remote calls at all.
    CacheOnly,
    /// Cache plus remote calls estimated under the cheap-call threshold.
    CachedPlusCheapRemote,
    /// The unrestricted paper-exact plan.
    Full,
}

impl PlanTier {
    /// Stable machine-readable name (used in traces, the REPL, and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanTier::CacheOnly => "cache-only",
            PlanTier::CachedPlusCheapRemote => "cached-cheap",
            PlanTier::Full => "full",
        }
    }

    /// The next tier down, or `None` from the floor.
    pub fn downgraded(self) -> Option<PlanTier> {
        match self {
            PlanTier::Full => Some(PlanTier::CachedPlusCheapRemote),
            PlanTier::CachedPlusCheapRemote => Some(PlanTier::CacheOnly),
            PlanTier::CacheOnly => None,
        }
    }

    /// Parses the stable names accepted by the REPL's `:tier` command.
    pub fn parse(s: &str) -> Option<PlanTier> {
        match s {
            "cache-only" => Some(PlanTier::CacheOnly),
            "cached-cheap" => Some(PlanTier::CachedPlusCheapRemote),
            "full" => Some(PlanTier::Full),
            _ => None,
        }
    }
}

impl fmt::Display for PlanTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a tier was selected or a downgrade fired. Every variant has a
/// stable code; traces and provenance carry these, never prose alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TierReason {
    /// The caller pinned the tier via `QueryRequest::tier`.
    ExplicitOverride,
    /// A site the chosen plan must reach has an open circuit breaker;
    /// running the full plan would mostly burn retries.
    BreakerForced,
    /// The DCSM estimate for the chosen plan exceeds the query budget.
    BudgetRule,
    /// The admission gate is near capacity; new work starts cheaper.
    HighLoad,
    /// No rule fired: the paper-exact default.
    Default,
    /// Mid-execution: the budget burned down, so the executor stepped
    /// the tier down one level.
    BudgetPressure,
}

impl TierReason {
    /// The stable machine-readable code.
    pub fn code(self) -> &'static str {
        match self {
            TierReason::ExplicitOverride => "explicit-override",
            TierReason::BreakerForced => "breaker-forced",
            TierReason::BudgetRule => "budget-rule",
            TierReason::HighLoad => "high-load",
            TierReason::Default => "default",
            TierReason::BudgetPressure => "budget-pressure",
        }
    }
}

impl fmt::Display for TierReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Instantaneous load at the admission gate, as the selector sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierLoad {
    /// Queries currently admitted and executing.
    pub in_flight: usize,
    /// Gate capacity; `usize::MAX` means unbounded (serial mediator).
    pub capacity: usize,
}

impl TierLoad {
    /// An unloaded, unbounded gate — what the serial mediator reports.
    pub fn unbounded() -> TierLoad {
        TierLoad {
            in_flight: 0,
            capacity: usize::MAX,
        }
    }

    /// True when the gate is at least three-quarters full.
    fn is_high(self) -> bool {
        self.capacity != usize::MAX && self.capacity > 0 && self.in_flight * 4 >= self.capacity * 3
    }
}

/// Everything [`select_tier`] looks at. Pure data: building the same
/// inputs always yields the same decision.
#[derive(Clone, Debug)]
pub struct TierInputs {
    /// Caller's explicit tier, if any (`QueryRequest::tier`).
    pub requested: Option<PlanTier>,
    /// Per-query budget, if any (`QueryRequest::budget`).
    pub budget: Option<SimDuration>,
    /// DCSM `T_all` estimate for the chosen plan, in milliseconds.
    pub estimate_ms: f64,
    /// True when some site the chosen plan must reach has an open breaker.
    pub plan_site_breaker_open: bool,
    /// Current admission-gate load.
    pub load: TierLoad,
}

/// One selector decision: the tier plus the rule that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierDecision {
    /// The tier the query will start at.
    pub tier: PlanTier,
    /// Which rule fired.
    pub reason: TierReason,
}

/// When the estimate overshoots the budget by this factor or more, the
/// budget rule drops straight to `CacheOnly` instead of `CachedPlusCheapRemote`.
const BUDGET_HOPELESS_FACTOR: f64 = 4.0;

/// The deterministic, rule-ordered tier selector. First match wins:
///
/// 1. **Explicit override** — the caller pinned a tier; honor it.
/// 2. **Breaker-forced fallback** — a plan site's breaker is open; start
///    at `CachedPlusCheapRemote` so the cache and healthy cheap sites
///    still serve while the broken site heals.
/// 3. **Budget rule** — the estimate exceeds the budget; start at
///    `CachedPlusCheapRemote`, or `CacheOnly` when the estimate is
///    hopeless (≥ 4× the budget).
/// 4. **Load rule** — the admission gate is ≥ 75% full; start new work
///    at `CachedPlusCheapRemote` to shed load gracefully.
/// 5. **Default** — `Full`, the paper-exact behavior.
pub fn select_tier(inputs: &TierInputs) -> TierDecision {
    if let Some(tier) = inputs.requested {
        return TierDecision {
            tier,
            reason: TierReason::ExplicitOverride,
        };
    }
    if inputs.plan_site_breaker_open {
        return TierDecision {
            tier: PlanTier::CachedPlusCheapRemote,
            reason: TierReason::BreakerForced,
        };
    }
    if let Some(budget) = inputs.budget {
        let budget_ms = budget.as_millis_f64();
        if inputs.estimate_ms > budget_ms {
            let tier = if inputs.estimate_ms >= budget_ms * BUDGET_HOPELESS_FACTOR {
                PlanTier::CacheOnly
            } else {
                PlanTier::CachedPlusCheapRemote
            };
            return TierDecision {
                tier,
                reason: TierReason::BudgetRule,
            };
        }
    }
    if inputs.load.is_high() {
        return TierDecision {
            tier: PlanTier::CachedPlusCheapRemote,
            reason: TierReason::HighLoad,
        };
    }
    TierDecision {
        tier: PlanTier::Full,
        reason: TierReason::Default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TierInputs {
        TierInputs {
            requested: None,
            budget: None,
            estimate_ms: 100.0,
            plan_site_breaker_open: false,
            load: TierLoad::unbounded(),
        }
    }

    #[test]
    fn default_rule_yields_full() {
        let d = select_tier(&base());
        assert_eq!(d.tier, PlanTier::Full);
        assert_eq!(d.reason, TierReason::Default);
    }

    #[test]
    fn explicit_override_beats_every_other_rule() {
        let mut inputs = base();
        inputs.requested = Some(PlanTier::Full);
        inputs.plan_site_breaker_open = true;
        inputs.budget = Some(SimDuration::from_millis(1));
        inputs.load = TierLoad {
            in_flight: 10,
            capacity: 10,
        };
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::Full);
        assert_eq!(d.reason, TierReason::ExplicitOverride);
    }

    #[test]
    fn open_breaker_forces_the_cheap_tier_before_the_budget_rule() {
        let mut inputs = base();
        inputs.plan_site_breaker_open = true;
        inputs.budget = Some(SimDuration::from_millis(1)); // would also fire
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::CachedPlusCheapRemote);
        assert_eq!(d.reason, TierReason::BreakerForced);
    }

    #[test]
    fn budget_rule_scales_with_overshoot() {
        let mut inputs = base();
        inputs.budget = Some(SimDuration::from_millis(60));
        inputs.estimate_ms = 100.0; // < 4x: cheap tier
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::CachedPlusCheapRemote);
        assert_eq!(d.reason, TierReason::BudgetRule);

        inputs.estimate_ms = 240.0; // = 4x: hopeless, cache only
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::CacheOnly);
        assert_eq!(d.reason, TierReason::BudgetRule);

        inputs.estimate_ms = 50.0; // within budget: rule does not fire
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::Full);
        assert_eq!(d.reason, TierReason::Default);
    }

    #[test]
    fn high_load_starts_new_work_cheap() {
        let mut inputs = base();
        inputs.load = TierLoad {
            in_flight: 3,
            capacity: 4,
        };
        let d = select_tier(&inputs);
        assert_eq!(d.tier, PlanTier::CachedPlusCheapRemote);
        assert_eq!(d.reason, TierReason::HighLoad);

        inputs.load.in_flight = 2; // under 75%
        assert_eq!(select_tier(&inputs).reason, TierReason::Default);

        inputs.load = TierLoad::unbounded(); // serial: never high
        assert_eq!(select_tier(&inputs).reason, TierReason::Default);
    }

    #[test]
    fn selector_is_deterministic_across_repeated_evaluation() {
        // Same inputs, many evaluations, one decision — the selector is a
        // pure function with no hidden state.
        for seed in 0..10u64 {
            let inputs = TierInputs {
                requested: None,
                budget: Some(SimDuration::from_millis(50 + seed * 10)),
                estimate_ms: 90.0 + seed as f64,
                plan_site_breaker_open: seed % 3 == 0,
                load: TierLoad {
                    in_flight: seed as usize,
                    capacity: 8,
                },
            };
            let first = select_tier(&inputs);
            for _ in 0..10 {
                assert_eq!(select_tier(&inputs), first, "seed {seed}");
            }
        }
    }

    #[test]
    fn tiers_are_ordered_and_downgrade_one_way() {
        assert!(PlanTier::CacheOnly < PlanTier::CachedPlusCheapRemote);
        assert!(PlanTier::CachedPlusCheapRemote < PlanTier::Full);
        assert_eq!(
            PlanTier::Full.downgraded(),
            Some(PlanTier::CachedPlusCheapRemote)
        );
        assert_eq!(
            PlanTier::CachedPlusCheapRemote.downgraded(),
            Some(PlanTier::CacheOnly)
        );
        assert_eq!(PlanTier::CacheOnly.downgraded(), None);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for tier in [
            PlanTier::CacheOnly,
            PlanTier::CachedPlusCheapRemote,
            PlanTier::Full,
        ] {
            assert_eq!(PlanTier::parse(tier.as_str()), Some(tier));
        }
        assert_eq!(PlanTier::parse("auto"), None);
        assert_eq!(PlanTier::parse("turbo"), None);
    }

    #[test]
    fn reason_codes_are_stable() {
        assert_eq!(TierReason::ExplicitOverride.code(), "explicit-override");
        assert_eq!(TierReason::BreakerForced.code(), "breaker-forced");
        assert_eq!(TierReason::BudgetRule.code(), "budget-rule");
        assert_eq!(TierReason::HighLoad.code(), "high-load");
        assert_eq!(TierReason::Default.code(), "default");
        assert_eq!(TierReason::BudgetPressure.code(), "budget-pressure");
    }
}
