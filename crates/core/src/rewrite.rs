//! The rule rewriter (§5): adornment-driven plan enumeration.
//!
//! Given a query and the mediator program, the rewriter produces every
//! executable flat plan (up to a configurable cap) by
//!
//! 1. **unfolding** IDB predicates through their rules — each non-fact rule
//!    of a predicate is an alternative *access path* to the same external
//!    relation (the paper's `p_ff` / `p_fb` / `p_bb` style, Example 5.1),
//!    so rule choice is a plan-branching decision, while fact-defined
//!    predicates contribute their rows;
//! 2. **reordering** generator atoms (domain calls, fact scans) in every
//!    order whose binding requirements are satisfied — a domain call can
//!    only run once all its arguments are ground (§3);
//! 3. **pushing conditions down** — every comparison is placed at the
//!    earliest point it can run, equality conditions acting as assignments
//!    when one side is still free;
//! 4. routing calls through CIM or directly, per the [`CimPolicy`].
//!
//! Recursive programs are rejected (the paper defers recursion to its
//! reference \[33\]).

use crate::plan::{Plan, PlanStep, Route};
pub use hermes_analysis::{fingerprint_body, fingerprint_rule, Fingerprint, SubplanKey};
use hermes_cim::{CimPolicy, RoutingDecision};
use hermes_common::{HermesError, PathStep, Result, Value};
use hermes_lang::{
    validate_program, BodyAtom, CallTemplate, Condition, PathTerm, PredAtom, Program, Query, Relop,
    Rule, Subst, Term,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A selection-pushdown rule (§5 transformation 2: "push selections to the
/// source"): a condition on a scan's output attribute can be *fused* into
/// a more selective source function.
///
/// If a plan would execute `in(X, d:scan(args…))` followed by
/// `op(X.field, V)` with `V` ground, the rewriter may instead emit
/// `in(X, d:fused[op](args…, 'field', V))` — e.g. the relational engine's
/// `all(T)` + `=(X.role, 'brandon')` becomes
/// `select_eq(T, 'role', 'brandon')`, evaluated by the source (with its
/// indexes) instead of by the mediator.
#[derive(Clone, Debug)]
pub struct PushdownRule {
    /// The domain the rule applies to.
    pub domain: Arc<str>,
    /// The scan function whose output can be filtered at the source.
    pub scan_function: Arc<str>,
    /// Comparison operator → fused function. The fused function takes the
    /// scan's arguments plus `(field-name, value)`.
    pub fused: BTreeMap<Relop, Arc<str>>,
}

impl PushdownRule {
    /// The standard rules for a [`RelationalDomain`]-style engine named
    /// `domain`: `all(T)` filtered on a field becomes the matching
    /// `select_*(T, field, value)` call.
    ///
    /// [`RelationalDomain`]: hermes_domains::relational::RelationalDomain
    pub fn relational(domain: impl Into<Arc<str>>) -> PushdownRule {
        let mut fused = BTreeMap::new();
        fused.insert(Relop::Eq, Arc::from("select_eq"));
        fused.insert(Relop::Lt, Arc::from("select_lt"));
        fused.insert(Relop::Le, Arc::from("select_le"));
        fused.insert(Relop::Gt, Arc::from("select_gt"));
        fused.insert(Relop::Ge, Arc::from("select_ge"));
        PushdownRule {
            domain: domain.into(),
            scan_function: Arc::from("all"),
            fused,
        }
    }
}

/// Rewriter limits.
#[derive(Clone, Copy, Debug)]
pub struct RewriteConfig {
    /// Maximum number of plans to emit.
    pub max_plans: usize,
    /// Maximum predicate-unfolding depth (guards against deep chains).
    pub max_depth: usize,
    /// Stable-sort the enumerated plans by descending size of their
    /// largest *independence group* (see
    /// [`independence_groups`](crate::plan::independence_groups)), so
    /// orderings the parallel scheduler can overlap come first and win
    /// cost ties. Off by default: the paper's enumeration order is part
    /// of the pinned baseline.
    pub favor_parallel: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            max_plans: 128,
            max_depth: 32,
            favor_parallel: false,
        }
    }
}

/// Enumerates all executable plans for `query` against `program`.
///
/// Returns at least one plan or an error explaining why none exists.
pub fn enumerate_plans(
    program: &Program,
    query: &Query,
    policy: &CimPolicy,
    config: RewriteConfig,
) -> Result<Vec<Plan>> {
    enumerate_plans_with_pushdowns(program, query, policy, config, &[])
}

/// [`enumerate_plans`] with selection-pushdown rules: wherever a scan's
/// output is filtered by a fusible condition, an additional plan variant
/// executes the fused, source-side selective call.
pub fn enumerate_plans_with_pushdowns(
    program: &Program,
    query: &Query,
    policy: &CimPolicy,
    config: RewriteConfig,
    pushdowns: &[PushdownRule],
) -> Result<Vec<Plan>> {
    validate_program(program)?;
    check_not_recursive(program)?;
    let mut rw = Rewriter {
        program,
        policy,
        config,
        pushdowns,
        fresh: 0,
        plans: Vec::new(),
    };
    let answer_vars = query.answer_variables();
    let bound = BTreeSet::new();
    rw.search(query.goals.clone(), bound, Vec::new(), 0);
    if rw.plans.is_empty() {
        // Ask the analyzer *which* variable/subgoal blocks every ordering,
        // so the error names the culprit instead of guessing.
        let why =
            hermes_analysis::explain_infeasible_query(program, &query.goals).unwrap_or_else(|| {
                "a domain call argument can never become ground, or a \
                 predicate is undefined"
                    .to_string()
            });
        return Err(HermesError::Plan(format!(
            "no executable ordering found for query `{query}`: {why}"
        )));
    }
    let mut plans = rw.plans;
    for p in &mut plans {
        p.answer_vars = answer_vars.clone();
    }
    if config.favor_parallel {
        // Stable: plans with equally-sized largest groups keep the
        // paper's enumeration order.
        plans.sort_by_key(|p| {
            let widest = crate::plan::independence_groups(&p.steps)
                .into_iter()
                .map(|g| g.len())
                .max()
                .unwrap_or(0);
            std::cmp::Reverse(widest)
        });
    }
    Ok(plans)
}

/// Rejects recursive programs.
type PredKey = (Arc<str>, usize);
type PredGraph = BTreeMap<PredKey, BTreeSet<PredKey>>;

fn check_not_recursive(program: &Program) -> Result<()> {
    // DFS over the predicate dependency graph.
    let mut edges: PredGraph = BTreeMap::new();
    for rule in &program.rules {
        let from = rule.head.key();
        for atom in &rule.body {
            if let BodyAtom::Pred(p) = atom {
                edges.entry(from.clone()).or_default().insert(p.key());
            }
        }
    }
    // Iterative cycle detection (colors).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let keys: Vec<_> = edges.keys().cloned().collect();
    let mut color: BTreeMap<PredKey, Color> = BTreeMap::new();
    fn visit(node: &PredKey, edges: &PredGraph, color: &mut BTreeMap<PredKey, Color>) -> bool {
        match color.get(node).copied().unwrap_or(Color::White) {
            Color::Gray => return false,
            Color::Black => return true,
            Color::White => {}
        }
        color.insert(node.clone(), Color::Gray);
        if let Some(next) = edges.get(node) {
            for n in next {
                if !visit(n, edges, color) {
                    return false;
                }
            }
        }
        color.insert(node.clone(), Color::Black);
        true
    }
    for k in &keys {
        if !visit(k, &edges, &mut color) {
            return Err(HermesError::Plan(format!(
                "predicate `{}/{}` is recursive; recursion is not supported",
                k.0, k.1
            )));
        }
    }
    Ok(())
}

struct Rewriter<'a> {
    program: &'a Program,
    policy: &'a CimPolicy,
    config: RewriteConfig,
    pushdowns: &'a [PushdownRule],
    fresh: u64,
    plans: Vec<Plan>,
}

impl Rewriter<'_> {
    /// DFS over (remaining atoms, bound variables, steps so far).
    fn search(
        &mut self,
        mut remaining: Vec<BodyAtom>,
        mut bound: BTreeSet<Arc<str>>,
        mut steps: Vec<PlanStep>,
        depth: usize,
    ) {
        if self.plans.len() >= self.config.max_plans {
            return;
        }
        // Push every runnable condition down, in textual order, to a
        // fixpoint (assignments may enable further conditions).
        loop {
            let mut advanced = false;
            let mut i = 0;
            while i < remaining.len() {
                if let BodyAtom::Cond(c) = &remaining[i] {
                    if remaining[i].can_run(&bound) {
                        for v in remaining[i].new_bindings(&bound) {
                            bound.insert(v);
                        }
                        steps.push(PlanStep::Cond(c.clone()));
                        remaining.remove(i);
                        advanced = true;
                        continue;
                    }
                }
                i += 1;
            }
            if !advanced {
                break;
            }
        }

        if remaining.is_empty() {
            let plan = Plan {
                steps,
                answer_vars: Vec::new(),
            };
            if !self.plans.contains(&plan) {
                self.plans.push(plan);
            }
            return;
        }

        // Expand rule-defined predicates *eagerly and deterministically*:
        // expansion only inlines body atoms (ordering is decided later at
        // the generator level), so expansion order is irrelevant — and
        // branching on it would make the search exponential in the number
        // of IDB atoms. Only the *rule choice* (access path) branches.
        if let Some(i) = remaining.iter().position(|a| {
            matches!(a, BodyAtom::Pred(p)
                if self
                    .program
                    .rules_for(&p.name, p.args.len())
                    .iter()
                    .any(|r| !r.body.is_empty()))
        }) {
            let BodyAtom::Pred(atom) = remaining[i].clone() else {
                unreachable!("position matched a Pred");
            };
            self.expand_pred(&atom, i, &remaining, &bound, &steps, depth);
            return;
        }

        // Branch on every executable generator.
        for i in 0..remaining.len() {
            if self.plans.len() >= self.config.max_plans {
                return;
            }
            match &remaining[i] {
                BodyAtom::In { target, call } => {
                    if !remaining[i].can_run(&bound) {
                        continue;
                    }
                    let mut next_remaining = remaining.clone();
                    next_remaining.remove(i);
                    let mut next_bound = bound.clone();
                    if let Some(v) = target.as_var() {
                        next_bound.insert(v.clone());
                    }
                    let route = match self.policy.decide(&call.domain, &call.function) {
                        RoutingDecision::UseCim => Route::Cim,
                        RoutingDecision::Direct => Route::Direct,
                    };
                    let mut next_steps = steps.clone();
                    next_steps.push(PlanStep::Call {
                        target: target.clone(),
                        call: call.clone(),
                        route,
                    });
                    // Selection pushdown (§5): also branch into fused
                    // variants where a condition on this scan's output
                    // moves into the source call.
                    for (fused_call, cond_idx) in
                        self.pushdown_variants(target, call, &remaining, i, &bound)
                    {
                        let mut fused_remaining = remaining.clone();
                        // Remove the higher index first to keep positions
                        // valid, then the lower.
                        let (hi, lo) = if cond_idx > i {
                            (cond_idx, i)
                        } else {
                            (i, cond_idx)
                        };
                        fused_remaining.remove(hi);
                        fused_remaining.remove(lo);
                        let fused_route =
                            match self.policy.decide(&fused_call.domain, &fused_call.function) {
                                RoutingDecision::UseCim => Route::Cim,
                                RoutingDecision::Direct => Route::Direct,
                            };
                        let mut fused_steps = steps.clone();
                        fused_steps.push(PlanStep::Call {
                            target: target.clone(),
                            call: fused_call,
                            route: fused_route,
                        });
                        self.search(fused_remaining, next_bound.clone(), fused_steps, depth);
                    }
                    self.search(next_remaining, next_bound, next_steps, depth);
                }
                BodyAtom::Pred(p) => {
                    // Only fact-defined predicates reach here (rule-defined
                    // ones were eagerly expanded above).
                    let p = p.clone();
                    self.fact_branch(&p, i, &remaining, &bound, &steps, depth);
                }
                BodyAtom::Cond(_) => {} // not runnable yet; a generator must bind more
            }
        }
    }

    /// Finds fusible `(fused call, condition index)` variants for a scan
    /// atom: conditions `op(Target.field, V)` (either orientation) where a
    /// pushdown rule maps `op` to a selective source function and `V` is
    /// ground at this point.
    fn pushdown_variants(
        &self,
        target: &Term,
        call: &CallTemplate,
        remaining: &[BodyAtom],
        call_idx: usize,
        bound: &BTreeSet<Arc<str>>,
    ) -> Vec<(CallTemplate, usize)> {
        let Some(target_var) = target.as_var() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rule in self.pushdowns {
            if rule.domain != call.domain || rule.scan_function != call.function {
                continue;
            }
            for (j, atom) in remaining.iter().enumerate() {
                if j == call_idx {
                    continue;
                }
                let BodyAtom::Cond(c) = atom else { continue };
                // Orient so the path side references the scan target.
                let oriented = [(c.op, &c.lhs, &c.rhs), (c.op.flipped(), &c.rhs, &c.lhs)];
                for (op, path_side, value_side) in oriented {
                    let Some(fused_fn) = rule.fused.get(&op) else {
                        continue;
                    };
                    // Path side: exactly `Target.field`.
                    if path_side.var_name() != Some(target_var) {
                        continue;
                    }
                    let [PathStep::Field(field)] = path_side.path.steps() else {
                        continue;
                    };
                    // Value side: bare, and ground by now.
                    if !value_side.path.is_empty() {
                        continue;
                    }
                    let groundable = match &value_side.base {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    };
                    if !groundable {
                        continue;
                    }
                    let mut args = call.args.clone();
                    args.push(Term::Const(Value::str(field.as_ref())));
                    args.push(value_side.base.clone());
                    out.push((
                        CallTemplate::new(call.domain.clone(), fused_fn.clone(), args),
                        j,
                    ));
                    break; // one orientation per condition
                }
            }
        }
        out
    }

    /// Expands the rule-defined predicate atom at `remaining[i]`: one
    /// search branch per access-path rule. (Fact-defined predicates are
    /// handled at the generator level, because a fact scan *does* occupy a
    /// position in the execution order.)
    fn expand_pred(
        &mut self,
        atom: &PredAtom,
        i: usize,
        remaining: &[BodyAtom],
        bound: &BTreeSet<Arc<str>>,
        steps: &[PlanStep],
        depth: usize,
    ) {
        if depth >= self.config.max_depth {
            return;
        }
        let rules = self.program.rules_for(&atom.name, atom.args.len());
        let path_rules: Vec<&&Rule> = rules.iter().filter(|r| !r.body.is_empty()).collect();
        if path_rules.len() != rules.len() {
            // Mixed definitions have ambiguous access-path semantics; the
            // search yields no plan through this branch, and the mediator
            // surfaces a clear error earlier (see Mediator::plan).
            return;
        }
        for rule in path_rules {
            if self.plans.len() >= self.config.max_plans {
                return;
            }
            if let Some(new_atoms) = self.instantiate_rule(rule, atom) {
                let mut next_remaining = remaining.to_vec();
                next_remaining.remove(i);
                // Inline the rule body where the atom stood, preserving
                // relative order as a heuristic (the search still reorders).
                for (k, a) in new_atoms.into_iter().enumerate() {
                    next_remaining.insert(i + k, a);
                }
                self.search(next_remaining, bound.clone(), steps.to_vec(), depth + 1);
            }
        }
    }

    /// Emits the fact-scan generator branch for a fact-defined predicate.
    fn fact_branch(
        &mut self,
        atom: &PredAtom,
        i: usize,
        remaining: &[BodyAtom],
        bound: &BTreeSet<Arc<str>>,
        steps: &[PlanStep],
        depth: usize,
    ) {
        let rules = self.program.rules_for(&atom.name, atom.args.len());
        if rules.is_empty() || rules.iter().any(|r| !r.body.is_empty()) {
            return; // undefined or mixed: no plan through this branch
        }
        let rows: Vec<Vec<Value>> = rules
            .iter()
            .map(|r| {
                r.head
                    .args
                    .iter()
                    .map(|t| t.as_const().expect("facts are ground").clone())
                    .collect()
            })
            .collect();
        let mut next_remaining = remaining.to_vec();
        next_remaining.remove(i);
        let mut next_bound = bound.clone();
        for v in atom.variables() {
            next_bound.insert(v);
        }
        let mut next_steps = steps.to_vec();
        next_steps.push(PlanStep::Facts {
            pred: atom.name.clone(),
            args: atom.args.clone(),
            rows: Arc::new(rows),
        });
        self.search(next_remaining, next_bound, next_steps, depth);
    }

    /// Standardizes a rule apart and unifies its head with `atom`,
    /// returning the instantiated body atoms (plus any equality conditions
    /// induced by repeated or constant head arguments). `None` when the
    /// head cannot match the atom.
    fn instantiate_rule(&mut self, rule: &Rule, atom: &PredAtom) -> Option<Vec<BodyAtom>> {
        self.fresh += 1;
        let suffix = self.fresh;

        // Mapping from rule variables to query-level terms.
        let mut map: BTreeMap<Arc<str>, Term> = BTreeMap::new();
        let mut extra_conditions: Vec<Condition> = Vec::new();
        for (h, q) in rule.head.args.iter().zip(&atom.args) {
            match h {
                Term::Const(c) => match q {
                    Term::Const(d) => {
                        if c != d {
                            return None; // statically incompatible
                        }
                    }
                    Term::Var(_) => extra_conditions.push(Condition::new(
                        Relop::Eq,
                        PathTerm::bare(q.clone()),
                        PathTerm::bare(Term::Const(c.clone())),
                    )),
                },
                Term::Var(hv) => match map.get(hv) {
                    None => {
                        map.insert(hv.clone(), q.clone());
                    }
                    Some(prev) => {
                        if prev != q {
                            extra_conditions.push(Condition::new(
                                Relop::Eq,
                                PathTerm::bare(prev.clone()),
                                PathTerm::bare(q.clone()),
                            ));
                        }
                    }
                },
            }
        }

        // Rename body-local variables apart.
        let rename = |t: &Term, map: &mut BTreeMap<Arc<str>, Term>| -> Term {
            match t {
                Term::Const(_) => t.clone(),
                Term::Var(v) => map
                    .entry(v.clone())
                    .or_insert_with(|| Term::var(format!("{v}#{suffix}")))
                    .clone(),
            }
        };
        let rename_pt = |pt: &PathTerm, map: &mut BTreeMap<Arc<str>, Term>| PathTerm {
            base: rename(&pt.base, map),
            path: pt.path.clone(),
        };

        let mut out: Vec<BodyAtom> = extra_conditions.into_iter().map(BodyAtom::Cond).collect();
        for a in &rule.body {
            out.push(match a {
                BodyAtom::Pred(p) => BodyAtom::Pred(PredAtom::new(
                    p.name.clone(),
                    p.args.iter().map(|t| rename(t, &mut map)).collect(),
                )),
                BodyAtom::In { target, call } => BodyAtom::In {
                    target: rename(target, &mut map),
                    call: CallTemplate::new(
                        call.domain.clone(),
                        call.function.clone(),
                        call.args.iter().map(|t| rename(t, &mut map)).collect(),
                    ),
                },
                BodyAtom::Cond(c) => BodyAtom::Cond(Condition::new(
                    c.op,
                    rename_pt(&c.lhs, &mut map),
                    rename_pt(&c.rhs, &mut map),
                )),
            });
        }
        Some(out)
    }
}

/// The canonical subplan fingerprint of a query's goal conjunction (see
/// [`hermes_analysis::fingerprint`]): the key under which a subplan result
/// cache would file this query's answers. Stable across variable renaming,
/// reordering of independent goals, and symmetric comparison spelling, so
/// the rewriter, the analyzer's `HA070`-series inventory, and any future
/// materialized-view store all speak the same 64-bit keys. Queries start
/// with no bindings (parameter substitution happens in [`bind_query`]
/// first), so the entry-binding seed is empty.
pub fn query_fingerprint(query: &Query) -> SubplanKey {
    fingerprint_body(&query.goals, &BTreeSet::new())
}

/// Substitutes query-level constants into a query before planning: any
/// answer variable bound in `bindings` is replaced by its constant. Used
/// by the mediator to support parameterized queries.
pub fn bind_query(query: &Query, bindings: &Subst) -> Query {
    let sub_term = |t: &Term| match t {
        Term::Var(v) => match bindings.get(v) {
            Some(val) => Term::Const(val.clone()),
            None => t.clone(),
        },
        Term::Const(_) => t.clone(),
    };
    let sub_pt = |pt: &PathTerm| PathTerm {
        base: sub_term(&pt.base),
        path: pt.path.clone(),
    };
    Query::new(
        query
            .goals
            .iter()
            .map(|g| match g {
                BodyAtom::Pred(p) => BodyAtom::Pred(PredAtom::new(
                    p.name.clone(),
                    p.args.iter().map(sub_term).collect(),
                )),
                BodyAtom::In { target, call } => BodyAtom::In {
                    target: sub_term(target),
                    call: CallTemplate::new(
                        call.domain.clone(),
                        call.function.clone(),
                        call.args.iter().map(sub_term).collect(),
                    ),
                },
                BodyAtom::Cond(c) => {
                    BodyAtom::Cond(Condition::new(c.op, sub_pt(&c.lhs), sub_pt(&c.rhs)))
                }
            })
            .collect(),
    )
}

/// Tier-restricted planning support: the indices of the plans whose
/// every domain call is CIM-routed. Only those plans can possibly be
/// served end-to-end by the `CacheOnly` tier — a Direct-routed call
/// bypasses the cache entirely, so a plan containing one is guaranteed
/// to come back with a `Downgraded` gap. Returns an empty list when no
/// plan qualifies; the caller keeps the optimizer's choice and lets the
/// executor fail soft per call.
pub fn cache_servable_plans(plans: &[Plan]) -> Vec<usize> {
    plans
        .iter()
        .enumerate()
        .filter(|(_, plan)| {
            plan.steps.iter().all(|step| match step {
                PlanStep::Call { route, .. } => *route == Route::Cim,
                _ => true,
            })
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::{parse_program, parse_query};

    fn m1() -> Program {
        parse_program(
            "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & =(Ans.2, B).
            p(A, B) :- in(B, d1:p_bf(A)).
            p(A, B) :- in(X, d1:p_bb(A, B)).
            q(B, C) :- in(Ans, d2:q_ff()) & =(Ans.1, B) & =(Ans.2, C).
            q(B, C) :- in(C, d2:q_bf(B)).
            ",
        )
        .unwrap()
    }

    fn plans_for(src: &str) -> Vec<Plan> {
        enumerate_plans(
            &m1(),
            &parse_query(src).unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_5_1_produces_both_paper_plans() {
        let plans = plans_for("?- m('a', C).");
        // P8: p_bf('a') then q_bf(B). P12: q_ff() then p_bb('a', B). And
        // more (p_ff-based variants). All must be executable.
        assert!(plans.len() >= 2, "got {} plans", plans.len());
        let texts: Vec<String> = plans.iter().map(|p| p.to_string()).collect();
        let has_p8 = texts.iter().any(|t| {
            let bf = t.find("d1:p_bf('a')");
            let qbf = t.find("d2:q_bf(");
            matches!((bf, qbf), (Some(a), Some(b)) if a < b)
        });
        let has_p12 = texts.iter().any(|t| {
            let qff = t.find("d2:q_ff()");
            let pbb = t.find("d1:p_bb('a'");
            matches!((qff, pbb), (Some(a), Some(b)) if a < b)
        });
        assert!(has_p8, "P8 missing from:\n{}", texts.join("\n"));
        assert!(has_p12, "P12 missing from:\n{}", texts.join("\n"));
    }

    #[test]
    fn all_emitted_plans_are_executable() {
        // Replay binding analysis over each plan: every call's variables
        // must be bound by earlier steps.
        for plan in plans_for("?- m('a', C).") {
            let mut bound: BTreeSet<Arc<str>> = BTreeSet::new();
            for step in &plan.steps {
                match step {
                    PlanStep::Call { target, call, .. } => {
                        for v in call.variables() {
                            assert!(bound.contains(&v), "unbound {v} in {plan}");
                        }
                        if let Some(v) = target.as_var() {
                            bound.insert(v.clone());
                        }
                    }
                    PlanStep::Cond(c) => {
                        for pt in [&c.lhs, &c.rhs] {
                            if let Some(v) = pt.var_name() {
                                // Either bound (filter side) or bare
                                // assignment target of an Eq.
                                if !bound.contains(v) {
                                    assert!(c.op == Relop::Eq && pt.path.is_empty());
                                    bound.insert(v.clone());
                                }
                            }
                        }
                    }
                    PlanStep::Facts { args, .. } => {
                        for t in args {
                            if let Some(v) = t.as_var() {
                                bound.insert(v.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bound_query_enables_bb_access_path() {
        // With both arguments bound, the p_bb membership probe is usable.
        let plans = plans_for("?- p('a', 5).");
        assert!(plans
            .iter()
            .any(|p| p.to_string().contains("d1:p_bb('a', 5)")));
    }

    #[test]
    fn free_query_uses_only_ff_path() {
        // ?- p(A, B): p_bf needs A bound — not available; p_bb needs both.
        let plans = plans_for("?- p(A, B).");
        for p in &plans {
            let t = p.to_string();
            assert!(t.contains("d1:p_ff()"), "unexpected plan {t}");
        }
    }

    #[test]
    fn conditions_are_pushed_early() {
        let plans = plans_for("?- m('a', C) & =(C, 5).");
        for p in &plans {
            // The =(C,5) condition must survive into every plan, and it
            // may legitimately run *first* — as an assignment binding C to
            // 5 before any call (the most aggressive pushdown).
            let cond_at = p
                .steps
                .iter()
                .position(|s| matches!(s, PlanStep::Cond(c) if c.to_string() == "=(C, 5)"));
            assert!(cond_at.is_some(), "condition missing from {p}");
        }
        // At least one plan binds C := 5 before issuing any call.
        assert!(plans.iter().any(|p| matches!(
            p.steps.first(),
            Some(PlanStep::Cond(c)) if c.to_string() == "=(C, 5)"
        )));
    }

    #[test]
    fn cim_policy_routes_calls() {
        let plans = enumerate_plans(
            &m1(),
            &parse_query("?- m('a', C).").unwrap(),
            &CimPolicy::cache_everything(),
            RewriteConfig::default(),
        )
        .unwrap();
        for p in &plans {
            for s in &p.steps {
                if let PlanStep::Call { route, .. } = s {
                    assert_eq!(*route, Route::Cim);
                }
            }
        }
    }

    #[test]
    fn facts_expand_into_fact_steps() {
        let program = parse_program(
            "edge('a', 'b'). edge('b', 'c').
             reach(X, Y) :- edge(X, Y).",
        )
        .unwrap();
        let plans = enumerate_plans(
            &program,
            &parse_query("?- reach('a', Y).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap();
        assert_eq!(plans.len(), 1);
        match &plans[0].steps[0] {
            PlanStep::Facts { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("expected facts step, got {other}"),
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let program = parse_program(
            "edge('a', 'b').
             reach(X, Y) :- edge(X, Y).
             reach(X, Y) :- reach(X, Z) & edge(Z, Y).",
        )
        .unwrap();
        let err = enumerate_plans(
            &program,
            &parse_query("?- reach('a', Y).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("recursive"));
    }

    #[test]
    fn impossible_binding_yields_clear_error() {
        // q_bf needs B bound and there is no other access path to bind it.
        let program =
            parse_program("only(C) :- in(C, d2:q_bf(B)) & in(B, d9:undefined_pred(C)).").unwrap();
        // d9 call needs C which needs B: circular; no ordering works.
        let err = enumerate_plans(
            &program,
            &parse_query("?- only(C).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no executable ordering"));
        // The analyzer names the blocked subgoal inside the rule instead of
        // a generic "something is unbound" guess.
        assert!(msg.contains("in rule `only(C)`"), "{msg}");
        assert!(msg.contains("`B`"), "{msg}");
    }

    #[test]
    fn max_plans_caps_enumeration() {
        let plans = enumerate_plans(
            &m1(),
            &parse_query("?- m(A, C).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig {
                max_plans: 2,
                ..RewriteConfig::default()
            },
        )
        .unwrap();
        assert!(plans.len() <= 2);
    }

    #[test]
    fn repeated_head_variables_induce_equality() {
        let program = parse_program(
            "same(X) :- pair(X, X).
             pair(A, B) :- in(Ans, d:pairs_ff()) & =(Ans.1, A) & =(Ans.2, B).",
        )
        .unwrap();
        let plans = enumerate_plans(
            &program,
            &parse_query("?- same(V).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap();
        // Some plan must carry an equality tying the two positions.
        assert!(!plans.is_empty());
    }

    #[test]
    fn constant_head_arg_matches_or_prunes() {
        let program = parse_program(
            "special('gold', X) :- in(X, d:gold_ff()).
             special('silver', X) :- in(X, d:silver_ff()).",
        )
        .unwrap();
        let plans = enumerate_plans(
            &program,
            &parse_query("?- special('gold', X).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap();
        assert_eq!(plans.len(), 1);
        assert!(plans[0].to_string().contains("d:gold_ff()"));
    }

    #[test]
    fn pushdown_fuses_scan_and_filter() {
        // The appendix's query4 shape: scan cast, filter role = Object.
        let program = parse_program(
            "actor_of(Object, Actor) :-
                 in(P, relation:all('cast')) & =(P.name, Actor) & =(P.role, Object).",
        )
        .unwrap();
        let plans = enumerate_plans_with_pushdowns(
            &program,
            &parse_query("?- actor_of('brandon', A).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
            &[PushdownRule::relational("relation")],
        )
        .unwrap();
        let texts: Vec<String> = plans.iter().map(|p| p.to_string()).collect();
        // The fused variant exists…
        assert!(
            texts
                .iter()
                .any(|t| t.contains("relation:select_eq('cast', 'role', 'brandon')")),
            "no fused plan in:\n{}",
            texts.join("\n")
        );
        // …and the unfused scan variant survives as an alternative.
        assert!(texts.iter().any(|t| t.contains("relation:all('cast')")));
        // In the fused plan the role condition is gone (it moved into the
        // source call) but the name assignment remains.
        let fused = plans
            .iter()
            .find(|p| p.to_string().contains("select_eq"))
            .unwrap();
        assert!(!fused.to_string().contains(".role"), "{fused}");
        assert!(fused.to_string().contains(".name"), "{fused}");
    }

    #[test]
    fn pushdown_handles_ranges_and_flipped_orientation() {
        let program =
            parse_program("low(T) :- in(T, relation:all('inventory')) & >(10, T.qty).").unwrap();
        let plans = enumerate_plans_with_pushdowns(
            &program,
            &parse_query("?- low(T).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
            &[PushdownRule::relational("relation")],
        )
        .unwrap();
        // >(10, T.qty) orients to T.qty < 10 → select_lt.
        assert!(plans.iter().any(|p| p
            .to_string()
            .contains("relation:select_lt('inventory', 'qty', 10)")));
    }

    #[test]
    fn pushdown_skips_unground_values_and_foreign_domains() {
        let program =
            parse_program("r(T, V) :- in(T, relation:all('t')) & =(T.f, V) & in(V, other:vals()).")
                .unwrap();
        let plans = enumerate_plans_with_pushdowns(
            &program,
            &parse_query("?- r(T, V).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
            &[PushdownRule::relational("relation")],
        )
        .unwrap();
        // V is only ground after other:vals() runs; a fused variant may
        // exist only in orderings where vals() precedes the scan.
        for p in &plans {
            let t = p.to_string();
            if let Some(fused_at) = t.find("select_eq") {
                let vals_at = t.find("other:vals()").expect("vals step present");
                assert!(vals_at < fused_at, "fused before V is bound:\n{t}");
            }
        }
    }

    #[test]
    fn bind_query_substitutes_constants() {
        let q = parse_query("?- m(A, C).").unwrap();
        let bound = bind_query(&q, &Subst::from_pairs([("A", Value::str("a"))]));
        assert_eq!(bound.to_string(), "?- m('a', C).");
    }
}
