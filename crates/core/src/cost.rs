//! The rule cost estimator (§7): plan cost from per-call DCSM estimates.
//!
//! Under pipelined nested-loops with no duplicate elimination (the paper's
//! assumptions 3(a) and 3(b)), a plan's cost vector combines per-step
//! vectors as
//!
//! ```text
//! T_all   = Σ_i (Π_{j<i} Card_j) · T_all,i
//! T_first = Σ_i T_first,i
//! Card    = Π_i Card_i
//! ```
//!
//! Each call step's `[T_first, T_all, Card]` comes from
//! [`Dcsm::cost`] on the step's call *pattern* (constants stay constants,
//! variables become `$b`). Fact scans are costed exactly; conditions apply
//! a configurable selectivity.

use crate::plan::{independence_groups, Plan, PlanStep};
use hermes_common::{CallPattern, PatArg};
use hermes_dcsm::{overlap_makespan, CostSource, CostVector};
use hermes_lang::{CallTemplate, Relop, Term};
use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::sync::Arc;

/// Cost-model knobs.
#[derive(Clone, Copy, Debug)]
pub struct CostConfig {
    /// Cardinality multiplier for a ground comparison acting as a filter.
    /// The paper's formulas ignore filters (selectivity 1.0); a mild
    /// default keeps pushed-down selections from looking free.
    pub filter_selectivity: f64,
    /// Simulated milliseconds per fact row scanned.
    pub fact_row_ms: f64,
    /// Concurrency the executor will grant an independence group. At the
    /// default `1` the estimate is the paper's sequential formula exactly;
    /// `k > 1` charges each group its overlap makespan over `k` virtual
    /// slots instead of the members' sequential sum (cardinalities still
    /// multiply — overlap changes time, not answers).
    pub max_parallel_calls: usize,
    /// Mediator-side milliseconds to put one group call in flight (must
    /// mirror [`ExecConfig::dispatch_overhead_ms`]).
    ///
    /// [`ExecConfig::dispatch_overhead_ms`]: crate::exec::ExecConfig::dispatch_overhead_ms
    pub dispatch_overhead_ms: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            filter_selectivity: 0.4,
            fact_row_ms: 0.002,
            max_parallel_calls: 1,
            dispatch_overhead_ms: 0.05,
        }
    }
}

/// The DCSM call patterns of every call step of `plan`, in step order —
/// the per-execution work a materialized subplan saves
/// ([`CostSource::estimate_subplan_savings`]).
pub(crate) fn plan_patterns(plan: &Plan) -> Vec<CallPattern> {
    plan.steps
        .iter()
        .filter_map(|step| match step {
            PlanStep::Call { call, .. } => Some(step_pattern(call)),
            _ => None,
        })
        .collect()
}

/// The DCSM call pattern of a plan call step: constants stay constants,
/// variables become `$b`.
fn step_pattern(call: &CallTemplate) -> CallPattern {
    CallPattern::new(
        call.domain.clone(),
        call.function.clone(),
        call.args
            .iter()
            .map(|t| match t {
                Term::Const(v) => PatArg::Const(v.clone()),
                Term::Var(_) => PatArg::Bound,
            })
            .collect(),
    )
}

/// The cardinality contribution of a call step, binding its target.
/// Membership probes (ground target) yield at most one extension per
/// input row.
fn step_cardinality(target: &Term, estimated: f64, bound: &mut BTreeSet<Arc<str>>) -> f64 {
    let is_probe = match target {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };
    let card = if is_probe {
        estimated.min(1.0)
    } else {
        bound.insert(target.as_var().expect("non-probe target is a var").clone());
        estimated
    };
    card.max(0.0)
}

/// The §7 estimate for `plan`, as a complete cost vector.
///
/// Generic over the cost source, so a plain `Dcsm`, a `Mutex<Dcsm>`, and
/// a `ShardedDcsm` (including `dyn DcsmView`) all plug in unchanged.
pub fn estimate_plan<C: CostSource + ?Sized>(
    plan: &Plan,
    dcsm: &C,
    config: &CostConfig,
) -> CostVector {
    let mut bound: BTreeSet<Arc<str>> = BTreeSet::new();
    let mut t_first = 0.0f64;
    let mut t_all = 0.0f64;
    let mut prefix_card = 1.0f64;
    let groups: HashMap<usize, Range<usize>> = if config.max_parallel_calls > 1 {
        independence_groups(&plan.steps)
            .into_iter()
            .map(|r| (r.start, r))
            .collect()
    } else {
        HashMap::new()
    };

    let mut i = 0;
    while i < plan.steps.len() {
        if let Some(group) = groups.get(&i) {
            // Overlap-aware group charge: the executor dispatches these
            // calls together, so the group costs its makespan over the
            // configured slots — a barrier, hence the same charge toward
            // T_first — while cardinalities multiply exactly as in the
            // sequential formula.
            let entry_card = prefix_card;
            let mut durations = Vec::new();
            for idx in group.clone() {
                let PlanStep::Call { target, call, .. } = &plan.steps[idx] else {
                    continue;
                };
                let est = dcsm.cost(&step_pattern(call));
                durations.push(est.t_all_ms());
                prefix_card *= step_cardinality(target, est.cardinality(), &mut bound);
            }
            let t_group = overlap_makespan(
                &durations,
                config.max_parallel_calls,
                config.dispatch_overhead_ms,
            );
            t_all += entry_card * t_group;
            t_first += t_group;
            i = group.end;
            continue;
        }
        match &plan.steps[i] {
            PlanStep::Call { target, call, .. } => {
                let est = dcsm.cost(&step_pattern(call));
                t_all += prefix_card * est.t_all_ms();
                t_first += est.t_first_ms();
                prefix_card *= step_cardinality(target, est.cardinality(), &mut bound);
            }
            PlanStep::Facts { args, rows, .. } => {
                // Exact: count rows compatible with the constant positions.
                let matching = rows
                    .iter()
                    .filter(|row| {
                        args.iter().zip(row.iter()).all(|(t, v)| match t {
                            Term::Const(c) => c == v,
                            Term::Var(_) => true,
                        })
                    })
                    .count() as f64;
                // Bound-variable positions act as probes: estimate with
                // the mean duplication factor per distinct value.
                let mut card = matching;
                for (i, t) in args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        if bound.contains(v) {
                            let distinct: BTreeSet<_> = rows.iter().map(|r| r[i].clone()).collect();
                            if !distinct.is_empty() {
                                card /= distinct.len() as f64;
                            }
                        } else {
                            bound.insert(v.clone());
                        }
                    }
                }
                let scan_ms = rows.len() as f64 * config.fact_row_ms;
                t_all += prefix_card * scan_ms;
                t_first += config.fact_row_ms;
                prefix_card *= card;
            }
            PlanStep::Cond(c) => {
                // An equality with an unbound bare-variable side is an
                // assignment: binds, no cardinality change.
                let mut assigned = false;
                if c.op == Relop::Eq {
                    for pt in [&c.lhs, &c.rhs] {
                        if pt.path.is_empty() {
                            if let Some(v) = pt.var_name() {
                                if !bound.contains(v) {
                                    bound.insert(v.clone());
                                    assigned = true;
                                }
                            }
                        }
                    }
                }
                if !assigned {
                    prefix_card *= config.filter_selectivity;
                }
            }
        }
        i += 1;
    }
    CostVector::full(t_first, t_all, prefix_card)
}

/// Picks the cheapest plan for the given mode: all-answers mode minimizes
/// `T_all`, interactive (first-answer) mode minimizes `T_first`. Returns
/// the winning index and the per-plan estimates.
pub fn choose_plan<C: CostSource + ?Sized>(
    plans: &[Plan],
    dcsm: &C,
    config: &CostConfig,
    optimize_first_answer: bool,
) -> (usize, Vec<CostVector>) {
    let estimates: Vec<CostVector> = plans
        .iter()
        .map(|p| estimate_plan(p, dcsm, config))
        .collect();
    let key = |v: &CostVector| {
        if optimize_first_answer {
            v.t_first_ms.unwrap_or(f64::MAX)
        } else {
            v.t_all_ms.unwrap_or(f64::MAX)
        }
    };
    let best = estimates
        .iter()
        .enumerate()
        .min_by(|a, b| key(a.1).total_cmp(&key(b.1)))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best, estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::{enumerate_plans, RewriteConfig};
    use hermes_cim::CimPolicy;
    use hermes_common::{GroundCall, SimInstant, Value};
    use hermes_dcsm::Dcsm;
    use hermes_lang::{parse_program, parse_query};

    /// DCSM warmed with the Example 6.1 statistics.
    fn warmed_dcsm() -> Dcsm {
        let mut d = Dcsm::new();
        let t = SimInstant::EPOCH;
        // d1:p_bf('a'): T_a 2.1, card 3.
        for (ta, card) in [(2.0, 3.0), (2.2, 3.0)] {
            d.record(
                &GroundCall::new("d1", "p_bf", vec![Value::str("a")]),
                Some(1.0),
                Some(ta),
                Some(card),
                t,
            );
        }
        // d2:q_bf($b): T_a ~1.2, card ~2.3.
        for (b, ta, card) in [(1i64, 1.10, 2.0), (2, 1.30, 3.0), (3, 1.15, 2.0)] {
            d.record(
                &GroundCall::new("d2", "q_bf", vec![Value::Int(b)]),
                Some(0.5),
                Some(ta),
                Some(card),
                t,
            );
        }
        // d2:q_ff(): T_a 5.2, card 7.
        for ta in [5.0, 5.4] {
            d.record(
                &GroundCall::new("d2", "q_ff", vec![]),
                Some(2.0),
                Some(ta),
                Some(7.0),
                t,
            );
        }
        // d1:p_bb($b,$b): T_a 0.2, card ~0.75.
        for (ta, card) in [(0.20, 1.0), (0.22, 1.0), (0.21, 1.0), (0.18, 0.0)] {
            d.record(
                &GroundCall::new("d1", "p_bb", vec![Value::str("a"), Value::Int(1)]),
                Some(0.1),
                Some(ta),
                Some(card),
                t,
            );
        }
        d
    }

    fn paper_plans() -> Vec<Plan> {
        let program = parse_program(
            "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(B, d1:p_bf(A)).
            p(A, B) :- in(X, d1:p_bb(A, B)).
            q(B, C) :- in(Ans, d2:q_ff()) & =(Ans.1, B) & =(Ans.2, C).
            q(B, C) :- in(C, d2:q_bf(B)).
            ",
        )
        .unwrap();
        enumerate_plans(
            &program,
            &parse_query("?- m('a', C).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn example_7_1_formula_for_p8() {
        // P8 = p_bf('a') then q_bf($b):
        // T_all = T_a(p_bf('a')) + Card(p_bf('a')) * T_a(q_bf($b))
        //       = 2.1 + 3 * (3.55/3) = 2.1 + 3.55 = 5.65
        let dcsm = warmed_dcsm();
        let plans = paper_plans();
        let p8 = plans
            .iter()
            .find(|p| {
                let t = p.to_string();
                let a = t.find("d1:p_bf('a')");
                let b = t.find("d2:q_bf(");
                matches!((a, b), (Some(x), Some(y)) if x < y) && p.call_count() == 2
            })
            .expect("P8 plan present");
        let est = estimate_plan(p8, &dcsm, &CostConfig::default());
        assert!(
            (est.t_all_ms.unwrap() - 5.65).abs() < 1e-6,
            "got {}",
            est.t_all_ms.unwrap()
        );
        // T_first = 1.0 + 0.5.
        assert!((est.t_first_ms.unwrap() - 1.5).abs() < 1e-6);
        // Card = 3 * (7/3).
        assert!((est.cardinality.unwrap() - 7.0 / 3.0 * 3.0).abs() < 1e-6);
    }

    #[test]
    fn example_7_1_formula_for_p12() {
        // P12 = q_ff() then p_bb('a', $b) (probe):
        // T_all = 5.2 + 7 * 0.2025 = 6.6175
        let dcsm = warmed_dcsm();
        let plans = paper_plans();
        let p12 = plans
            .iter()
            .find(|p| {
                let t = p.to_string();
                let a = t.find("d2:q_ff()");
                let b = t.find("d1:p_bb('a'");
                matches!((a, b), (Some(x), Some(y)) if x < y)
            })
            .expect("P12 plan present");
        let est = estimate_plan(p12, &dcsm, &CostConfig::default());
        assert!(
            (est.t_all_ms.unwrap() - (5.2 + 7.0 * 0.2025)).abs() < 1e-6,
            "got {}",
            est.t_all_ms.unwrap()
        );
    }

    #[test]
    fn choose_plan_picks_cheaper_for_each_mode() {
        let dcsm = warmed_dcsm();
        let plans = paper_plans();
        let (best_all, ests) = choose_plan(&plans, &dcsm, &CostConfig::default(), false);
        // P8 (5.65) beats P12 (6.62) for all-answers.
        let t = plans[best_all].to_string();
        assert!(t.contains("d1:p_bf('a')"), "chose {t}");
        // Estimates vector aligns with plans.
        assert_eq!(ests.len(), plans.len());
        let (best_first, _) = choose_plan(&plans, &dcsm, &CostConfig::default(), true);
        // First-answer mode may pick a different plan; it must be valid.
        assert!(best_first < plans.len());
    }

    #[test]
    fn membership_probe_caps_cardinality() {
        let dcsm = warmed_dcsm();
        let plans = paper_plans();
        let p12 = plans
            .iter()
            .find(|p| p.to_string().contains("d1:p_bb('a'"))
            .unwrap();
        let est = estimate_plan(p12, &dcsm, &CostConfig::default());
        // p_bb is a probe: overall cardinality ≤ q_ff's 7.
        assert!(est.cardinality.unwrap() <= 7.0 + 1e-9);
    }

    #[test]
    fn filters_reduce_cardinality() {
        let program = parse_program("r(B) :- in(B, d1:p_bf('a')) & >(B, 100).").unwrap();
        let plans = enumerate_plans(
            &program,
            &parse_query("?- r(B).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap();
        let dcsm = warmed_dcsm();
        let cfg = CostConfig::default();
        let est = estimate_plan(&plans[0], &dcsm, &cfg);
        assert!((est.cardinality.unwrap() - 3.0 * cfg.filter_selectivity).abs() < 1e-9);
    }

    #[test]
    fn overlap_cost_charges_group_makespan() {
        use crate::plan::Route;
        let dcsm = warmed_dcsm();
        // Two independent calls (constant args, distinct fresh targets).
        let plan = Plan {
            steps: vec![
                PlanStep::Call {
                    target: Term::var("B"),
                    call: CallTemplate::new("d1", "p_bf", vec![Term::constant("a")]),
                    route: Route::Direct,
                },
                PlanStep::Call {
                    target: Term::var("C"),
                    call: CallTemplate::new("d2", "q_ff", vec![]),
                    route: Route::Direct,
                },
            ],
            answer_vars: vec![Arc::from("B"), Arc::from("C")],
        };
        let seq = estimate_plan(&plan, &dcsm, &CostConfig::default());
        // Sequential §7 formula: 2.1 + 3 · 5.2 = 17.7.
        assert!((seq.t_all_ms.unwrap() - 17.7).abs() < 1e-6);
        let par_cfg = CostConfig {
            max_parallel_calls: 2,
            dispatch_overhead_ms: 0.0,
            ..CostConfig::default()
        };
        let par = estimate_plan(&plan, &dcsm, &par_cfg);
        // Overlapped: the group costs max(2.1, 5.2) = 5.2.
        assert!(
            (par.t_all_ms.unwrap() - 5.2).abs() < 1e-6,
            "got {:?}",
            par.t_all_ms
        );
        // Overlap changes time, not answers.
        assert!((par.cardinality.unwrap() - seq.cardinality.unwrap()).abs() < 1e-9);
        // Dispatch overhead is charged per call.
        let with_overhead = CostConfig {
            max_parallel_calls: 2,
            dispatch_overhead_ms: 0.5,
            ..CostConfig::default()
        };
        let est = estimate_plan(&plan, &dcsm, &with_overhead);
        assert!((est.t_all_ms.unwrap() - 5.7).abs() < 1e-6);
    }

    #[test]
    fn unknown_calls_fall_back_to_prior() {
        let program = parse_program("r(B) :- in(B, dx:mystery_bf('z')).").unwrap();
        let plans = enumerate_plans(
            &program,
            &parse_query("?- r(B).").unwrap(),
            &CimPolicy::never(),
            RewriteConfig::default(),
        )
        .unwrap();
        let dcsm = Dcsm::new();
        let est = estimate_plan(&plans[0], &dcsm, &CostConfig::default());
        assert_eq!(est.t_all_ms.unwrap(), 1_000.0); // the default prior
    }
}
