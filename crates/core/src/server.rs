//! Concurrent query serving: the [`ConcurrentMediator`].
//!
//! A serial [`Mediator`](crate::mediator::Mediator) takes `&mut self` per
//! query — one client at a time. This module splits the mediator into an
//! **immutable planning core** (program, CIM policy, configuration,
//! pushdown rules — read-only after construction) and a **shared-state
//! layer** every query reaches through `&self`:
//!
//! * the answer cache, sharded by `(domain, function)` into independently
//!   locked [`ShardedCim`] shards;
//! * the statistics cache, sharded the same way ([`ShardedDcsm`]);
//! * the per-site circuit-breaker bank (one mutex — breaker transitions
//!   are rare and cheap);
//! * the single-flight [`InFlightRegistry`], coalescing identical
//!   concurrent ground calls into one source round trip.
//!
//! [`ConcurrentMediator::query`] therefore takes `&self`, and the type is
//! `Send + Sync`: wrap it in an `Arc` and call it from as many client
//! threads as you like.
//!
//! ## Virtual time under concurrency
//!
//! Each query runs on its own virtual clock, started at the server-wide
//! high-water mark of finished queries (an atomic, in microseconds). This
//! keeps per-query timings meaningful and monotone without serializing
//! queries behind a global clock mutex; concurrent queries overlap in
//! *real* time while each reports its own simulated timeline.

use crate::breaker::BreakerBank;
use crate::caches::CacheControl;
use crate::cost::choose_plan;
use crate::exec::{ExecStats, Executor};
use crate::flight::InFlightRegistry;
use crate::matcache::MatCache;
use crate::mediator::{
    check_mixed_definitions, project, MediatorConfig, Planned, QueryRequest, QueryResult,
};
use crate::plan::{Plan, PlanStep};
use crate::rewrite::{
    bind_query, cache_servable_plans, enumerate_plans_with_pushdowns, PushdownRule,
};
use crate::tier::{select_tier, PlanTier, TierDecision, TierInputs, TierLoad, TierReason};
use crate::trace::{TraceEntry, TraceEvent};
use hermes_cim::{CimPolicy, ShardedCim};
use hermes_common::sync::Mutex;
use hermes_common::{HermesError, Result, SimClock, SimDuration, SimInstant};
use hermes_dcsm::ShardedDcsm;
use hermes_lang::{parse_query, Program, Query};
use hermes_net::Network;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The immutable planning inputs, fixed at construction and shared
/// (lock-free) by every query.
#[derive(Debug)]
struct PlanningCore {
    program: Program,
    policy: CimPolicy,
    config: MediatorConfig,
    pushdowns: Vec<PushdownRule>,
}

/// Server-wide counters, assembled on demand from the shared state.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Queries served to completion (success or error).
    pub queries: u64,
    /// Ground calls that joined another query's identical in-flight call.
    pub calls_coalesced: u64,
    /// Coalesced calls actually served by a leader's published outcome —
    /// source round trips the coalescing avoided.
    pub round_trips_saved: u64,
    /// Flights that resolved with at least one follower attached.
    pub coalesced_flights: u64,
    /// Calls that reached a source executor (one per flight, however many
    /// queries coalesced onto it).
    pub source_calls: u64,
    /// Blocking CIM shard-lock acquisitions (a `try_lock` found the shard
    /// held by another query).
    pub cim_lock_contention: u64,
    /// Blocking DCSM shard-lock acquisitions.
    pub dcsm_lock_contention: u64,
    /// Queries the admission gate let through (everything not shed, so
    /// `admitted + shed == queries`).
    pub admitted: u64,
    /// Queries refused outright with [`HermesError::Shed`].
    pub shed: u64,
    /// Admitted queries that served degraded: started below the `Full`
    /// tier, or downgraded mid-execution under budget pressure.
    pub downgraded: u64,
    /// Queries served whole from a materialized subplan entry.
    pub subplan_hits: u64,
    /// Queries served by another query's in-flight subplan computation.
    pub subplans_coalesced: u64,
    /// Complete plan results admitted into the subplan cache.
    pub subplans_materialized: u64,
}

/// Admission-gate limits. The default is unbounded on every axis — the
/// gate admits everything and the server behaves exactly as before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GateConfig {
    /// Total concurrently admitted queries; `usize::MAX` = unbounded.
    pub capacity: usize,
    /// Concurrency budget for queries starting at `CacheOnly`.
    pub cache_only_slots: usize,
    /// Concurrency budget for queries starting at `CachedPlusCheapRemote`.
    pub cached_cheap_slots: usize,
    /// Concurrency budget for queries starting at `Full`.
    pub full_slots: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            capacity: usize::MAX,
            cache_only_slots: usize::MAX,
            cached_cheap_slots: usize::MAX,
            full_slots: usize::MAX,
        }
    }
}

impl GateConfig {
    /// A gate bounded only in total: `capacity` concurrent queries, no
    /// per-tier budgets.
    pub fn bounded(capacity: usize) -> Self {
        GateConfig {
            capacity,
            ..GateConfig::default()
        }
    }
}

/// The bounded admission gate: lock-free counters over a [`GateConfig`].
///
/// Total admission is checked at the front door (before any parsing or
/// planning — a shed query costs nothing and returns immediately);
/// per-tier budgets are checked once the tier selector has decided where
/// the query starts. A query whose tier budget is full falls to the next
/// cheaper tier with room (a gate-forced downgrade) and is shed only when
/// every tier down to `CacheOnly` is saturated.
#[derive(Debug)]
struct AdmissionGate {
    capacity: AtomicUsize,
    /// Indexed by tier: 0 = CacheOnly, 1 = CachedPlusCheapRemote, 2 = Full.
    tier_slots: [AtomicUsize; 3],
    in_flight: AtomicUsize,
    tier_in_flight: [AtomicUsize; 3],
}

fn tier_index(tier: PlanTier) -> usize {
    match tier {
        PlanTier::CacheOnly => 0,
        PlanTier::CachedPlusCheapRemote => 1,
        PlanTier::Full => 2,
    }
}

impl AdmissionGate {
    fn unbounded() -> Self {
        AdmissionGate {
            capacity: AtomicUsize::new(usize::MAX),
            tier_slots: [
                AtomicUsize::new(usize::MAX),
                AtomicUsize::new(usize::MAX),
                AtomicUsize::new(usize::MAX),
            ],
            in_flight: AtomicUsize::new(0),
            tier_in_flight: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
        }
    }

    fn set(&self, config: GateConfig) {
        self.capacity.store(config.capacity, Ordering::Relaxed);
        self.tier_slots[0].store(config.cache_only_slots, Ordering::Relaxed);
        self.tier_slots[1].store(config.cached_cheap_slots, Ordering::Relaxed);
        self.tier_slots[2].store(config.full_slots, Ordering::Relaxed);
    }

    /// True when any axis is finite — only then does the gate engage the
    /// tier selector on the default path.
    fn is_bounded(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) != usize::MAX
            || self
                .tier_slots
                .iter()
                .any(|s| s.load(Ordering::Relaxed) != usize::MAX)
    }

    /// The load the tier selector sees.
    fn load(&self) -> TierLoad {
        TierLoad {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            capacity: self.capacity.load(Ordering::Relaxed),
        }
    }

    /// Front-door admission. `None` means shed (`gate-full`).
    fn admit(&self) -> Option<GatePermit<'_>> {
        let capacity = self.capacity.load(Ordering::Relaxed);
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= capacity {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(GatePermit { gate: self })
    }

    /// Claims a slot at `tier`, falling to cheaper tiers while the
    /// requested one is saturated. `None` means every tier is full.
    fn acquire_tier(&self, tier: PlanTier) -> Option<(PlanTier, TierPermit<'_>)> {
        let mut t = tier;
        loop {
            let idx = tier_index(t);
            let slots = self.tier_slots[idx].load(Ordering::Relaxed);
            let prev = self.tier_in_flight[idx].fetch_add(1, Ordering::AcqRel);
            if prev < slots {
                return Some((t, TierPermit { gate: self, idx }));
            }
            self.tier_in_flight[idx].fetch_sub(1, Ordering::AcqRel);
            t = t.downgraded()?;
        }
    }
}

/// RAII total-capacity slot.
struct GatePermit<'g> {
    gate: &'g AdmissionGate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// RAII per-tier slot.
struct TierPermit<'g> {
    gate: &'g AdmissionGate,
    idx: usize,
}

impl Drop for TierPermit<'_> {
    fn drop(&mut self) {
        self.gate.tier_in_flight[self.idx].fetch_sub(1, Ordering::AcqRel);
    }
}

/// A mediator that serves many clients at once: `query` takes `&self`.
///
/// Built from a warmed-up serial mediator with
/// [`Mediator::to_concurrent`](crate::mediator::Mediator::to_concurrent);
/// cached answers and learned statistics carry over into the shards.
///
/// ```ignore
/// let server = Arc::new(mediator.to_concurrent(8));
/// let handles: Vec<_> = (0..8).map(|_| {
///     let server = server.clone();
///     std::thread::spawn(move || server.query("?- item(A, B)."))
/// }).collect();
/// ```
#[derive(Debug)]
pub struct ConcurrentMediator {
    core: PlanningCore,
    network: Arc<Network>,
    cim: Arc<ShardedCim>,
    dcsm: Arc<ShardedDcsm>,
    breakers: Arc<Mutex<BreakerBank>>,
    flight: Arc<InFlightRegistry>,
    /// The subplan materialization cache, shared with the serial mediator
    /// this server was split from. Verdicts were installed at
    /// `to_concurrent` time; the planning core is immutable, so they
    /// never go stale here.
    matcache: Arc<MatCache>,
    /// High-water mark of virtual time over finished queries, in
    /// microseconds since the epoch. Each query's clock starts here.
    epoch_us: AtomicU64,
    /// Run queries on a wall-anchored clock instead of the simulator:
    /// deadlines, budgets, and tier checkpoints bind to real elapsed
    /// time. The network serving stack (`hermes-serve`) turns this on.
    wall_clock: AtomicBool,
    queries: AtomicU64,
    gate: AdmissionGate,
    admitted: AtomicU64,
    shed: AtomicU64,
    downgraded: AtomicU64,
}

impl ConcurrentMediator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        program: Program,
        policy: CimPolicy,
        config: MediatorConfig,
        pushdowns: Vec<PushdownRule>,
        network: Arc<Network>,
        cim: ShardedCim,
        dcsm: ShardedDcsm,
        breakers: Arc<Mutex<BreakerBank>>,
        matcache: Arc<MatCache>,
        epoch: SimInstant,
    ) -> Self {
        ConcurrentMediator {
            core: PlanningCore {
                program,
                policy,
                config,
                pushdowns,
            },
            network,
            cim: Arc::new(cim),
            dcsm: Arc::new(dcsm),
            breakers,
            flight: Arc::new(InFlightRegistry::new()),
            matcache,
            epoch_us: AtomicU64::new(epoch.duration_since(SimInstant::EPOCH).as_micros()),
            wall_clock: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            gate: AdmissionGate::unbounded(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            downgraded: AtomicU64::new(0),
        }
    }

    /// Bounds the admission gate. The default gate is unbounded (nothing
    /// is shed, no tier budgets); a bounded gate additionally engages the
    /// tier selector on every query so overload degrades service instead
    /// of queueing it.
    pub fn set_gate(&self, config: GateConfig) {
        self.gate.set(config);
    }

    /// Switches query execution onto a wall-anchored clock (see
    /// [`SimClock::wall_from`]): per-query deadlines, budgets, and tier
    /// checkpoints then bind to real elapsed time, which is what a server
    /// answering remote clients over real-latency backends needs. Off by
    /// default — the simulated clock keeps runs deterministic.
    pub fn set_wall_clock(&self, on: bool) {
        self.wall_clock.store(on, Ordering::Relaxed);
    }

    /// True when queries run on the wall clock.
    pub fn wall_clock(&self) -> bool {
        self.wall_clock.load(Ordering::Relaxed)
    }

    /// Runs a query. Accepts plain source text or a [`QueryRequest`],
    /// exactly like the serial [`Mediator::query`]; request options apply
    /// to this run only. Takes `&self` — call it from any thread.
    ///
    /// [`Mediator::query`]: crate::mediator::Mediator::query
    pub fn query(&self, req: impl Into<QueryRequest>) -> Result<QueryResult> {
        let req = req.into();
        let result = self.serve(&req);
        if matches!(&result, Err(HermesError::Shed { .. })) {
            self.shed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admitted.fetch_add(1, Ordering::Relaxed);
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// The admission-gated serving path behind [`query`](Self::query).
    ///
    /// Order matters: total admission is checked before any parsing or
    /// planning, so a shed query costs nothing and returns immediately;
    /// tier selection runs after planning (it needs the cost estimate);
    /// the per-tier slot is claimed last and held across execution.
    fn serve(&self, req: &QueryRequest) -> Result<QueryResult> {
        let _permit = self.gate.admit().ok_or_else(|| HermesError::Shed {
            reason: "gate-full".into(),
        })?;
        let mut config = self.core.config;
        if let Some(d) = req.deadline {
            config.exec.deadline = Some(d);
        }
        if let Some(t) = req.trace {
            config.exec.collect_trace = t;
        }
        if let Some(k) = req.parallelism {
            config.exec.max_parallel_calls = k;
            config.cost.max_parallel_calls = k;
            config.rewrite.favor_parallel = k > 1;
        }
        if let Some(b) = req.budget {
            config.exec.budget = Some(b);
        }
        let query = parse_query(&req.src)?;
        let query = match &req.bindings {
            Some(params) => bind_query(&query, params),
            None => query,
        };
        let mut planned = self.plan_query(&query, &config)?;
        let decision = self.select_query_tier(req, &mut planned, &config);
        let tier_permit = match decision {
            Some(d) => {
                let (granted, permit) =
                    self.gate
                        .acquire_tier(d.tier)
                        .ok_or_else(|| HermesError::Shed {
                            reason: "tier-budget-full".into(),
                        })?;
                config.exec.tier = granted;
                Some((
                    granted,
                    // A gate-forced fall to a cheaper tier is a load
                    // decision, whatever the selector's original reason.
                    if granted < d.tier {
                        TierReason::HighLoad
                    } else {
                        d.reason
                    },
                    permit,
                ))
            }
            None => None,
        };
        let selected_at = self.now();
        let mut result = self.execute(planned, req.limit, &config)?;
        match tier_permit {
            Some((tier, reason, _permit)) => {
                if reason != TierReason::Default && config.exec.collect_trace {
                    result.trace.insert(
                        0,
                        TraceEntry {
                            at: selected_at,
                            event: TraceEvent::TierSelected { tier, reason },
                        },
                    );
                }
                if tier < PlanTier::Full || result.stats.tier_downgrades > 0 {
                    self.downgraded.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                if result.stats.tier_downgrades > 0 {
                    self.downgraded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(result)
    }

    /// Mirrors the serial mediator's tier selection, with the gate's real
    /// load as the load signal. Engaged only when tiering is asked for
    /// (adaptive config, per-request tier or budget) or the gate is
    /// bounded — the default path never consults the selector.
    fn select_query_tier(
        &self,
        req: &QueryRequest,
        planned: &mut Planned,
        config: &MediatorConfig,
    ) -> Option<TierDecision> {
        let engaged = config.adaptive_tiers
            || req.tier.is_some()
            || config.exec.budget.is_some()
            || self.gate.is_bounded();
        if !engaged {
            return None;
        }
        let plan_sites = self.plan_sites(planned.plan());
        let open = self.breakers.lock().open_sites(self.now());
        let decision = select_tier(&TierInputs {
            requested: req.tier,
            budget: config.exec.budget,
            estimate_ms: planned.estimate().t_all_ms.unwrap_or(0.0),
            plan_site_breaker_open: open.iter().any(|s| plan_sites.contains(s.as_ref())),
            load: self.gate.load(),
        });
        if decision.tier == PlanTier::CacheOnly {
            let servable = cache_servable_plans(&planned.plans);
            if !servable.is_empty() && !servable.contains(&planned.chosen) {
                planned.chosen = servable
                    .into_iter()
                    .min_by(|&a, &b| {
                        let ta = planned.estimates[a].t_all_ms.unwrap_or(f64::INFINITY);
                        let tb = planned.estimates[b].t_all_ms.unwrap_or(f64::INFINITY);
                        ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("servable is non-empty");
            }
        }
        Some(decision)
    }

    /// Plans a query against the immutable core and the current shared
    /// statistics.
    fn plan_query(&self, query: &Query, config: &MediatorConfig) -> Result<Planned> {
        check_mixed_definitions(&self.core.program)?;
        let plans = enumerate_plans_with_pushdowns(
            &self.core.program,
            query,
            &self.core.policy,
            config.rewrite,
            &self.core.pushdowns,
        )?;
        let (chosen, estimates) = choose_plan(
            &plans,
            self.dcsm.as_ref(),
            &config.cost,
            config.optimize_first_answer,
        );
        Ok(Planned {
            plans,
            estimates,
            chosen,
        })
    }

    /// The failover-aware execution loop (mirrors the serial mediator's),
    /// on a per-query clock seeded from the server's high-water mark.
    fn execute(
        &self,
        planned: Planned,
        limit: Option<usize>,
        config: &MediatorConfig,
    ) -> Result<QueryResult> {
        let mut idx = planned.chosen;
        let mut avoid: BTreeSet<String> = BTreeSet::new();
        let mut failovers = 0u32;
        let mut carried = ExecStats::default();
        let epoch =
            SimInstant::EPOCH + SimDuration::from_micros(self.epoch_us.load(Ordering::Relaxed));
        let mut clock = if self.wall_clock.load(Ordering::Relaxed) {
            SimClock::wall_from(epoch)
        } else {
            let mut c = SimClock::new();
            c.advance_to(epoch);
            c
        };
        loop {
            let plan = planned.plans[idx].clone();
            let estimate = planned.estimates[idx];
            let mut executor = Executor::new(
                &self.network,
                self.cim.as_ref(),
                self.dcsm.as_ref(),
                clock.clone(),
                config.exec,
            )
            .with_breakers(&self.breakers)
            .with_flight(&self.flight);
            if config.exec.share_subplans {
                executor = executor.with_matcache(&self.matcache);
            }
            let attempt = executor.run(&plan, limit);
            clock.advance_to(executor.now());
            self.push_epoch(clock.now());
            match attempt {
                Ok(outcome) => {
                    self.push_epoch(outcome.clock.now());
                    let mut result = project(plan, estimate, planned.plans.len(), outcome);
                    result.failovers = failovers;
                    result.stats.absorb(&carried);
                    return Ok(result);
                }
                Err(HermesError::Unavailable { site, reason }) if config.failover => {
                    carried.absorb(&executor.stats());
                    if !avoid.insert(site.clone()) {
                        return Err(HermesError::Unavailable { site, reason });
                    }
                    match self.failover_choice(&planned, &avoid, config) {
                        Some(next) => {
                            failovers += 1;
                            idx = next;
                        }
                        None => return Err(HermesError::Unavailable { site, reason }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Raises the server-wide virtual-time high-water mark to `t`.
    fn push_epoch(&self, t: SimInstant) {
        self.epoch_us.fetch_max(
            t.duration_since(SimInstant::EPOCH).as_micros(),
            Ordering::Relaxed,
        );
    }

    /// The sites a plan's call steps touch.
    fn plan_sites(&self, plan: &Plan) -> BTreeSet<String> {
        let mut sites = BTreeSet::new();
        for step in &plan.steps {
            if let PlanStep::Call { call, .. } = step {
                if let Ok(site) = self.network.site_of(&call.domain) {
                    sites.insert(site.name.to_string());
                }
            }
        }
        sites
    }

    /// The cheapest plan (under current statistics) avoiding every site in
    /// `avoid`, if any.
    fn failover_choice(
        &self,
        planned: &Planned,
        avoid: &BTreeSet<String>,
        config: &MediatorConfig,
    ) -> Option<usize> {
        let eligible: Vec<usize> = (0..planned.plans.len())
            .filter(|&i| self.plan_sites(&planned.plans[i]).is_disjoint(avoid))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let candidates: Vec<Plan> = eligible.iter().map(|&i| planned.plans[i].clone()).collect();
        let (chosen, _) = choose_plan(
            &candidates,
            self.dcsm.as_ref(),
            &config.cost,
            config.optimize_first_answer,
        );
        Some(eligible[chosen])
    }

    /// The sharded answer cache.
    pub fn cim(&self) -> &ShardedCim {
        &self.cim
    }

    /// The unified cache-control facade over both cache tiers — the
    /// concurrent counterpart of
    /// [`Mediator::caches`](crate::mediator::Mediator::caches). Takes
    /// `&self`: stats, invalidation, clearing, and budget changes are safe
    /// from any thread. Planning-core knobs (`routing`, `share_subplans`)
    /// are refused here — they bind at `to_concurrent` time.
    pub fn caches(&self) -> CacheControl<'_> {
        CacheControl::shared(&self.cim, &self.matcache)
    }

    /// The sharded statistics cache.
    pub fn dcsm(&self) -> &ShardedDcsm {
        &self.dcsm
    }

    /// The single-flight registry.
    pub fn flight(&self) -> &InFlightRegistry {
        &self.flight
    }

    /// The network of placed domains.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The shared circuit-breaker bank.
    pub fn breakers(&self) -> &Mutex<BreakerBank> {
        &self.breakers
    }

    /// The server-wide virtual-time high-water mark.
    pub fn now(&self) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(self.epoch_us.load(Ordering::Relaxed))
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        let mat = self.matcache.stats();
        ServerStats {
            queries: self.queries.load(Ordering::Relaxed),
            calls_coalesced: self.flight.calls_coalesced(),
            round_trips_saved: self.flight.round_trips_saved(),
            coalesced_flights: self.flight.coalesced_flights(),
            source_calls: self.network.source_calls(),
            cim_lock_contention: self.cim.lock_contention(),
            dcsm_lock_contention: self.dcsm.lock_contention(),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            downgraded: self.downgraded.load(Ordering::Relaxed),
            subplan_hits: mat.hits,
            subplans_coalesced: mat.coalesced,
            subplans_materialized: mat.materialized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::profiles;

    fn mediator() -> Mediator {
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::cornell());
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            item(A, B) :- in(A, d1:p_fb(B)).
            ",
            net,
        )
        .unwrap()
    }

    fn sorted(rows: &[Vec<hermes_common::Value>]) -> Vec<Vec<hermes_common::Value>> {
        let mut rows = rows.to_vec();
        rows.sort();
        rows
    }

    #[test]
    fn concurrent_mediator_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentMediator>();
    }

    #[test]
    fn serves_the_same_answers_as_the_serial_mediator() {
        let mut serial = mediator();
        let expected = serial.query("?- item(A, B).").unwrap();
        let server = mediator().to_concurrent(4);
        let got = server.query("?- item(A, B).").unwrap();
        assert_eq!(sorted(&got.rows), sorted(&expected.rows));
        assert_eq!(server.stats().queries, 1);
    }

    #[test]
    fn warm_cache_carries_over_into_the_shards() {
        let mut serial = mediator();
        let warm = serial.query("?- item('p_1', B).").unwrap();
        let server = serial.to_concurrent(4);
        let got = server.query("?- item('p_1', B).").unwrap();
        assert_eq!(sorted(&got.rows), sorted(&warm.rows));
        assert_eq!(got.stats.actual_calls, 0, "served from migrated cache");
    }

    #[test]
    fn many_threads_query_one_server() {
        let server = Arc::new(mediator().to_concurrent(4));
        let expected = sorted(&server.query("?- item(A, B).").unwrap().rows);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let server = server.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        let got = server.query("?- item(A, B).").unwrap();
                        assert_eq!(sorted(&got.rows), expected);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(server.stats().queries, 13);
    }

    #[test]
    fn virtual_time_high_water_advances() {
        let server = mediator().to_concurrent(2);
        let t0 = server.now();
        server.query("?- item('p_1', B).").unwrap();
        assert!(server.now() > t0);
    }

    #[test]
    fn default_gate_never_sheds_and_counts_everyone_admitted() {
        let server = mediator().to_concurrent(2);
        for _ in 0..5 {
            server.query("?- item('p_1', B).").unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.downgraded, 0);
    }

    #[test]
    fn zero_capacity_gate_sheds_with_the_gate_full_reason() {
        let server = mediator().to_concurrent(2);
        server.set_gate(GateConfig::bounded(0));
        let err = server.query("?- item('p_1', B).").unwrap_err();
        match err {
            HermesError::Shed { reason } => assert_eq!(reason, "gate-full"),
            other => panic!("expected Shed, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.admitted, 0);
    }

    #[test]
    fn bounded_gate_serves_the_same_answers_as_unbounded() {
        let unbounded = mediator().to_concurrent(2);
        let expected = sorted(&unbounded.query("?- item(A, B).").unwrap().rows);
        let server = mediator().to_concurrent(2);
        server.set_gate(GateConfig::bounded(8));
        let got = server.query("?- item(A, B).").unwrap();
        assert_eq!(sorted(&got.rows), expected);
        let stats = server.stats();
        assert_eq!(stats.admitted + stats.shed, stats.queries);
    }

    #[test]
    fn explicit_cache_only_requests_count_as_downgraded() {
        let server = mediator().to_concurrent(2);
        // Warm the cache at full service first.
        server.query("?- item('p_1', B).").unwrap();
        let req = QueryRequest::new("?- item('p_1', B).").tier(PlanTier::CacheOnly);
        let got = server.query(req).unwrap();
        assert_eq!(got.stats.actual_calls, 0, "cache-only never hits the wire");
        let stats = server.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.downgraded, 1);
    }

    #[test]
    fn saturated_tier_budget_falls_down_rather_than_shedding() {
        let server = mediator().to_concurrent(2);
        // No Full slots at all: every query is gate-forced below Full.
        server.set_gate(GateConfig {
            capacity: 8,
            cache_only_slots: usize::MAX,
            cached_cheap_slots: usize::MAX,
            full_slots: 0,
        });
        let got = server.query("?- item('p_1', B).").unwrap();
        assert!(!got.rows.is_empty() || got.incomplete);
        let stats = server.stats();
        assert_eq!(stats.shed, 0);
        assert_eq!(
            stats.downgraded, 1,
            "gate-forced tier fall counts as degraded"
        );
    }
}
