//! Concurrent query serving: the [`ConcurrentMediator`].
//!
//! A serial [`Mediator`](crate::mediator::Mediator) takes `&mut self` per
//! query — one client at a time. This module splits the mediator into an
//! **immutable planning core** (program, CIM policy, configuration,
//! pushdown rules — read-only after construction) and a **shared-state
//! layer** every query reaches through `&self`:
//!
//! * the answer cache, sharded by `(domain, function)` into independently
//!   locked [`ShardedCim`] shards;
//! * the statistics cache, sharded the same way ([`ShardedDcsm`]);
//! * the per-site circuit-breaker bank (one mutex — breaker transitions
//!   are rare and cheap);
//! * the single-flight [`InFlightRegistry`], coalescing identical
//!   concurrent ground calls into one source round trip.
//!
//! [`ConcurrentMediator::query`] therefore takes `&self`, and the type is
//! `Send + Sync`: wrap it in an `Arc` and call it from as many client
//! threads as you like.
//!
//! ## Virtual time under concurrency
//!
//! Each query runs on its own virtual clock, started at the server-wide
//! high-water mark of finished queries (an atomic, in microseconds). This
//! keeps per-query timings meaningful and monotone without serializing
//! queries behind a global clock mutex; concurrent queries overlap in
//! *real* time while each reports its own simulated timeline.

use crate::breaker::BreakerBank;
use crate::cost::choose_plan;
use crate::exec::{ExecStats, Executor};
use crate::flight::InFlightRegistry;
use crate::mediator::{
    check_mixed_definitions, project, MediatorConfig, Planned, QueryRequest, QueryResult,
};
use crate::plan::{Plan, PlanStep};
use crate::rewrite::{bind_query, enumerate_plans_with_pushdowns, PushdownRule};
use hermes_cim::{CimPolicy, ShardedCim};
use hermes_common::sync::Mutex;
use hermes_common::{HermesError, Result, SimClock, SimDuration, SimInstant};
use hermes_dcsm::ShardedDcsm;
use hermes_lang::{parse_query, Program, Query};
use hermes_net::Network;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The immutable planning inputs, fixed at construction and shared
/// (lock-free) by every query.
#[derive(Debug)]
struct PlanningCore {
    program: Program,
    policy: CimPolicy,
    config: MediatorConfig,
    pushdowns: Vec<PushdownRule>,
}

/// Server-wide counters, assembled on demand from the shared state.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Queries served to completion (success or error).
    pub queries: u64,
    /// Ground calls that joined another query's identical in-flight call.
    pub calls_coalesced: u64,
    /// Coalesced calls actually served by a leader's published outcome —
    /// source round trips the coalescing avoided.
    pub round_trips_saved: u64,
    /// Flights that resolved with at least one follower attached.
    pub coalesced_flights: u64,
    /// Calls that reached a source executor (one per flight, however many
    /// queries coalesced onto it).
    pub source_calls: u64,
    /// Blocking CIM shard-lock acquisitions (a `try_lock` found the shard
    /// held by another query).
    pub cim_lock_contention: u64,
    /// Blocking DCSM shard-lock acquisitions.
    pub dcsm_lock_contention: u64,
}

/// A mediator that serves many clients at once: `query` takes `&self`.
///
/// Built from a warmed-up serial mediator with
/// [`Mediator::to_concurrent`](crate::mediator::Mediator::to_concurrent);
/// cached answers and learned statistics carry over into the shards.
///
/// ```ignore
/// let server = Arc::new(mediator.to_concurrent(8));
/// let handles: Vec<_> = (0..8).map(|_| {
///     let server = server.clone();
///     std::thread::spawn(move || server.query("?- item(A, B)."))
/// }).collect();
/// ```
#[derive(Debug)]
pub struct ConcurrentMediator {
    core: PlanningCore,
    network: Arc<Network>,
    cim: Arc<ShardedCim>,
    dcsm: Arc<ShardedDcsm>,
    breakers: Arc<Mutex<BreakerBank>>,
    flight: Arc<InFlightRegistry>,
    /// High-water mark of virtual time over finished queries, in
    /// microseconds since the epoch. Each query's clock starts here.
    epoch_us: AtomicU64,
    queries: AtomicU64,
}

impl ConcurrentMediator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        program: Program,
        policy: CimPolicy,
        config: MediatorConfig,
        pushdowns: Vec<PushdownRule>,
        network: Arc<Network>,
        cim: ShardedCim,
        dcsm: ShardedDcsm,
        breakers: Arc<Mutex<BreakerBank>>,
        epoch: SimInstant,
    ) -> Self {
        ConcurrentMediator {
            core: PlanningCore {
                program,
                policy,
                config,
                pushdowns,
            },
            network,
            cim: Arc::new(cim),
            dcsm: Arc::new(dcsm),
            breakers,
            flight: Arc::new(InFlightRegistry::new()),
            epoch_us: AtomicU64::new(epoch.duration_since(SimInstant::EPOCH).as_micros()),
            queries: AtomicU64::new(0),
        }
    }

    /// Runs a query. Accepts plain source text or a [`QueryRequest`],
    /// exactly like the serial [`Mediator::query`]; request options apply
    /// to this run only. Takes `&self` — call it from any thread.
    ///
    /// [`Mediator::query`]: crate::mediator::Mediator::query
    pub fn query(&self, req: impl Into<QueryRequest>) -> Result<QueryResult> {
        let req = req.into();
        let mut config = self.core.config;
        if let Some(d) = req.deadline {
            config.exec.deadline = Some(d);
        }
        if let Some(t) = req.trace {
            config.exec.collect_trace = t;
        }
        if let Some(k) = req.parallelism {
            config.exec.max_parallel_calls = k;
            config.cost.max_parallel_calls = k;
            config.rewrite.favor_parallel = k > 1;
        }
        let result = (|| {
            let query = parse_query(&req.src)?;
            let query = match &req.bindings {
                Some(params) => bind_query(&query, params),
                None => query,
            };
            let planned = self.plan_query(&query, &config)?;
            self.execute(planned, req.limit, &config)
        })();
        self.queries.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Plans a query against the immutable core and the current shared
    /// statistics.
    fn plan_query(&self, query: &Query, config: &MediatorConfig) -> Result<Planned> {
        check_mixed_definitions(&self.core.program)?;
        let plans = enumerate_plans_with_pushdowns(
            &self.core.program,
            query,
            &self.core.policy,
            config.rewrite,
            &self.core.pushdowns,
        )?;
        let (chosen, estimates) = choose_plan(
            &plans,
            self.dcsm.as_ref(),
            &config.cost,
            config.optimize_first_answer,
        );
        Ok(Planned {
            plans,
            estimates,
            chosen,
        })
    }

    /// The failover-aware execution loop (mirrors the serial mediator's),
    /// on a per-query clock seeded from the server's high-water mark.
    fn execute(
        &self,
        planned: Planned,
        limit: Option<usize>,
        config: &MediatorConfig,
    ) -> Result<QueryResult> {
        let mut idx = planned.chosen;
        let mut avoid: BTreeSet<String> = BTreeSet::new();
        let mut failovers = 0u32;
        let mut carried = ExecStats::default();
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_micros(
            self.epoch_us.load(Ordering::Relaxed),
        ));
        loop {
            let plan = planned.plans[idx].clone();
            let estimate = planned.estimates[idx];
            let mut executor = Executor::new(
                &self.network,
                self.cim.as_ref(),
                self.dcsm.as_ref(),
                clock.clone(),
                config.exec,
            )
            .with_breakers(&self.breakers)
            .with_flight(&self.flight);
            let attempt = executor.run(&plan, limit);
            clock.advance_to(executor.now());
            self.push_epoch(clock.now());
            match attempt {
                Ok(outcome) => {
                    self.push_epoch(outcome.clock.now());
                    let mut result = project(plan, estimate, planned.plans.len(), outcome);
                    result.failovers = failovers;
                    result.stats.absorb(&carried);
                    return Ok(result);
                }
                Err(HermesError::Unavailable { site, reason }) if config.failover => {
                    carried.absorb(&executor.stats());
                    if !avoid.insert(site.clone()) {
                        return Err(HermesError::Unavailable { site, reason });
                    }
                    match self.failover_choice(&planned, &avoid, config) {
                        Some(next) => {
                            failovers += 1;
                            idx = next;
                        }
                        None => return Err(HermesError::Unavailable { site, reason }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Raises the server-wide virtual-time high-water mark to `t`.
    fn push_epoch(&self, t: SimInstant) {
        self.epoch_us.fetch_max(
            t.duration_since(SimInstant::EPOCH).as_micros(),
            Ordering::Relaxed,
        );
    }

    /// The sites a plan's call steps touch.
    fn plan_sites(&self, plan: &Plan) -> BTreeSet<String> {
        let mut sites = BTreeSet::new();
        for step in &plan.steps {
            if let PlanStep::Call { call, .. } = step {
                if let Ok(site) = self.network.site_of(&call.domain) {
                    sites.insert(site.name.to_string());
                }
            }
        }
        sites
    }

    /// The cheapest plan (under current statistics) avoiding every site in
    /// `avoid`, if any.
    fn failover_choice(
        &self,
        planned: &Planned,
        avoid: &BTreeSet<String>,
        config: &MediatorConfig,
    ) -> Option<usize> {
        let eligible: Vec<usize> = (0..planned.plans.len())
            .filter(|&i| self.plan_sites(&planned.plans[i]).is_disjoint(avoid))
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let candidates: Vec<Plan> = eligible.iter().map(|&i| planned.plans[i].clone()).collect();
        let (chosen, _) = choose_plan(
            &candidates,
            self.dcsm.as_ref(),
            &config.cost,
            config.optimize_first_answer,
        );
        Some(eligible[chosen])
    }

    /// The sharded answer cache.
    pub fn cim(&self) -> &ShardedCim {
        &self.cim
    }

    /// The sharded statistics cache.
    pub fn dcsm(&self) -> &ShardedDcsm {
        &self.dcsm
    }

    /// The single-flight registry.
    pub fn flight(&self) -> &InFlightRegistry {
        &self.flight
    }

    /// The network of placed domains.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The shared circuit-breaker bank.
    pub fn breakers(&self) -> &Mutex<BreakerBank> {
        &self.breakers
    }

    /// The server-wide virtual-time high-water mark.
    pub fn now(&self) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(self.epoch_us.load(Ordering::Relaxed))
    }

    /// Server-wide counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            queries: self.queries.load(Ordering::Relaxed),
            calls_coalesced: self.flight.calls_coalesced(),
            round_trips_saved: self.flight.round_trips_saved(),
            coalesced_flights: self.flight.coalesced_flights(),
            source_calls: self.network.source_calls(),
            cim_lock_contention: self.cim.lock_contention(),
            dcsm_lock_contention: self.dcsm.lock_contention(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::Mediator;
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::profiles;

    fn mediator() -> Mediator {
        let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 8, 2.0)]);
        let mut net = Network::new(1);
        net.place(Arc::new(domain), profiles::cornell());
        Mediator::from_source(
            "
            item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
            item(A, B) :- in(B, d1:p_bf(A)).
            item(A, B) :- in(A, d1:p_fb(B)).
            ",
            net,
        )
        .unwrap()
    }

    fn sorted(rows: &[Vec<hermes_common::Value>]) -> Vec<Vec<hermes_common::Value>> {
        let mut rows = rows.to_vec();
        rows.sort();
        rows
    }

    #[test]
    fn concurrent_mediator_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConcurrentMediator>();
    }

    #[test]
    fn serves_the_same_answers_as_the_serial_mediator() {
        let mut serial = mediator();
        let expected = serial.query("?- item(A, B).").unwrap();
        let server = mediator().to_concurrent(4);
        let got = server.query("?- item(A, B).").unwrap();
        assert_eq!(sorted(&got.rows), sorted(&expected.rows));
        assert_eq!(server.stats().queries, 1);
    }

    #[test]
    fn warm_cache_carries_over_into_the_shards() {
        let mut serial = mediator();
        let warm = serial.query("?- item('p_1', B).").unwrap();
        let server = serial.to_concurrent(4);
        let got = server.query("?- item('p_1', B).").unwrap();
        assert_eq!(sorted(&got.rows), sorted(&warm.rows));
        assert_eq!(got.stats.actual_calls, 0, "served from migrated cache");
    }

    #[test]
    fn many_threads_query_one_server() {
        let server = Arc::new(mediator().to_concurrent(4));
        let expected = sorted(&server.query("?- item(A, B).").unwrap().rows);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let server = server.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        let got = server.query("?- item(A, B).").unwrap();
                        assert_eq!(sorted(&got.rows), expected);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(server.stats().queries, 13);
    }

    #[test]
    fn virtual_time_high_water_advances() {
        let server = mediator().to_concurrent(2);
        let t0 = server.now();
        server.query("?- item('p_1', B).").unwrap();
        assert!(server.now() > t0);
    }
}
