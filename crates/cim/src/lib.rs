// Cache state must never panic the mediator: every fallible path returns a
// typed `HermesError` instead. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # hermes-cim
//!
//! The **Cache and Invariant Manager** (CIM) of §4: an answer cache keyed by
//! ground domain calls, made *intelligent* by invariants — sound rewrite
//! rules `Condition ⇒ DC1 {=, ⊇, ⊆} DC2` that let the cache serve calls it
//! never stored explicitly.
//!
//! The lookup pipeline follows §4.1 exactly:
//!
//! 1. **Exact match** — the call itself is cached: return its answers.
//! 2. **Equality invariant** — some invariant maps the call to a cached call
//!    with an *identical* answer set: return the cached answers.
//! 3. **Subset invariant** — some invariant proves a cached call's answers
//!    are a subset of the call's: return them as a fast *partial* answer;
//!    the actual call is still needed for completeness (unless the user,
//!    in interactive mode, stops early).
//! 4. **Miss** — optionally with a cheaper *equivalent* ground call to
//!    execute instead (an equality invariant whose right side became fully
//!    ground, like the paper's range-shrinking example).
//!
//! ```
//! use hermes_cim::{Cim, CimResolution};
//! use hermes_lang::parse_invariant;
//! use hermes_common::{GroundCall, SimInstant, Value};
//!
//! let mut cim = Cim::new();
//! cim.add_invariant(parse_invariant(
//!     "V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).",
//! ).unwrap()).unwrap();
//!
//! let small = GroundCall::new("rel", "select_lt",
//!     vec![Value::str("inv"), Value::str("qty"), Value::Int(10)]);
//! cim.store(small, vec![Value::Int(3)], true, SimInstant::EPOCH);
//!
//! // A *wider* select can reuse the cached narrower one as a partial hit.
//! let big = GroundCall::new("rel", "select_lt",
//!     vec![Value::str("inv"), Value::str("qty"), Value::Int(99)]);
//! let (res, _cost) = cim.lookup(&big, SimInstant::EPOCH);
//! assert!(matches!(res, CimResolution::PartialHit { .. }));
//! ```

pub mod cache;
pub mod invariant;
pub mod manager;
pub mod persist;
pub mod policy;
pub mod sharded;

pub use cache::{AnswerCache, CacheEntry, CacheStats};
pub use invariant::{InvariantHit, InvariantStore};
pub use manager::{Cim, CimCostModel, CimPreview, CimResolution, CimStats};
pub use policy::{CimPolicy, RoutingDecision};
pub use sharded::{CimView, ShardedCim};
