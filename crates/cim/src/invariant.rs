//! Invariant matching against the cache (§4.1, the θ machinery).
//!
//! Given a concrete call `C` and an invariant `Cond ⇒ DC1 R DC2`, the
//! manager can use the invariant in *both* directions:
//!
//! * unify `C` with `DC1` (relation read as written), or
//! * unify `C` with `DC2` (relation flipped).
//!
//! After unifying with one side (substitution θ₁), the other side's
//! template is scanned against the cache: any entry whose call unifies
//! (extending θ₁ to θ₂) and whose fully-instantiated condition holds is a
//! hit. The relation then says what the cached answers *are* for `C`:
//! identical (`=`), a subset (`⊇` toward the cached side), or a superset
//! (`⊆`, unusable for sound answers and therefore only counted).

use crate::cache::AnswerCache;
use hermes_common::GroundCall;
use hermes_lang::{CallTemplate, InvRel, Invariant, Subst};

/// One way the cache can serve a call through an invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantHit {
    /// A cached call with an answer set *equal* to the wanted call's.
    Equal {
        /// The cached call to read.
        cached: GroundCall,
        /// Index of the invariant that proved it.
        invariant: usize,
    },
    /// A cached call whose answers are a *subset* of the wanted call's —
    /// a fast partial answer (§4.1 step 3).
    Partial {
        /// The cached call to read.
        cached: GroundCall,
        /// Index of the invariant that proved it.
        invariant: usize,
    },
}

impl InvariantHit {
    /// The cached call this hit reads.
    pub fn cached(&self) -> &GroundCall {
        match self {
            InvariantHit::Equal { cached, .. } | InvariantHit::Partial { cached, .. } => cached,
        }
    }

    /// True for [`InvariantHit::Equal`].
    pub fn is_equal(&self) -> bool {
        matches!(self, InvariantHit::Equal { .. })
    }
}

/// The invariant store plus its matching algorithms.
#[derive(Clone, Debug, Default)]
pub struct InvariantStore {
    invariants: Vec<Invariant>,
}

impl InvariantStore {
    /// An empty store.
    pub fn new() -> Self {
        InvariantStore::default()
    }

    /// Adds a validated invariant and returns its index.
    pub fn add(&mut self, inv: Invariant) -> hermes_common::Result<usize> {
        hermes_lang::validate_invariant(&inv)?;
        self.invariants.push(inv);
        Ok(self.invariants.len() - 1)
    }

    /// The stored invariants.
    pub fn all(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Number of stored invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if no invariants are stored.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Finds every way the cache can serve `call` through an invariant.
    /// `Equal` hits sort before `Partial` hits; among equals, more recent
    /// cache entries first.
    pub fn find_hits(&self, call: &GroundCall, cache: &AnswerCache) -> Vec<InvariantHit> {
        let mut hits = Vec::new();
        for (idx, inv) in self.invariants.iter().enumerate() {
            // Direction 1: call is DC1, cached candidate is DC2, relation as
            // written. Direction 2: call is DC2, candidate is DC1, flipped.
            for (own, other, rel) in [
                (&inv.lhs, &inv.rhs, inv.rel),
                (&inv.rhs, &inv.lhs, inv.rel.flipped()),
            ] {
                let Some(theta1) = Subst::new().match_call(own, call) else {
                    continue;
                };
                self.scan_cache(inv, idx, other, rel, &theta1, cache, call, &mut hits);
            }
        }
        // Equal hits first; break ties by freshness.
        hits.sort_by_key(|h| {
            let fresh = cache
                .peek(h.cached())
                .map(|e| u64::MAX - e.inserted_at.as_micros())
                .unwrap_or(u64::MAX);
            (!h.is_equal() as u8, fresh)
        });
        hits
    }

    /// Equality invariants whose *other* side becomes fully ground under
    /// the match — candidate substitute calls that could be executed
    /// instead of `call` (the paper's range-shrinking example). The
    /// returned calls are distinct from `call` itself.
    pub fn substitutes(&self, call: &GroundCall) -> Vec<GroundCall> {
        let mut out = Vec::new();
        for inv in &self.invariants {
            if inv.rel != InvRel::Equal {
                continue;
            }
            for (own, other) in [(&inv.lhs, &inv.rhs), (&inv.rhs, &inv.lhs)] {
                let Some(theta) = Subst::new().match_call(own, call) else {
                    continue;
                };
                // All conditions must be decidable and true under θ alone.
                if !inv
                    .conditions
                    .iter()
                    .all(|c| theta.eval_condition(c) == Some(true))
                {
                    continue;
                }
                if let Some(sub) = theta.ground_call(other) {
                    if &sub != call && !out.contains(&sub) {
                        out.push(sub);
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_cache(
        &self,
        inv: &Invariant,
        idx: usize,
        other: &CallTemplate,
        rel: InvRel,
        theta1: &Subst,
        cache: &AnswerCache,
        call: &GroundCall,
        hits: &mut Vec<InvariantHit>,
    ) {
        // ⊆ toward the cached side means the cached answers are a superset
        // of the wanted set — not soundly usable, skip entirely.
        if rel == InvRel::Subset {
            return;
        }
        for (cached_call, entry) in cache.iter() {
            if cached_call == call {
                continue; // exact hits are handled before invariants
            }
            // Only complete entries can prove Equal; incomplete entries can
            // still provide partial answers.
            let Some(theta2) = theta1.match_call(other, cached_call) else {
                continue;
            };
            if !inv
                .conditions
                .iter()
                .all(|c| theta2.eval_condition(c) == Some(true))
            {
                continue;
            }
            let hit = match rel {
                InvRel::Equal if entry.complete => InvariantHit::Equal {
                    cached: cached_call.clone(),
                    invariant: idx,
                },
                // An equality proof over an incomplete entry still gives a
                // sound subset of the answers.
                InvRel::Equal => InvariantHit::Partial {
                    cached: cached_call.clone(),
                    invariant: idx,
                },
                InvRel::Superset => InvariantHit::Partial {
                    cached: cached_call.clone(),
                    invariant: idx,
                },
                InvRel::Subset => unreachable!("filtered above"),
            };
            if !hits.contains(&hit) {
                hits.push(hit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{SimInstant, Value};
    use hermes_lang::parse_invariant;

    fn lt_call(v: i64) -> GroundCall {
        GroundCall::new(
            "rel",
            "select_lt",
            vec![Value::str("inv"), Value::str("qty"), Value::Int(v)],
        )
    }

    fn store_with_monotone_invariant() -> InvariantStore {
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant("V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).")
                .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn superset_invariant_gives_partial_hit_for_wider_call() {
        let s = store_with_monotone_invariant();
        let mut cache = AnswerCache::new();
        cache.insert(lt_call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Wanted: select_lt(..., 99). Cached lt(10) ⊆ lt(99): partial.
        let hits = s.find_hits(&lt_call(99), &cache);
        assert_eq!(hits.len(), 1);
        assert!(matches!(&hits[0], InvariantHit::Partial { cached, .. } if *cached == lt_call(10)));
    }

    #[test]
    fn narrower_call_cannot_use_wider_cache_entry() {
        let s = store_with_monotone_invariant();
        let mut cache = AnswerCache::new();
        cache.insert(lt_call(99), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Wanted lt(10) ⊆ cached lt(99): superset direction, unusable.
        let hits = s.find_hits(&lt_call(10), &cache);
        assert!(hits.is_empty());
    }

    #[test]
    fn condition_violation_blocks_hit() {
        let s = store_with_monotone_invariant();
        let mut cache = AnswerCache::new();
        cache.insert(lt_call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Same value: V1 <= V2 holds with equality — hit expected for 10.
        // But the exact call is skipped by invariant scanning.
        assert!(s.find_hits(&lt_call(10), &cache).is_empty());
    }

    #[test]
    fn equality_invariant_full_hit() {
        // The paper's §4 range example: huge ranges equal the 142 range.
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let cached = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(142),
            ],
        );
        let mut cache = AnswerCache::new();
        cache.insert(cached.clone(), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let wanted = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(500),
            ],
        );
        let hits = s.find_hits(&wanted, &cache);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_equal());
        assert_eq!(hits[0].cached(), &cached);
    }

    #[test]
    fn equality_invariant_reverse_direction() {
        // Cache holds the *wide* call; the 142 call equals it.
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let wide = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(500),
            ],
        );
        let mut cache = AnswerCache::new();
        cache.insert(wide.clone(), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let narrow = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(142),
            ],
        );
        let hits = s.find_hits(&narrow, &cache);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_equal());
    }

    #[test]
    fn incomplete_equal_entry_degrades_to_partial() {
        let mut s = InvariantStore::new();
        s.add(parse_invariant("=> d:f(X) = d:g(X).").unwrap())
            .unwrap();
        let mut cache = AnswerCache::new();
        let g = GroundCall::new("d", "g", vec![Value::Int(5)]);
        cache.insert(g.clone(), vec![Value::Int(1)], false, SimInstant::EPOCH);
        let hits = s.find_hits(&GroundCall::new("d", "f", vec![Value::Int(5)]), &cache);
        assert_eq!(hits.len(), 1);
        assert!(!hits[0].is_equal());
    }

    #[test]
    fn equal_hits_sort_before_partial() {
        let mut s = InvariantStore::new();
        s.add(parse_invariant("=> d:f(X) = d:g(X).").unwrap())
            .unwrap();
        s.add(parse_invariant("X <= Y => d:f(Y) >= d:h(X).").unwrap())
            .unwrap();
        let mut cache = AnswerCache::new();
        cache.insert(
            GroundCall::new("d", "h", vec![Value::Int(1)]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        cache.insert(
            GroundCall::new("d", "g", vec![Value::Int(5)]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        let hits = s.find_hits(&GroundCall::new("d", "f", vec![Value::Int(5)]), &cache);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].is_equal());
        assert!(!hits[1].is_equal());
    }

    #[test]
    fn substitutes_ground_equality() {
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let wanted = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(3),
                Value::Int(4),
                Value::Int(999),
            ],
        );
        let subs = s.substitutes(&wanted);
        assert_eq!(subs.len(), 1);
        assert_eq!(
            subs[0],
            GroundCall::new(
                "spatial",
                "range",
                vec![
                    Value::str("points"),
                    Value::Int(3),
                    Value::Int(4),
                    Value::Int(142)
                ],
            )
        );
        // Below the threshold: no substitute.
        let small = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(3),
                Value::Int(4),
                Value::Int(100),
            ],
        );
        assert!(s.substitutes(&small).is_empty());
    }

    #[test]
    fn substitutes_skip_self_and_non_equality() {
        let mut s = store_with_monotone_invariant(); // superset inv only
        assert!(s.substitutes(&lt_call(5)).is_empty());
        s.add(parse_invariant("=> d:f(X) = d:f(X).").unwrap())
            .unwrap();
        // Identity equality maps the call to itself: filtered out.
        assert!(s
            .substitutes(&GroundCall::new("d", "f", vec![Value::Int(1)]))
            .is_empty());
    }

    #[test]
    fn invalid_invariant_rejected_on_add() {
        let mut s = InvariantStore::new();
        let bad = parse_invariant("W > 1 => d:f(X) = d:g(X).").unwrap();
        assert!(s.add(bad).is_err());
        assert!(s.is_empty());
    }
}
