//! Invariant matching against the cache (§4.1, the θ machinery).
//!
//! Given a concrete call `C` and an invariant `Cond ⇒ DC1 R DC2`, the
//! manager can use the invariant in *both* directions:
//!
//! * unify `C` with `DC1` (relation read as written), or
//! * unify `C` with `DC2` (relation flipped).
//!
//! After unifying with one side (substitution θ₁), the other side's
//! template is matched against the cache: any entry whose call unifies
//! (extending θ₁ to θ₂) and whose fully-instantiated condition holds is a
//! hit. The relation then says what the cached answers *are* for `C`:
//! identical (`=`), a subset (`⊇` toward the cached side), or a superset
//! (`⊆`, unusable for sound answers and therefore only counted).
//!
//! ## Indexing (DESIGN.md §11)
//!
//! Matching never iterates the whole cache. At [`InvariantStore::add`]
//! time each usable direction is bucketed by the `(domain, function)` of
//! its *own* side (the side the probe call unifies with) and classified
//! into a probe plan against the *other* side:
//!
//! * **Ground** — the other side has no free variables once θ₁ is known:
//!   one exact cache probe (the paper's `range(…, 142)` equality).
//! * **Monotone** — exactly one free variable at one argument position,
//!   constrained by at most one `<`/`≤`/`>`/`≥`/`=` condition: a range
//!   probe against the cache's ordered index for that position (posting
//!   list fallback when no index is registered).
//! * **Posting** — anything else: scan only the cached calls of the other
//!   side's `(domain, function)` posting list.
//!
//! [`InvariantStore::find_hits_naive`] / [`InvariantStore::substitutes_naive`]
//! retain the full-scan reference semantics; equivalence tests assert the
//! indexed paths return identical hit sets.

use crate::cache::AnswerCache;
use hermes_common::GroundCall;
use hermes_lang::{CallTemplate, InvRel, Invariant, Relop, Subst};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// One way the cache can serve a call through an invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantHit {
    /// A cached call with an answer set *equal* to the wanted call's.
    Equal {
        /// The cached call to read.
        cached: GroundCall,
        /// Index of the invariant that proved it.
        invariant: usize,
    },
    /// A cached call whose answers are a *subset* of the wanted call's —
    /// a fast partial answer (§4.1 step 3).
    Partial {
        /// The cached call to read.
        cached: GroundCall,
        /// Index of the invariant that proved it.
        invariant: usize,
    },
}

impl InvariantHit {
    /// The cached call this hit reads.
    pub fn cached(&self) -> &GroundCall {
        match self {
            InvariantHit::Equal { cached, .. } | InvariantHit::Partial { cached, .. } => cached,
        }
    }

    /// True for [`InvariantHit::Equal`].
    pub fn is_equal(&self) -> bool {
        matches!(self, InvariantHit::Equal { .. })
    }
}

/// A comparison a free variable's value range can be probed with (every
/// [`Relop`] except `!=`, whose complement is not contiguous).
#[derive(Clone, Copy, Debug)]
enum RangeOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
}

impl RangeOp {
    fn from_relop(op: Relop) -> Option<RangeOp> {
        match op {
            Relop::Lt => Some(RangeOp::Lt),
            Relop::Le => Some(RangeOp::Le),
            Relop::Gt => Some(RangeOp::Gt),
            Relop::Ge => Some(RangeOp::Ge),
            Relop::Eq => Some(RangeOp::Eq),
            Relop::Ne => None,
        }
    }
}

/// The single range condition of a monotone probe, normalized so it reads
/// `candidate-pivot op bound`.
#[derive(Clone, Copy, Debug)]
struct RangeCond {
    /// Index into the invariant's condition list.
    index: usize,
    /// Normalized comparison (pivot on the left).
    op: RangeOp,
    /// True when the bound expression is the condition's *lhs* (the bare
    /// free variable sat on the rhs and the comparison was flipped).
    bound_on_lhs: bool,
}

/// Probe plan for the free variable of a monotone direction.
#[derive(Clone, Debug)]
struct MonotonePlan {
    /// Argument position of the free variable in the other side's template.
    pos: usize,
    /// The range condition over that variable; `None` means unconstrained
    /// (the whole ordered group qualifies).
    cond: Option<RangeCond>,
}

/// How a direction probes the cache for candidates of its other side.
#[derive(Clone, Debug)]
enum ProbePlan {
    /// No free variables: the other side grounds to a single call.
    Ground,
    /// One free variable at one position: ordered-index range probe.
    Monotone(MonotonePlan),
    /// General shape: scan the `(domain, function)` posting list.
    Posting,
}

/// One usable direction of one invariant, bucketed under its own side's
/// `(domain, function)`. Directions whose effective relation is `⊆` are
/// never stored (unusable for sound answers).
#[derive(Clone, Debug)]
struct Direction {
    /// Index of the invariant in the store.
    inv: usize,
    /// True when the own (probe) side is the invariant's lhs.
    own_is_lhs: bool,
    /// Effective relation after any flip.
    rel: InvRel,
    /// How to find candidate cached calls for the other side.
    plan: ProbePlan,
}

impl Direction {
    /// `(own, other)` templates of this direction.
    fn sides<'a>(&self, inv: &'a Invariant) -> (&'a CallTemplate, &'a CallTemplate) {
        if self.own_is_lhs {
            (&inv.lhs, &inv.rhs)
        } else {
            (&inv.rhs, &inv.lhs)
        }
    }
}

/// The invariant store plus its matching algorithms.
#[derive(Clone, Debug, Default)]
pub struct InvariantStore {
    invariants: Vec<Invariant>,
    /// Usable directions bucketed by the own side's `(domain, function)`,
    /// in `(invariant index, lhs-first)` order within each bucket.
    directions: HashMap<Arc<str>, HashMap<Arc<str>, Vec<Direction>>>,
}

impl InvariantStore {
    /// An empty store.
    pub fn new() -> Self {
        InvariantStore::default()
    }

    /// Adds a validated invariant and returns its index. Both directions
    /// are classified and bucketed here, so later lookups probe only the
    /// directions whose own side matches the call's `(domain, function)`.
    pub fn add(&mut self, inv: Invariant) -> hermes_common::Result<usize> {
        hermes_lang::validate_invariant(&inv)?;
        let idx = self.invariants.len();
        for (own_is_lhs, own, other, rel) in [
            (true, &inv.lhs, &inv.rhs, inv.rel),
            (false, &inv.rhs, &inv.lhs, inv.rel.flipped()),
        ] {
            // ⊆ toward the cached side means the cached answers are a
            // superset of the wanted set — not soundly usable, never stored.
            if rel == InvRel::Subset {
                continue;
            }
            let plan = Self::classify(&inv, own, other);
            self.directions
                .entry(own.domain.clone())
                .or_default()
                .entry(own.function.clone())
                .or_default()
                .push(Direction {
                    inv: idx,
                    own_is_lhs,
                    rel,
                    plan,
                });
        }
        self.invariants.push(inv);
        Ok(idx)
    }

    /// The ordered-index registrations the cache needs for this store's
    /// monotone directions: `(domain, function, position)` of each other
    /// side probed by value range. [`crate::Cim::add_invariant`] forwards
    /// these to [`AnswerCache::register_ordered_index`].
    pub fn ordered_index_specs(&self) -> Vec<(Arc<str>, Arc<str>, usize)> {
        let mut specs = Vec::new();
        for by_fn in self.directions.values() {
            for dirs in by_fn.values() {
                for d in dirs {
                    if let ProbePlan::Monotone(plan) = &d.plan {
                        let (_, other) = d.sides(&self.invariants[d.inv]);
                        specs.push((other.domain.clone(), other.function.clone(), plan.pos));
                    }
                }
            }
        }
        specs
    }

    /// The stored invariants.
    pub fn all(&self) -> &[Invariant] {
        &self.invariants
    }

    /// Number of stored invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if no invariants are stored.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Finds every way the cache can serve `call` through an invariant.
    /// `Equal` hits sort before `Partial` hits; among equals, more recent
    /// cache entries first. Probes only the bucketed directions for the
    /// call's `(domain, function)` — never the whole cache.
    pub fn find_hits(&self, call: &GroundCall, cache: &AnswerCache) -> Vec<InvariantHit> {
        let mut hits = Vec::new();
        for d in self.directions_for(call) {
            let inv = &self.invariants[d.inv];
            let (own, other) = d.sides(inv);
            let Some(theta1) = Subst::new().match_call(own, call) else {
                continue;
            };
            match &d.plan {
                ProbePlan::Ground => {
                    self.probe_ground(inv, d, other, &theta1, cache, call, &mut hits)
                }
                ProbePlan::Monotone(plan) => {
                    self.probe_monotone(inv, d, plan, other, &theta1, cache, call, &mut hits)
                }
                ProbePlan::Posting => {
                    self.scan_postings(inv, d, other, &theta1, cache, call, &mut hits)
                }
            }
        }
        Self::sort_hits(&mut hits, cache);
        hits
    }

    /// The full-scan reference implementation of [`InvariantStore::find_hits`]:
    /// a *single* pass over the cache evaluates every applicable invariant
    /// direction per entry (equality and partial hits are collected
    /// together; the final sort orders them). Kept for the equivalence
    /// tests and as the executable specification of the indexed path.
    pub fn find_hits_naive(&self, call: &GroundCall, cache: &AnswerCache) -> Vec<InvariantHit> {
        // Unify the call with each usable direction once, up front.
        let mut dirs = Vec::new();
        for (idx, inv) in self.invariants.iter().enumerate() {
            for (own, other, rel) in [
                (&inv.lhs, &inv.rhs, inv.rel),
                (&inv.rhs, &inv.lhs, inv.rel.flipped()),
            ] {
                if rel == InvRel::Subset {
                    continue;
                }
                if let Some(theta1) = Subst::new().match_call(own, call) {
                    dirs.push((idx, inv, other, rel, theta1));
                }
            }
        }
        let mut hits = Vec::new();
        for (cached_call, entry) in cache.iter() {
            if cached_call == call {
                continue; // exact hits are handled before invariants
            }
            for (idx, inv, other, rel, theta1) in &dirs {
                let Some(theta2) = theta1.match_call(other, cached_call) else {
                    continue;
                };
                if !inv
                    .conditions
                    .iter()
                    .all(|c| theta2.eval_condition(c) == Some(true))
                {
                    continue;
                }
                Self::push_hit(*rel, entry.complete, cached_call, *idx, &mut hits);
            }
        }
        Self::sort_hits(&mut hits, cache);
        hits
    }

    /// Equality invariants whose *other* side becomes fully ground under
    /// the match — candidate substitute calls that could be executed
    /// instead of `call` (the paper's range-shrinking example). The
    /// returned calls are distinct from `call` itself.
    pub fn substitutes(&self, call: &GroundCall) -> Vec<GroundCall> {
        let mut out = Vec::new();
        for d in self.directions_for(call) {
            if d.rel != InvRel::Equal {
                continue;
            }
            let inv = &self.invariants[d.inv];
            let (own, other) = d.sides(inv);
            let Some(theta) = Subst::new().match_call(own, call) else {
                continue;
            };
            // All conditions must be decidable and true under θ alone.
            if !inv
                .conditions
                .iter()
                .all(|c| theta.eval_condition(c) == Some(true))
            {
                continue;
            }
            if let Some(sub) = theta.ground_call(other) {
                if &sub != call && !out.contains(&sub) {
                    out.push(sub);
                }
            }
        }
        out
    }

    /// The all-invariants reference implementation of
    /// [`InvariantStore::substitutes`], kept for the equivalence tests.
    pub fn substitutes_naive(&self, call: &GroundCall) -> Vec<GroundCall> {
        let mut out = Vec::new();
        for inv in &self.invariants {
            if inv.rel != InvRel::Equal {
                continue;
            }
            for (own, other) in [(&inv.lhs, &inv.rhs), (&inv.rhs, &inv.lhs)] {
                let Some(theta) = Subst::new().match_call(own, call) else {
                    continue;
                };
                if !inv
                    .conditions
                    .iter()
                    .all(|c| theta.eval_condition(c) == Some(true))
                {
                    continue;
                }
                if let Some(sub) = theta.ground_call(other) {
                    if &sub != call && !out.contains(&sub) {
                        out.push(sub);
                    }
                }
            }
        }
        out
    }

    /// Directions bucketed under the call's `(domain, function)`.
    fn directions_for(&self, call: &GroundCall) -> impl Iterator<Item = &Direction> {
        self.directions
            .get(call.domain.as_ref())
            .and_then(|m| m.get(call.function.as_ref()))
            .into_iter()
            .flatten()
    }

    /// Classifies how a direction's other side can be probed.
    fn classify(inv: &Invariant, own: &CallTemplate, other: &CallTemplate) -> ProbePlan {
        let own_vars = own.variables();
        let other_vars = other.variables();
        let free: Vec<Arc<str>> = other_vars.difference(&own_vars).cloned().collect();
        if free.is_empty() {
            return ProbePlan::Ground;
        }
        if free.len() > 1 {
            return ProbePlan::Posting;
        }
        let var = &free[0];
        let positions: Vec<usize> = other
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t.as_var() == Some(var)).then_some(i))
            .collect();
        // A repeated free variable cannot be probed through one position.
        if positions.len() != 1 {
            return ProbePlan::Posting;
        }
        let pos = positions[0];
        let mut cond: Option<RangeCond> = None;
        for (ci, c) in inv.conditions.iter().enumerate() {
            if !c.variables().contains(var) {
                continue;
            }
            if cond.is_some() {
                // Two conditions over the free variable: not one range.
                return ProbePlan::Posting;
            }
            let lhs_var = c.lhs.var_name() == Some(var);
            let rhs_var = c.rhs.var_name() == Some(var);
            let (raw_op, bound_on_lhs, var_side) = match (lhs_var, rhs_var) {
                (true, false) => (c.op, false, &c.lhs),
                (false, true) => (c.op.flipped(), true, &c.rhs),
                // The variable on both sides of one comparison.
                _ => return ProbePlan::Posting,
            };
            // An attribute path on the variable breaks monotonicity in the
            // pivot value's total order.
            if !var_side.path.is_empty() {
                return ProbePlan::Posting;
            }
            let Some(op) = RangeOp::from_relop(raw_op) else {
                return ProbePlan::Posting;
            };
            cond = Some(RangeCond {
                index: ci,
                op,
                bound_on_lhs,
            });
        }
        ProbePlan::Monotone(MonotonePlan { pos, cond })
    }

    /// Ground plan: the other side instantiates to exactly one call.
    #[allow(clippy::too_many_arguments)]
    fn probe_ground(
        &self,
        inv: &Invariant,
        d: &Direction,
        other: &CallTemplate,
        theta1: &Subst,
        cache: &AnswerCache,
        call: &GroundCall,
        hits: &mut Vec<InvariantHit>,
    ) {
        // θ₂ = θ₁ here (matching a fully-determined template binds nothing
        // new), so the conditions are decidable already.
        if !inv
            .conditions
            .iter()
            .all(|c| theta1.eval_condition(c) == Some(true))
        {
            return;
        }
        let Some(target) = theta1.ground_call(other) else {
            return;
        };
        if &target == call {
            return; // exact hits are handled before invariants
        }
        if let Some(entry) = cache.peek(&target) {
            Self::push_hit(d.rel, entry.complete, &target, d.inv, hits);
        }
    }

    /// Monotone plan: range-probe the ordered index for the free variable's
    /// position; falls back to the posting list when no index is registered.
    #[allow(clippy::too_many_arguments)]
    fn probe_monotone(
        &self,
        inv: &Invariant,
        d: &Direction,
        plan: &MonotonePlan,
        other: &CallTemplate,
        theta1: &Subst,
        cache: &AnswerCache,
        call: &GroundCall,
        hits: &mut Vec<InvariantHit>,
    ) {
        // Ground every non-pivot position of the other template.
        let mut rest = Vec::with_capacity(other.args.len().saturating_sub(1));
        for (i, t) in other.args.iter().enumerate() {
            if i == plan.pos {
                continue;
            }
            match theta1.term(t) {
                Some(v) => rest.push(v),
                // Defensive: a non-pivot position failed to ground (should
                // be impossible for a classified monotone direction).
                None => {
                    self.scan_postings(inv, d, other, theta1, cache, call, hits);
                    return;
                }
            }
        }
        // Conditions not involving the pivot must hold under θ₁ alone; they
        // are identical for every candidate.
        for (ci, c) in inv.conditions.iter().enumerate() {
            if plan.cond.is_some_and(|rc| rc.index == ci) {
                continue;
            }
            if theta1.eval_condition(c) != Some(true) {
                return;
            }
        }
        // Resolve the range bound. An unresolvable bound means the range
        // condition is undecidable for every candidate: no hits.
        let range = match &plan.cond {
            None => None,
            Some(rc) => {
                let c = &inv.conditions[rc.index];
                let side = if rc.bound_on_lhs { &c.lhs } else { &c.rhs };
                match theta1.path_term(side) {
                    Some(bound) => Some((rc.op, bound)),
                    None => return,
                }
            }
        };
        match cache.ordered_group(&other.domain, &other.function, plan.pos, &rest) {
            // No ordered index registered at this position: posting scan.
            None => self.scan_postings(inv, d, other, theta1, cache, call, hits),
            Some(None) => {}
            Some(Some(group)) => {
                let candidates: Box<dyn Iterator<Item = &GroundCall>> = match &range {
                    None => Box::new(group.values()),
                    Some((op, b)) => match op {
                        RangeOp::Eq => Box::new(group.get(b).into_iter()),
                        RangeOp::Lt => Box::new(
                            group
                                .range((Bound::Unbounded, Bound::Excluded(b.clone())))
                                .map(|(_, c)| c),
                        ),
                        RangeOp::Le => Box::new(
                            group
                                .range((Bound::Unbounded, Bound::Included(b.clone())))
                                .map(|(_, c)| c),
                        ),
                        RangeOp::Gt => Box::new(
                            group
                                .range((Bound::Excluded(b.clone()), Bound::Unbounded))
                                .map(|(_, c)| c),
                        ),
                        RangeOp::Ge => Box::new(
                            group
                                .range((Bound::Included(b.clone()), Bound::Unbounded))
                                .map(|(_, c)| c),
                        ),
                    },
                };
                for cached_call in candidates {
                    if cached_call == call {
                        continue;
                    }
                    if let Some(entry) = cache.peek(cached_call) {
                        Self::push_hit(d.rel, entry.complete, cached_call, d.inv, hits);
                    }
                }
            }
        }
    }

    /// Posting plan (and fallback): scan only the cached calls of the other
    /// side's `(domain, function)`.
    #[allow(clippy::too_many_arguments)]
    fn scan_postings(
        &self,
        inv: &Invariant,
        d: &Direction,
        other: &CallTemplate,
        theta1: &Subst,
        cache: &AnswerCache,
        call: &GroundCall,
        hits: &mut Vec<InvariantHit>,
    ) {
        for cached_call in cache.calls_for(&other.domain, &other.function) {
            if cached_call == call {
                continue;
            }
            let Some(theta2) = theta1.match_call(other, cached_call) else {
                continue;
            };
            if !inv
                .conditions
                .iter()
                .all(|c| theta2.eval_condition(c) == Some(true))
            {
                continue;
            }
            if let Some(entry) = cache.peek(cached_call) {
                Self::push_hit(d.rel, entry.complete, cached_call, d.inv, hits);
            }
        }
    }

    /// Builds the hit for an effective relation (only complete entries can
    /// prove `Equal`; incomplete ones still give a sound partial answer)
    /// and appends it if new.
    fn push_hit(
        rel: InvRel,
        complete: bool,
        cached: &GroundCall,
        invariant: usize,
        hits: &mut Vec<InvariantHit>,
    ) {
        let hit = match rel {
            InvRel::Equal if complete => InvariantHit::Equal {
                cached: cached.clone(),
                invariant,
            },
            // An equality proof over an incomplete entry still gives a
            // sound subset of the answers.
            InvRel::Equal | InvRel::Superset => InvariantHit::Partial {
                cached: cached.clone(),
                invariant,
            },
            InvRel::Subset => return,
        };
        if !hits.contains(&hit) {
            hits.push(hit);
        }
    }

    /// Equal hits first; break ties by freshness.
    fn sort_hits(hits: &mut [InvariantHit], cache: &AnswerCache) {
        hits.sort_by_key(|h| {
            let fresh = cache
                .peek(h.cached())
                .map(|e| u64::MAX - e.inserted_at.as_micros())
                .unwrap_or(u64::MAX);
            (!h.is_equal() as u8, fresh)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{SimInstant, Value};
    use hermes_lang::parse_invariant;

    fn lt_call(v: i64) -> GroundCall {
        GroundCall::new(
            "rel",
            "select_lt",
            vec![Value::str("inv"), Value::str("qty"), Value::Int(v)],
        )
    }

    fn store_with_monotone_invariant() -> InvariantStore {
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant("V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).")
                .unwrap(),
        )
        .unwrap();
        s
    }

    /// Registers the store's ordered indexes on a cache (what
    /// `Cim::add_invariant` does), so tests exercise the indexed path.
    fn indexed_cache(s: &InvariantStore) -> AnswerCache {
        let mut cache = AnswerCache::new();
        for (d, f, pos) in s.ordered_index_specs() {
            cache.register_ordered_index(d, f, pos);
        }
        cache
    }

    #[test]
    fn superset_invariant_gives_partial_hit_for_wider_call() {
        let s = store_with_monotone_invariant();
        let mut cache = indexed_cache(&s);
        cache.insert(lt_call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Wanted: select_lt(..., 99). Cached lt(10) ⊆ lt(99): partial.
        let hits = s.find_hits(&lt_call(99), &cache);
        assert_eq!(hits.len(), 1);
        assert!(matches!(&hits[0], InvariantHit::Partial { cached, .. } if *cached == lt_call(10)));
        assert_eq!(hits, s.find_hits_naive(&lt_call(99), &cache));
    }

    #[test]
    fn narrower_call_cannot_use_wider_cache_entry() {
        let s = store_with_monotone_invariant();
        let mut cache = indexed_cache(&s);
        cache.insert(lt_call(99), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Wanted lt(10) ⊆ cached lt(99): superset direction, unusable.
        let hits = s.find_hits(&lt_call(10), &cache);
        assert!(hits.is_empty());
        assert!(s.find_hits_naive(&lt_call(10), &cache).is_empty());
    }

    #[test]
    fn condition_violation_blocks_hit() {
        let s = store_with_monotone_invariant();
        let mut cache = indexed_cache(&s);
        cache.insert(lt_call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        // Same value: V1 <= V2 holds with equality — hit expected for 10.
        // But the exact call is skipped by invariant scanning.
        assert!(s.find_hits(&lt_call(10), &cache).is_empty());
    }

    #[test]
    fn monotone_probe_without_registered_index_falls_back() {
        // A plain cache (no ordered index): the posting list answers.
        let s = store_with_monotone_invariant();
        let mut cache = AnswerCache::new();
        cache.insert(lt_call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        cache.insert(lt_call(50), vec![Value::Int(2)], true, SimInstant::EPOCH);
        let mut hits = s.find_hits(&lt_call(99), &cache);
        assert_eq!(hits.len(), 2);
        // Both hits tie on the sort key (same kind, same insertion time),
        // so compare as sets.
        let key = |h: &InvariantHit| (h.is_equal(), h.cached().clone());
        let mut naive = s.find_hits_naive(&lt_call(99), &cache);
        hits.sort_by_key(key);
        naive.sort_by_key(key);
        assert_eq!(hits, naive);
    }

    #[test]
    fn equality_invariant_full_hit() {
        // The paper's §4 range example: huge ranges equal the 142 range.
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let cached = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(142),
            ],
        );
        let mut cache = AnswerCache::new();
        cache.insert(cached.clone(), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let wanted = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(500),
            ],
        );
        let hits = s.find_hits(&wanted, &cache);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_equal());
        assert_eq!(hits[0].cached(), &cached);
    }

    #[test]
    fn equality_invariant_reverse_direction() {
        // Cache holds the *wide* call; the 142 call equals it.
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let wide = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(500),
            ],
        );
        let mut cache = indexed_cache(&s);
        cache.insert(wide.clone(), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let narrow = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(142),
            ],
        );
        let hits = s.find_hits(&narrow, &cache);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_equal());
        assert_eq!(hits, s.find_hits_naive(&narrow, &cache));
    }

    #[test]
    fn incomplete_equal_entry_degrades_to_partial() {
        let mut s = InvariantStore::new();
        s.add(parse_invariant("=> d:f(X) = d:g(X).").unwrap())
            .unwrap();
        let mut cache = AnswerCache::new();
        let g = GroundCall::new("d", "g", vec![Value::Int(5)]);
        cache.insert(g.clone(), vec![Value::Int(1)], false, SimInstant::EPOCH);
        let hits = s.find_hits(&GroundCall::new("d", "f", vec![Value::Int(5)]), &cache);
        assert_eq!(hits.len(), 1);
        assert!(!hits[0].is_equal());
    }

    #[test]
    fn equal_hits_sort_before_partial() {
        let mut s = InvariantStore::new();
        s.add(parse_invariant("=> d:f(X) = d:g(X).").unwrap())
            .unwrap();
        s.add(parse_invariant("X <= Y => d:f(Y) >= d:h(X).").unwrap())
            .unwrap();
        let mut cache = indexed_cache(&s);
        cache.insert(
            GroundCall::new("d", "h", vec![Value::Int(1)]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        cache.insert(
            GroundCall::new("d", "g", vec![Value::Int(5)]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        let hits = s.find_hits(&GroundCall::new("d", "f", vec![Value::Int(5)]), &cache);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].is_equal());
        assert!(!hits[1].is_equal());
    }

    #[test]
    fn substitutes_ground_equality() {
        let mut s = InvariantStore::new();
        s.add(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let wanted = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(3),
                Value::Int(4),
                Value::Int(999),
            ],
        );
        let subs = s.substitutes(&wanted);
        assert_eq!(subs.len(), 1);
        assert_eq!(
            subs[0],
            GroundCall::new(
                "spatial",
                "range",
                vec![
                    Value::str("points"),
                    Value::Int(3),
                    Value::Int(4),
                    Value::Int(142)
                ],
            )
        );
        assert_eq!(subs, s.substitutes_naive(&wanted));
        // Below the threshold: no substitute.
        let small = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(3),
                Value::Int(4),
                Value::Int(100),
            ],
        );
        assert!(s.substitutes(&small).is_empty());
    }

    #[test]
    fn substitutes_skip_self_and_non_equality() {
        let mut s = store_with_monotone_invariant(); // superset inv only
        assert!(s.substitutes(&lt_call(5)).is_empty());
        s.add(parse_invariant("=> d:f(X) = d:f(X).").unwrap())
            .unwrap();
        // Identity equality maps the call to itself: filtered out.
        assert!(s
            .substitutes(&GroundCall::new("d", "f", vec![Value::Int(1)]))
            .is_empty());
    }

    #[test]
    fn invalid_invariant_rejected_on_add() {
        let mut s = InvariantStore::new();
        let bad = parse_invariant("W > 1 => d:f(X) = d:g(X).").unwrap();
        assert!(s.add(bad).is_err());
        assert!(s.is_empty());
        assert!(s.ordered_index_specs().is_empty());
    }

    #[test]
    fn monotone_index_probe_matches_naive_on_mixed_groups() {
        // Two (T, A) groups with several thresholds each, plus an
        // unrelated function that must never surface.
        let s = store_with_monotone_invariant();
        let mut cache = indexed_cache(&s);
        let call = |t: &str, v: i64| {
            GroundCall::new(
                "rel",
                "select_lt",
                vec![Value::str(t), Value::str("qty"), Value::Int(v)],
            )
        };
        for (t, v, complete) in [
            ("inv", 5, true),
            ("inv", 20, false),
            ("inv", 80, true),
            ("other", 10, true),
            ("other", 90, true),
        ] {
            cache.insert(call(t, v), vec![Value::Int(v)], complete, SimInstant::EPOCH);
        }
        cache.insert(
            GroundCall::new("rel", "noise", vec![Value::Int(1)]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        for probe in [
            call("inv", 50),
            call("inv", 5),
            call("inv", 200),
            call("other", 10),
            call("missing", 7),
        ] {
            let mut indexed = s.find_hits(&probe, &cache);
            let mut naive = s.find_hits_naive(&probe, &cache);
            // Tie order among equal sort keys is representation-dependent;
            // compare as sets.
            let key = |h: &InvariantHit| (h.is_equal(), h.cached().clone());
            indexed.sort_by_key(key);
            naive.sort_by_key(key);
            assert_eq!(indexed, naive, "probe {probe}");
        }
    }
}
