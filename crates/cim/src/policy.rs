//! When to route a call through CIM.
//!
//! §4.1: "The decision to send all calls for a certain domain or some
//! specific function calls can be made prior to query execution." The
//! policy maps `domain` / `domain:function` to a routing decision; the rule
//! rewriter consults it when deciding whether to emit a CIM-routed plan
//! variant, and the executor consults it at run time for calls the
//! rewriter left direct.

use std::collections::BTreeMap;

/// Whether a call should go through CIM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingDecision {
    /// Look in the cache (and invariants) first; fall back to the source.
    UseCim,
    /// Always call the source directly.
    Direct,
}

/// A per-domain / per-function routing policy with a default.
#[derive(Clone, Debug)]
pub struct CimPolicy {
    default: RoutingDecision,
    per_domain: BTreeMap<String, RoutingDecision>,
    per_function: BTreeMap<(String, String), RoutingDecision>,
}

impl CimPolicy {
    /// Routes everything through CIM (the paper's experimental default for
    /// remote sources).
    pub fn cache_everything() -> Self {
        CimPolicy {
            default: RoutingDecision::UseCim,
            per_domain: BTreeMap::new(),
            per_function: BTreeMap::new(),
        }
    }

    /// Never uses CIM (the "no cache" baseline of Figure 5).
    pub fn never() -> Self {
        CimPolicy {
            default: RoutingDecision::Direct,
            per_domain: BTreeMap::new(),
            per_function: BTreeMap::new(),
        }
    }

    /// Overrides the decision for a whole domain.
    pub fn set_domain(&mut self, domain: impl Into<String>, decision: RoutingDecision) {
        self.per_domain.insert(domain.into(), decision);
    }

    /// Overrides the decision for one function of a domain (wins over the
    /// domain-level override).
    pub fn set_function(
        &mut self,
        domain: impl Into<String>,
        function: impl Into<String>,
        decision: RoutingDecision,
    ) {
        self.per_function
            .insert((domain.into(), function.into()), decision);
    }

    /// The decision for `domain:function`.
    pub fn decide(&self, domain: &str, function: &str) -> RoutingDecision {
        if let Some(d) = self
            .per_function
            .get(&(domain.to_string(), function.to_string()))
        {
            return *d;
        }
        if let Some(d) = self.per_domain.get(domain) {
            return *d;
        }
        self.default
    }
}

impl Default for CimPolicy {
    fn default() -> Self {
        CimPolicy::cache_everything()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies() {
        assert_eq!(
            CimPolicy::cache_everything().decide("video", "video_size"),
            RoutingDecision::UseCim
        );
        assert_eq!(
            CimPolicy::never().decide("video", "video_size"),
            RoutingDecision::Direct
        );
    }

    #[test]
    fn domain_override() {
        let mut p = CimPolicy::cache_everything();
        p.set_domain("localdb", RoutingDecision::Direct);
        assert_eq!(p.decide("localdb", "all"), RoutingDecision::Direct);
        assert_eq!(p.decide("video", "all"), RoutingDecision::UseCim);
    }

    #[test]
    fn function_override_wins_over_domain() {
        let mut p = CimPolicy::never();
        p.set_domain("video", RoutingDecision::Direct);
        p.set_function("video", "frames_to_objects", RoutingDecision::UseCim);
        assert_eq!(
            p.decide("video", "frames_to_objects"),
            RoutingDecision::UseCim
        );
        assert_eq!(p.decide("video", "video_size"), RoutingDecision::Direct);
    }
}
