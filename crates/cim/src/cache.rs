//! The answer cache: ground call → answer set, with LRU eviction under an
//! optional byte budget.
//!
//! Beyond the entry map, the cache maintains two index structures that the
//! invariant matcher probes instead of iterating every entry (DESIGN.md §11):
//!
//! * **posting lists** — per `(domain, function)`, the set of cached calls,
//!   so an invariant direction only visits entries its template can unify
//!   with;
//! * **ordered indexes** — per registered `(domain, function, position)`,
//!   cached calls grouped by their remaining arguments and ordered by the
//!   value at `position`, so monotone (`<`/`≤`-style) invariants probe a
//!   contiguous value range instead of a list.
//!
//! **Coherence invariant**: every path that adds or removes an entry goes
//! through [`AnswerCache::attach`] / [`AnswerCache::remove_entry`], so the
//! posting lists and ordered indexes always describe exactly the keys of
//! the entry map — eviction, replacement, invalidation, and expiry can
//! never leave a dangling index pointer.
//!
//! Answer sets are `Arc<[Value]>`: a hit hands out a reference bump, not a
//! deep copy. [`CacheStats::bytes_shared`] / [`CacheStats::bytes_copied`]
//! track how much answer data moved zero-copy vs. had to be materialized.

use hermes_common::{GroundCall, SimInstant, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// One cached answer set.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The answers, in source order (shared; clone is a reference bump).
    pub answers: Arc<[Value]>,
    /// Wire size of the answers.
    pub bytes: usize,
    /// Virtual time the entry was stored.
    pub inserted_at: SimInstant,
    /// True if the full answer set was fetched (an interactive-mode stop
    /// can cache a prefix; incomplete entries can only serve partial hits).
    pub complete: bool,
    /// Number of lookups served by this entry.
    pub hits: u64,
    /// LRU clock value of the most recent touch.
    last_used: u64,
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Exact-lookup hits.
    pub hits: u64,
    /// Exact-lookup misses.
    pub misses: u64,
    /// Answer bytes that moved by sharing an existing allocation (an
    /// `Arc` bump): hits served zero-copy, plus stores whose answer set
    /// was already shared with the caller.
    pub bytes_shared: u64,
    /// Answer bytes materialized into a fresh allocation: stores where the
    /// caller handed an owned `Vec` that had to be converted.
    pub bytes_copied: u64,
}

/// Cached calls of one `(domain, function)` grouped by every argument
/// except the pivot position, ordered by the pivot value. `(rest, pivot)`
/// determines the call, so each group maps a pivot value to one call.
#[derive(Clone, Debug, Default)]
struct OrderedIndex {
    groups: HashMap<Vec<Value>, BTreeMap<Value, GroundCall>>,
}

impl OrderedIndex {
    fn key_of(call: &GroundCall, pos: usize) -> Option<(Vec<Value>, Value)> {
        if pos >= call.args.len() {
            return None;
        }
        let rest: Vec<Value> = call
            .args
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, v)| v.clone())
            .collect();
        Some((rest, call.args[pos].clone()))
    }

    fn insert(&mut self, call: &GroundCall, pos: usize) {
        if let Some((rest, pivot)) = Self::key_of(call, pos) {
            self.groups
                .entry(rest)
                .or_default()
                .insert(pivot, call.clone());
        }
    }

    fn remove(&mut self, call: &GroundCall, pos: usize) {
        if let Some((rest, pivot)) = Self::key_of(call, pos) {
            if let Some(group) = self.groups.get_mut(&rest) {
                group.remove(&pivot);
                if group.is_empty() {
                    self.groups.remove(&rest);
                }
            }
        }
    }
}

/// Nested per-domain / per-function map, probe-able by `&str` without
/// allocating a lookup key.
type ByFunction<T> = HashMap<Arc<str>, HashMap<Arc<str>, T>>;

fn by_function_get<'a, T>(map: &'a ByFunction<T>, domain: &str, function: &str) -> Option<&'a T> {
    map.get(domain)?.get(function)
}

/// The cache proper. Hits are served by sharing the stored `Arc<[Value]>`;
/// the mediator never deep-copies an answer set on the hit path.
#[derive(Clone, Debug, Default)]
pub struct AnswerCache {
    entries: HashMap<GroundCall, CacheEntry>,
    /// Per-`(domain, function)` posting lists over the entry keys.
    postings: ByFunction<HashSet<GroundCall>>,
    /// Registered ordered indexes: `(domain, function)` → pivot position →
    /// index. Registration survives `clear`; contents track `entries`.
    ordered: ByFunction<HashMap<usize, OrderedIndex>>,
    budget_bytes: Option<usize>,
    current_bytes: usize,
    clock: u64,
    stats: CacheStats,
}

impl AnswerCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        AnswerCache::default()
    }

    /// A cache that evicts least-recently-used entries beyond `bytes`.
    pub fn with_budget(bytes: usize) -> Self {
        AnswerCache {
            budget_bytes: Some(bytes),
            ..AnswerCache::default()
        }
    }

    /// Number of cached calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of cached answers.
    pub fn bytes(&self) -> usize {
        self.current_bytes
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Registers an ordered index over the value at argument `pos` of
    /// `domain:function` calls (idempotent). The invariant matcher
    /// registers one per monotone invariant side so its range probes are
    /// index lookups; unregistered functions fall back to posting lists.
    pub fn register_ordered_index(
        &mut self,
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        pos: usize,
    ) {
        let domain = domain.into();
        let function = function.into();
        let by_pos = self
            .ordered
            .entry(domain.clone())
            .or_default()
            .entry(function.clone())
            .or_default();
        if by_pos.contains_key(&pos) {
            return;
        }
        let mut index = OrderedIndex::default();
        for call in self.entries.keys() {
            if call.domain == domain && call.function == function {
                index.insert(call, pos);
            }
        }
        by_pos.insert(pos, index);
    }

    /// The cached calls of one `(domain, function)` — the posting list the
    /// invariant matcher scans instead of the whole cache.
    pub fn calls_for(&self, domain: &str, function: &str) -> impl Iterator<Item = &GroundCall> {
        by_function_get(&self.postings, domain, function)
            .into_iter()
            .flatten()
    }

    /// The ordered group for `(domain, function, pos)` whose non-pivot
    /// arguments equal `rest`: pivot value → cached call, ordered by the
    /// total order of [`Value`]. Outer `None` when no index is registered
    /// at `pos` (caller must fall back to [`AnswerCache::calls_for`]);
    /// inner `None` when the index exists but holds no such group.
    pub fn ordered_group(
        &self,
        domain: &str,
        function: &str,
        pos: usize,
        rest: &[Value],
    ) -> Option<Option<&BTreeMap<Value, GroundCall>>> {
        let by_pos = by_function_get(&self.ordered, domain, function)?;
        let index = by_pos.get(&pos)?;
        Some(index.groups.get(rest))
    }

    /// Stores an answer set. Replacing an entry refreshes its LRU position.
    pub fn insert(
        &mut self,
        call: GroundCall,
        answers: impl Into<Arc<[Value]>>,
        complete: bool,
        now: SimInstant,
    ) {
        let answers = answers.into();
        let bytes: usize = answers.iter().map(Value::size_bytes).sum();
        // A strong count above one means the caller still shares the
        // allocation (zero-copy handoff); exactly one means the answers
        // were materialized for this store.
        if Arc::strong_count(&answers) > 1 {
            self.stats.bytes_shared += bytes as u64;
        } else {
            self.stats.bytes_copied += bytes as u64;
        }
        self.clock += 1;
        self.remove_entry(&call);
        self.current_bytes += bytes;
        self.attach(&call);
        self.entries.insert(
            call,
            CacheEntry {
                answers,
                bytes,
                inserted_at: now,
                complete,
                hits: 0,
                last_used: self.clock,
            },
        );
        self.stats.inserts += 1;
        self.enforce_budget();
    }

    /// Adds `call` to the posting list and any registered ordered indexes.
    /// Paired with [`AnswerCache::remove_entry`]; see the module docs for
    /// the coherence invariant.
    fn attach(&mut self, call: &GroundCall) {
        self.postings
            .entry(call.domain.clone())
            .or_default()
            .entry(call.function.clone())
            .or_default()
            .insert(call.clone());
        if let Some(by_fn) = self.ordered.get_mut(call.domain.as_ref()) {
            if let Some(by_pos) = by_fn.get_mut(call.function.as_ref()) {
                for (pos, index) in by_pos.iter_mut() {
                    index.insert(call, *pos);
                }
            }
        }
    }

    /// Removes an entry and detaches it from every index structure. The
    /// single removal path: eviction, replacement, invalidation, expiry,
    /// and `clear` all go through here.
    fn remove_entry(&mut self, call: &GroundCall) -> Option<CacheEntry> {
        let entry = self.entries.remove(call)?;
        self.current_bytes -= entry.bytes;
        if let Some(by_fn) = self.postings.get_mut(call.domain.as_ref()) {
            if let Some(set) = by_fn.get_mut(call.function.as_ref()) {
                set.remove(call);
                if set.is_empty() {
                    by_fn.remove(call.function.as_ref());
                }
            }
        }
        if let Some(by_fn) = self.ordered.get_mut(call.domain.as_ref()) {
            if let Some(by_pos) = by_fn.get_mut(call.function.as_ref()) {
                for (pos, index) in by_pos.iter_mut() {
                    index.remove(call, *pos);
                }
            }
        }
        Some(entry)
    }

    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while self.current_bytes > budget && self.entries.len() > 1 {
            // Evict the least-recently-used entry (but never the one just
            // inserted, which is the most recent by construction).
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if self.remove_entry(&victim).is_some() {
                self.stats.evictions += 1;
            }
        }
    }

    /// Exact lookup; touches the entry's LRU position and hit counter.
    pub fn get(&mut self, call: &GroundCall) -> Option<&CacheEntry> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(call) {
            Some(e) => {
                e.last_used = clock;
                e.hits += 1;
                self.stats.hits += 1;
                self.stats.bytes_shared += e.bytes as u64;
                Some(&*e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Exact lookup without touching LRU/counters (used by invariant scans
    /// and diagnostics).
    pub fn peek(&self, call: &GroundCall) -> Option<&CacheEntry> {
        self.entries.get(call)
    }

    /// True if the call is cached with a complete answer set.
    pub fn contains_complete(&self, call: &GroundCall) -> bool {
        self.entries.get(call).is_some_and(|e| e.complete)
    }

    /// Iterates all entries (diagnostics, persistence, and the naive
    /// reference scan).
    pub fn iter(&self) -> impl Iterator<Item = (&GroundCall, &CacheEntry)> {
        self.entries.iter()
    }

    /// Drops every entry for a domain (invalidation after source update).
    /// Victims come from the posting lists, so the cost is proportional to
    /// the domain's entries, not the whole cache.
    pub fn invalidate_domain(&mut self, domain: &str) -> usize {
        let victims: Vec<GroundCall> = self
            .postings
            .get(domain)
            .map(|by_fn| by_fn.values().flatten().cloned().collect())
            .unwrap_or_default();
        for v in &victims {
            self.remove_entry(v);
        }
        victims.len()
    }

    /// Replaces the byte budget (`None` removes it), evicting immediately
    /// if the new budget is already overflowed.
    pub fn set_budget(&mut self, bytes: Option<usize>) {
        self.budget_bytes = bytes;
        self.enforce_budget();
    }

    /// Drops every entry for one `(domain, function)` — the precise
    /// invalidation a single-source answer change calls for. Victims come
    /// from the function's posting list, so the cost is proportional to
    /// that function's entries.
    pub fn invalidate_function(&mut self, domain: &str, function: &str) -> usize {
        let victims: Vec<GroundCall> = by_function_get(&self.postings, domain, function)
            .map(|list| list.iter().cloned().collect())
            .unwrap_or_default();
        for v in &victims {
            self.remove_entry(v);
        }
        victims.len()
    }

    /// Drops entries older than `max_age` relative to `now`.
    pub fn expire(&mut self, now: SimInstant, max_age: hermes_common::SimDuration) -> usize {
        let victims: Vec<GroundCall> = self
            .entries
            .iter()
            .filter(|(_, e)| now.duration_since(e.inserted_at) > max_age)
            .map(|(k, _)| k.clone())
            .collect();
        for v in &victims {
            self.remove_entry(v);
        }
        victims.len()
    }

    /// Empties the cache, keeping the stats and registered ordered-index
    /// positions (their contents are cleared with the entries).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.postings.clear();
        for by_fn in self.ordered.values_mut() {
            for by_pos in by_fn.values_mut() {
                for index in by_pos.values_mut() {
                    index.groups.clear();
                }
            }
        }
        self.current_bytes = 0;
    }

    /// Zeroes the cumulative counters without touching entries or indexes.
    /// Shard facades use this when forking a template cache so per-shard
    /// counters start from zero.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::SimDuration;

    fn call(i: i64) -> GroundCall {
        GroundCall::new("d", "f", vec![Value::Int(i)])
    }

    fn big_answers(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| Value::str(format!("answer_{i:04}")))
            .collect()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = AnswerCache::new();
        c.insert(call(1), vec![Value::Int(10)], true, SimInstant::EPOCH);
        let e = c.get(&call(1)).unwrap();
        assert_eq!(&e.answers[..], &[Value::Int(10)]);
        assert!(e.complete);
        assert_eq!(e.hits, 1);
        assert!(c.get(&call(2)).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn reinsert_replaces_and_tracks_bytes() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(10), true, SimInstant::EPOCH);
        let b1 = c.bytes();
        c.insert(call(1), big_answers(2), true, SimInstant::EPOCH);
        assert!(c.bytes() < b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let entry_bytes = big_answers(5).iter().map(Value::size_bytes).sum::<usize>();
        let mut c = AnswerCache::with_budget(entry_bytes * 2);
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        c.insert(call(2), big_answers(5), true, SimInstant::EPOCH);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&call(1));
        c.insert(call(3), big_answers(5), true, SimInstant::EPOCH);
        assert!(c.peek(&call(1)).is_some());
        assert!(c.peek(&call(2)).is_none(), "LRU entry should be evicted");
        assert!(c.peek(&call(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= entry_bytes * 2);
    }

    #[test]
    fn newest_entry_never_evicted() {
        // Budget smaller than a single entry: the newest stays anyway.
        let mut c = AnswerCache::with_budget(1);
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn incomplete_entries_flagged() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(3), false, SimInstant::EPOCH);
        assert!(!c.contains_complete(&call(1)));
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        assert!(c.contains_complete(&call(1)));
    }

    #[test]
    fn invalidate_domain_removes_only_that_domain() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(1), true, SimInstant::EPOCH);
        c.insert(
            GroundCall::new("other", "f", vec![]),
            big_answers(1),
            true,
            SimInstant::EPOCH,
        );
        assert_eq!(c.invalidate_domain("d"), 1);
        assert_eq!(c.len(), 1);
        assert!(c.peek(&GroundCall::new("other", "f", vec![])).is_some());
    }

    #[test]
    fn expiry_by_age() {
        let mut c = AnswerCache::new();
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(100);
        c.insert(call(1), big_answers(1), true, t0);
        c.insert(call(2), big_answers(1), true, t1);
        let expired = c.expire(t1, SimDuration::from_secs(50));
        assert_eq!(expired, 1);
        assert!(c.peek(&call(1)).is_none());
        assert!(c.peek(&call(2)).is_some());
    }

    #[test]
    fn clear_resets_bytes() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(4), true, SimInstant::EPOCH);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn posting_lists_track_every_mutation() {
        let mut c = AnswerCache::new();
        let listed = |c: &AnswerCache| {
            let mut v: Vec<GroundCall> = c.calls_for("d", "f").cloned().collect();
            v.sort();
            v
        };
        c.insert(call(1), vec![], true, SimInstant::EPOCH);
        c.insert(call(2), vec![], true, SimInstant::EPOCH);
        assert_eq!(listed(&c), vec![call(1), call(2)]);
        // Replacement keeps one posting.
        c.insert(call(1), vec![Value::Int(9)], true, SimInstant::EPOCH);
        assert_eq!(listed(&c), vec![call(1), call(2)]);
        // Invalidation empties the list.
        c.invalidate_domain("d");
        assert!(listed(&c).is_empty());
        // Clear after reinsert empties it too.
        c.insert(call(3), vec![], true, SimInstant::EPOCH);
        c.clear();
        assert!(listed(&c).is_empty());
    }

    #[test]
    fn ordered_index_tracks_insert_evict_and_survives_clear() {
        let two = |t: &str, v: i64| GroundCall::new("d", "g", vec![Value::str(t), Value::Int(v)]);
        let mut c = AnswerCache::new();
        c.insert(two("a", 5), vec![], true, SimInstant::EPOCH);
        c.register_ordered_index("d", "g", 1);
        // Registration indexes pre-existing entries.
        let group = c
            .ordered_group("d", "g", 1, &[Value::str("a")])
            .expect("index registered")
            .expect("group exists");
        assert_eq!(group.len(), 1);
        // New inserts join their group.
        c.insert(two("a", 9), vec![], true, SimInstant::EPOCH);
        c.insert(two("b", 1), vec![], true, SimInstant::EPOCH);
        let group = c
            .ordered_group("d", "g", 1, &[Value::str("a")])
            .unwrap()
            .unwrap();
        assert_eq!(
            group.keys().cloned().collect::<Vec<_>>(),
            vec![Value::Int(5), Value::Int(9)]
        );
        // Removal detaches from the group.
        c.expire(
            SimInstant::EPOCH + SimDuration::from_secs(100),
            SimDuration::from_secs(1),
        );
        assert!(c
            .ordered_group("d", "g", 1, &[Value::str("a")])
            .unwrap()
            .is_none());
        // Registration survives clear: new entries are indexed again.
        c.insert(two("a", 7), vec![], true, SimInstant::EPOCH);
        c.clear();
        c.insert(two("a", 8), vec![], true, SimInstant::EPOCH);
        let group = c
            .ordered_group("d", "g", 1, &[Value::str("a")])
            .unwrap()
            .unwrap();
        assert_eq!(
            group.keys().cloned().collect::<Vec<_>>(),
            vec![Value::Int(8)]
        );
        // Unregistered position: outer None, caller falls back.
        assert!(c.ordered_group("d", "g", 0, &[Value::Int(8)]).is_none());
    }

    #[test]
    fn shared_vs_copied_byte_accounting() {
        let mut c = AnswerCache::new();
        // Owned Vec: materialized, counts as copied.
        c.insert(call(1), big_answers(2), true, SimInstant::EPOCH);
        let copied = c.stats().bytes_copied;
        assert!(copied > 0);
        assert_eq!(c.stats().bytes_shared, 0);
        // Shared Arc: zero-copy store.
        let shared: Arc<[Value]> = big_answers(2).into();
        c.insert(call(2), shared.clone(), true, SimInstant::EPOCH);
        assert_eq!(c.stats().bytes_copied, copied);
        let after_store = c.stats().bytes_shared;
        assert!(after_store > 0);
        // Hits are served zero-copy.
        c.get(&call(1));
        assert!(c.stats().bytes_shared > after_store);
    }
}
