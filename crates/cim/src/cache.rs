//! The answer cache: ground call → answer set, with LRU eviction under an
//! optional byte budget.

use hermes_common::{GroundCall, SimInstant, Value};
use std::collections::HashMap;

/// One cached answer set.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The answers, in source order.
    pub answers: Vec<Value>,
    /// Wire size of the answers.
    pub bytes: usize,
    /// Virtual time the entry was stored.
    pub inserted_at: SimInstant,
    /// True if the full answer set was fetched (an interactive-mode stop
    /// can cache a prefix; incomplete entries can only serve partial hits).
    pub complete: bool,
    /// Number of lookups served by this entry.
    pub hits: u64,
    /// LRU clock value of the most recent touch.
    last_used: u64,
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted under the byte budget.
    pub evictions: u64,
    /// Exact-lookup hits.
    pub hits: u64,
    /// Exact-lookup misses.
    pub misses: u64,
}

/// The cache proper. All answer sets are owned; the mediator hands out
/// clones (answers are shared `Arc`-backed values, so clones are cheap).
#[derive(Clone, Debug, Default)]
pub struct AnswerCache {
    entries: HashMap<GroundCall, CacheEntry>,
    budget_bytes: Option<usize>,
    current_bytes: usize,
    clock: u64,
    stats: CacheStats,
}

impl AnswerCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        AnswerCache::default()
    }

    /// A cache that evicts least-recently-used entries beyond `bytes`.
    pub fn with_budget(bytes: usize) -> Self {
        AnswerCache {
            budget_bytes: Some(bytes),
            ..AnswerCache::default()
        }
    }

    /// Number of cached calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of cached answers.
    pub fn bytes(&self) -> usize {
        self.current_bytes
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Stores an answer set. Replacing an entry refreshes its LRU position.
    pub fn insert(
        &mut self,
        call: GroundCall,
        answers: Vec<Value>,
        complete: bool,
        now: SimInstant,
    ) {
        let bytes: usize = answers.iter().map(Value::size_bytes).sum();
        self.clock += 1;
        if let Some(old) = self.entries.remove(&call) {
            self.current_bytes -= old.bytes;
        }
        self.current_bytes += bytes;
        self.entries.insert(
            call,
            CacheEntry {
                answers,
                bytes,
                inserted_at: now,
                complete,
                hits: 0,
                last_used: self.clock,
            },
        );
        self.stats.inserts += 1;
        self.enforce_budget();
    }

    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while self.current_bytes > budget && self.entries.len() > 1 {
            // Evict the least-recently-used entry (but never the one just
            // inserted, which is the most recent by construction).
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&victim) {
                self.current_bytes -= e.bytes;
                self.stats.evictions += 1;
            }
        }
    }

    /// Exact lookup; touches the entry's LRU position and hit counter.
    pub fn get(&mut self, call: &GroundCall) -> Option<&CacheEntry> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(call) {
            Some(e) => {
                e.last_used = clock;
                e.hits += 1;
                self.stats.hits += 1;
                Some(&*e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Exact lookup without touching LRU/counters (used by invariant scans
    /// and diagnostics).
    pub fn peek(&self, call: &GroundCall) -> Option<&CacheEntry> {
        self.entries.get(call)
    }

    /// True if the call is cached with a complete answer set.
    pub fn contains_complete(&self, call: &GroundCall) -> bool {
        self.entries.get(call).is_some_and(|e| e.complete)
    }

    /// Iterates all entries (for invariant scans).
    pub fn iter(&self) -> impl Iterator<Item = (&GroundCall, &CacheEntry)> {
        self.entries.iter()
    }

    /// Drops every entry for a domain (invalidation after source update).
    pub fn invalidate_domain(&mut self, domain: &str) -> usize {
        let victims: Vec<GroundCall> = self
            .entries
            .keys()
            .filter(|c| c.domain.as_ref() == domain)
            .cloned()
            .collect();
        for v in &victims {
            if let Some(e) = self.entries.remove(v) {
                self.current_bytes -= e.bytes;
            }
        }
        victims.len()
    }

    /// Drops entries older than `max_age` relative to `now`.
    pub fn expire(&mut self, now: SimInstant, max_age: hermes_common::SimDuration) -> usize {
        let victims: Vec<GroundCall> = self
            .entries
            .iter()
            .filter(|(_, e)| now.duration_since(e.inserted_at) > max_age)
            .map(|(k, _)| k.clone())
            .collect();
        for v in &victims {
            if let Some(e) = self.entries.remove(v) {
                self.current_bytes -= e.bytes;
            }
        }
        victims.len()
    }

    /// Empties the cache, keeping the stats.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.current_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::SimDuration;

    fn call(i: i64) -> GroundCall {
        GroundCall::new("d", "f", vec![Value::Int(i)])
    }

    fn big_answers(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| Value::str(format!("answer_{i:04}")))
            .collect()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = AnswerCache::new();
        c.insert(call(1), vec![Value::Int(10)], true, SimInstant::EPOCH);
        let e = c.get(&call(1)).unwrap();
        assert_eq!(e.answers, vec![Value::Int(10)]);
        assert!(e.complete);
        assert_eq!(e.hits, 1);
        assert!(c.get(&call(2)).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn reinsert_replaces_and_tracks_bytes() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(10), true, SimInstant::EPOCH);
        let b1 = c.bytes();
        c.insert(call(1), big_answers(2), true, SimInstant::EPOCH);
        assert!(c.bytes() < b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let entry_bytes = big_answers(5).iter().map(Value::size_bytes).sum::<usize>();
        let mut c = AnswerCache::with_budget(entry_bytes * 2);
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        c.insert(call(2), big_answers(5), true, SimInstant::EPOCH);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(&call(1));
        c.insert(call(3), big_answers(5), true, SimInstant::EPOCH);
        assert!(c.peek(&call(1)).is_some());
        assert!(c.peek(&call(2)).is_none(), "LRU entry should be evicted");
        assert!(c.peek(&call(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= entry_bytes * 2);
    }

    #[test]
    fn newest_entry_never_evicted() {
        // Budget smaller than a single entry: the newest stays anyway.
        let mut c = AnswerCache::with_budget(1);
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn incomplete_entries_flagged() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(3), false, SimInstant::EPOCH);
        assert!(!c.contains_complete(&call(1)));
        c.insert(call(1), big_answers(5), true, SimInstant::EPOCH);
        assert!(c.contains_complete(&call(1)));
    }

    #[test]
    fn invalidate_domain_removes_only_that_domain() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(1), true, SimInstant::EPOCH);
        c.insert(
            GroundCall::new("other", "f", vec![]),
            big_answers(1),
            true,
            SimInstant::EPOCH,
        );
        assert_eq!(c.invalidate_domain("d"), 1);
        assert_eq!(c.len(), 1);
        assert!(c.peek(&GroundCall::new("other", "f", vec![])).is_some());
    }

    #[test]
    fn expiry_by_age() {
        let mut c = AnswerCache::new();
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(100);
        c.insert(call(1), big_answers(1), true, t0);
        c.insert(call(2), big_answers(1), true, t1);
        let expired = c.expire(t1, SimDuration::from_secs(50));
        assert_eq!(expired, 1);
        assert!(c.peek(&call(1)).is_none());
        assert!(c.peek(&call(2)).is_some());
    }

    #[test]
    fn clear_resets_bytes() {
        let mut c = AnswerCache::new();
        c.insert(call(1), big_answers(4), true, SimInstant::EPOCH);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }
}
