//! Answer-cache persistence.
//!
//! Caching exists because source calls are expensive (remote, metered,
//! sometimes unavailable — §1); a cache that evaporates on restart wastes
//! exactly those calls. The format is line-oriented text (one entry per
//! line, see [`hermes_common::wire`]): a versioned header, then
//!
//! ```text
//! <call> "\t" <complete 0|1> "\t" <inserted_at µs> "\t" <n answers> "\t" <answers…>
//! ```

use crate::cache::AnswerCache;
use hermes_common::wire::{encode_call, encode_value, Decoder};
use hermes_common::{HermesError, Result, SimDuration, SimInstant};
use std::io::{BufRead, Write};

const HEADER: &str = "hermes-answer-cache v1";

/// Writes every cache entry to `out`.
pub fn save<W: Write>(cache: &AnswerCache, mut out: W) -> Result<()> {
    writeln!(out, "{HEADER}")?;
    // Deterministic order: sort by call.
    let mut entries: Vec<_> = cache.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    for (call, entry) in entries {
        let mut line = String::new();
        encode_call(call, &mut line);
        line.push('\t');
        line.push(if entry.complete { '1' } else { '0' });
        line.push('\t');
        line.push_str(&entry.inserted_at.as_micros().to_string());
        line.push('\t');
        line.push_str(&entry.answers.len().to_string());
        line.push('\t');
        for a in entry.answers.iter() {
            encode_value(a, &mut line);
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads entries from `input` into a fresh unbounded cache.
pub fn load<R: BufRead>(input: R) -> Result<AnswerCache> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| HermesError::Io("empty cache file".into()))??;
    if header != HEADER {
        return Err(HermesError::Io(format!(
            "unrecognized cache header `{header}`"
        )));
    }
    let mut cache = AnswerCache::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let mut need = || {
            fields
                .next()
                .ok_or_else(|| HermesError::Io(format!("cache line {}: truncated", lineno + 2)))
        };
        let call_text = need()?;
        let complete_text = need()?;
        let at_text = need()?;
        let count_text = need()?;
        let answers_text = need()?;

        let mut d = Decoder::new(call_text);
        let call = d.call()?;
        let complete = match complete_text {
            "1" => true,
            "0" => false,
            other => {
                return Err(HermesError::Io(format!(
                    "cache line {}: bad complete flag `{other}`",
                    lineno + 2
                )))
            }
        };
        let micros: u64 = at_text.parse().map_err(|e| {
            HermesError::Io(format!("cache line {}: bad timestamp: {e}", lineno + 2))
        })?;
        let count: usize = count_text
            .parse()
            .map_err(|e| HermesError::Io(format!("cache line {}: bad count: {e}", lineno + 2)))?;
        let mut ad = Decoder::new(answers_text);
        let mut answers = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            answers.push(ad.value()?);
        }
        if !ad.is_done() {
            return Err(HermesError::Io(format!(
                "cache line {}: trailing answer bytes",
                lineno + 2
            )));
        }
        cache.insert(
            call,
            answers,
            complete,
            SimInstant::EPOCH + SimDuration::from_micros(micros),
        );
    }
    Ok(cache)
}

/// Saves to a file path.
pub fn save_to_path(cache: &AnswerCache, path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    save(cache, std::io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_from_path(path: &std::path::Path) -> Result<AnswerCache> {
    let file = std::fs::File::open(path)?;
    load(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{GroundCall, Record, Value};

    fn sample_cache() -> AnswerCache {
        let mut c = AnswerCache::new();
        c.insert(
            GroundCall::new(
                "video",
                "frames_to_objects",
                vec![Value::str("rope"), Value::Int(4), Value::Int(47)],
            ),
            vec![Value::str("brandon"), Value::str("rupert")],
            true,
            SimInstant::EPOCH + SimDuration::from_millis(1234),
        );
        c.insert(
            GroundCall::new("d", "f", vec![Value::Float(2.5)]),
            vec![Value::Record(Record::from_fields([
                ("first", Value::Int(0)),
                ("note", Value::str("multi\nline")),
            ]))],
            false,
            SimInstant::EPOCH,
        );
        c.insert(
            GroundCall::new("d", "empty", vec![]),
            vec![],
            true,
            SimInstant::EPOCH,
        );
        c
    }

    #[test]
    fn save_load_roundtrip() {
        let cache = sample_cache();
        let mut buf = Vec::new();
        save(&cache, &mut buf).unwrap();
        let loaded = load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), cache.len());
        for (call, entry) in cache.iter() {
            let got = loaded.peek(call).expect("entry survives");
            assert_eq!(got.answers, entry.answers);
            assert_eq!(got.complete, entry.complete);
            assert_eq!(got.inserted_at, entry.inserted_at);
        }
    }

    #[test]
    fn save_is_deterministic() {
        let cache = sample_cache();
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&cache, &mut a).unwrap();
        save(&cache, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_header_rejected() {
        let err = load(std::io::Cursor::new(b"nope\n".as_slice())).unwrap_err();
        assert!(err.to_string().contains("header"));
        let err2 = load(std::io::Cursor::new(b"".as_slice())).unwrap_err();
        assert!(err2.to_string().contains("empty"));
    }

    #[test]
    fn truncated_line_rejected() {
        let mut buf = Vec::new();
        save(&sample_cache(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    l.split('\t').next().unwrap().to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(load(std::io::Cursor::new(truncated.as_bytes())).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hermes-cim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let cache = sample_cache();
        save_to_path(&cache, &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        assert_eq!(loaded.len(), cache.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
