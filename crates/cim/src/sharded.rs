//! Concurrent CIM access: the [`CimView`] trait and the [`ShardedCim`]
//! facade.
//!
//! A single [`Cim`] is a plain mutable structure; the executor historically
//! reached it through a `Mutex`. That is fine for one query at a time, but a
//! mediator serving many clients funnels *every* cache probe through one
//! lock. `ShardedCim` partitions the cache by `(domain, function)` hash into
//! N independently locked shards, so concurrent queries touching different
//! functions never contend.
//!
//! The `(domain, function)` key is load-bearing: every structure that must
//! see *all* cached calls of one function — the invariant posting lists and
//! ordered indexes from the indexed lookup paths — lives whole inside a
//! single shard. Invariant hits, substitutes, and partial-hit merges for a
//! call therefore behave exactly as they do in an unsharded CIM, because
//! all candidate entries share the probe's shard. The one semantic
//! narrowing: an invariant relating *different* functions that hash to
//! different shards cannot produce a cross-shard hit — the probe simply
//! misses and performs a real call, which is always sound (the cache is an
//! optimization, never an oracle).
//!
//! Invariants are replicated into every shard (they are small, read-only
//! rewrite rules); cache entries are partitioned.

use crate::cache::CacheStats;
use crate::manager::{Cim, CimPreview, CimResolution, CimStats};
use hermes_common::sync::Mutex;
use hermes_common::{shard_index, GroundCall, Result, SimDuration, SimInstant, Value};
use hermes_lang::Invariant;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::MutexGuard;

/// Shared-state access to a CIM.
///
/// The executor holds `&dyn CimView` and never cares whether the cache
/// behind it is a single `Mutex<Cim>` (the serial mediator) or a
/// [`ShardedCim`] (the concurrent mediator). All methods take `&self`;
/// implementations provide interior mutability.
pub trait CimView {
    /// The §4.1 lookup pipeline: exact hit, equality-invariant hit,
    /// partial hit, or miss (possibly with a cheaper substitute call).
    fn lookup(&self, call: &GroundCall, now: SimInstant) -> (CimResolution, SimDuration);

    /// Stores an answer set for future lookups.
    fn store(&self, call: GroundCall, answers: Arc<[Value]>, complete: bool, now: SimInstant);

    /// A stale (possibly evicted-policy-exempt) answer set for `call`, if
    /// serve-stale-on-outage is enabled.
    fn stale_answers(&self, call: &GroundCall) -> Option<Arc<[Value]>>;

    /// Deduplicates `actual` against a cached prefix for `call`, returning
    /// the remainder and the simulated comparison cost.
    fn merge_partial(
        &self,
        call: &GroundCall,
        cached: &[Value],
        actual: &[Value],
    ) -> (Vec<Value>, SimDuration);

    /// Non-mutating routing preview for the group dispatcher.
    fn preview(&self, call: &GroundCall) -> CimPreview;
}

impl CimView for Mutex<Cim> {
    fn lookup(&self, call: &GroundCall, now: SimInstant) -> (CimResolution, SimDuration) {
        self.lock().lookup(call, now)
    }

    fn store(&self, call: GroundCall, answers: Arc<[Value]>, complete: bool, now: SimInstant) {
        self.lock().store(call, answers, complete, now);
    }

    fn stale_answers(&self, call: &GroundCall) -> Option<Arc<[Value]>> {
        self.lock().stale_answers(call)
    }

    fn merge_partial(
        &self,
        _call: &GroundCall,
        cached: &[Value],
        actual: &[Value],
    ) -> (Vec<Value>, SimDuration) {
        self.lock().merge_partial(cached, actual)
    }

    fn preview(&self, call: &GroundCall) -> CimPreview {
        self.lock().preview(call)
    }
}

/// N independently locked CIM shards partitioned by `(domain, function)`.
///
/// Lock order: a caller holds at most **one** shard lock at a time — every
/// method routes to a single shard, and aggregate methods visit shards
/// sequentially, releasing each guard before taking the next. There is
/// therefore no lock-ordering hazard between shards.
#[derive(Debug)]
pub struct ShardedCim {
    shards: Vec<Mutex<Cim>>,
    /// Shard-lock acquisitions that found the lock held (`try_lock`
    /// failed and the caller had to block). The throughput bench reports
    /// this as its contention metric.
    contention: AtomicU64,
}

impl ShardedCim {
    /// `n` empty default shards (`n` is clamped to at least 1).
    pub fn new(n: usize) -> Self {
        ShardedCim::from_template(&Cim::new(), n)
    }

    /// `n` shards forked from `template`: every shard replicates the
    /// template's invariants, cost model, staleness policy, and ordered
    /// indexes; the template's cache *entries* are partitioned by shard
    /// key. Per-entry LRU age and hit counts start fresh.
    ///
    /// Note the cache byte budget is per shard, so aggregate capacity is
    /// `n ×` the template's budget.
    pub fn from_template(template: &Cim, n: usize) -> Self {
        let n = n.max(1);
        let mut shards: Vec<Cim> = (0..n).map(|_| template.fork_empty()).collect();
        for (call, entry) in template.cache().iter() {
            let idx = call.shard(n);
            shards[idx].cache_mut().insert(
                call.clone(),
                entry.answers.clone(),
                entry.complete,
                entry.inserted_at,
            );
        }
        ShardedCim {
            shards: shards.into_iter().map(Mutex::new).collect(),
            contention: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks the shard owning `(domain, function)`, counting contention.
    fn locked(&self, domain: &str, function: &str) -> MutexGuard<'_, Cim> {
        let shard = &self.shards[shard_index(domain, function, self.shards.len())];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.lock()
            }
        }
    }

    /// Registers an invariant in **every** shard (invariants are
    /// replicated, entries are partitioned). Returns the index reported by
    /// the first shard; all shards hold identical invariant stores, so the
    /// indexes agree.
    pub fn add_invariant(&self, inv: &Invariant) -> Result<usize> {
        let mut first = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let idx = shard.lock().add_invariant(inv.clone())?;
            if i == 0 {
                first = idx;
            }
        }
        Ok(first)
    }

    /// Toggles serve-stale-on-outage in every shard.
    pub fn set_serve_stale_on_outage(&self, on: bool) {
        for shard in &self.shards {
            shard.lock().set_serve_stale_on_outage(on);
        }
    }

    /// Aggregate §4.1 pipeline counters across shards.
    pub fn stats(&self) -> CimStats {
        let mut total = CimStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.exact_hits += s.exact_hits;
            total.equal_hits += s.equal_hits;
            total.partial_hits += s.partial_hits;
            total.misses += s.misses;
            total.substituted_misses += s.substituted_misses;
            total.stores += s.stores;
        }
        total
    }

    /// Aggregate answer-cache counters across shards.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().cache_stats();
            total.inserts += s.inserts;
            total.evictions += s.evictions;
            total.hits += s.hits;
            total.misses += s.misses;
            total.bytes_shared += s.bytes_shared;
            total.bytes_copied += s.bytes_copied;
        }
        total
    }

    /// Total cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().cache().len()).sum()
    }

    /// True if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached answer bytes across shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().cache().bytes()).sum()
    }

    /// Drops every entry of `domain` in every shard; returns entries
    /// removed.
    pub fn invalidate_domain(&self, domain: &str) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().cache_mut().invalidate_domain(domain))
            .sum()
    }

    /// Drops every cached entry for one `(domain, function)`. Only the
    /// owning shard is visited.
    pub fn invalidate_function(&self, domain: &str, function: &str) -> usize {
        let shard = &self.shards[shard_index(domain, function, self.shards.len())];
        shard
            .lock()
            .cache_mut()
            .invalidate_function(domain, function)
    }

    /// Drops entries older than `max_age` in every shard; returns entries
    /// removed.
    pub fn expire(&self, now: SimInstant, max_age: SimDuration) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().cache_mut().expire(now, max_age))
            .sum()
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().cache_mut().clear();
        }
    }

    /// Blocking shard-lock acquisitions so far (see field docs).
    pub fn lock_contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Runs `f` over each shard in index order (read-only; one shard
    /// locked at a time). Tests use this to check per-shard coherence.
    pub fn for_each_shard(&self, mut f: impl FnMut(usize, &Cim)) {
        for (i, shard) in self.shards.iter().enumerate() {
            f(i, &shard.lock());
        }
    }

    /// Runs `f` over each shard in index order with mutable access (one
    /// shard locked at a time). For configuration that must reach every
    /// shard, e.g. per-shard cache budgets.
    pub fn for_each_shard_mut(&self, mut f: impl FnMut(usize, &mut Cim)) {
        for (i, shard) in self.shards.iter().enumerate() {
            f(i, &mut shard.lock());
        }
    }
}

impl CimView for ShardedCim {
    fn lookup(&self, call: &GroundCall, now: SimInstant) -> (CimResolution, SimDuration) {
        self.locked(&call.domain, &call.function).lookup(call, now)
    }

    fn store(&self, call: GroundCall, answers: Arc<[Value]>, complete: bool, now: SimInstant) {
        self.locked(&call.domain, &call.function)
            .store(call, answers, complete, now);
    }

    fn stale_answers(&self, call: &GroundCall) -> Option<Arc<[Value]>> {
        self.locked(&call.domain, &call.function)
            .stale_answers(call)
    }

    fn merge_partial(
        &self,
        call: &GroundCall,
        cached: &[Value],
        actual: &[Value],
    ) -> (Vec<Value>, SimDuration) {
        self.locked(&call.domain, &call.function)
            .merge_partial(cached, actual)
    }

    fn preview(&self, call: &GroundCall) -> CimPreview {
        self.locked(&call.domain, &call.function).preview(call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(function: &str, k: i64) -> GroundCall {
        GroundCall::new("d", function, vec![Value::Int(k)])
    }

    fn answers(k: i64) -> Arc<[Value]> {
        vec![Value::Int(k), Value::Int(k + 1)].into()
    }

    #[test]
    fn partitions_by_function_and_aggregates() {
        let sharded = ShardedCim::new(4);
        for f in 0..8 {
            let function = format!("f{f}");
            for k in 0..3 {
                sharded.store(call(&function, k), answers(k), true, SimInstant::EPOCH);
            }
        }
        assert_eq!(sharded.len(), 24);
        assert_eq!(sharded.stats().stores, 24);
        // Every entry of one function lives in exactly one shard.
        for f in 0..8 {
            let function = format!("f{f}");
            let mut holding = 0;
            sharded.for_each_shard(|_, cim| {
                if cim.cache().calls_for("d", &function).count() > 0 {
                    holding += 1;
                }
            });
            assert_eq!(holding, 1, "function {function} split across shards");
        }
    }

    #[test]
    fn lookup_round_trips_through_the_owning_shard() {
        let sharded = ShardedCim::new(8);
        let c = call("f", 7);
        sharded.store(c.clone(), answers(7), true, SimInstant::EPOCH);
        let (resolution, _) = sharded.lookup(&c, SimInstant::EPOCH);
        match resolution {
            CimResolution::ExactHit { answers: got } => assert_eq!(got[..], answers(7)[..]),
            other => panic!("expected exact hit, got {other:?}"),
        }
        let (miss, _) = sharded.lookup(&call("f", 99), SimInstant::EPOCH);
        assert!(matches!(miss, CimResolution::Miss { .. }));
    }

    #[test]
    fn from_template_replicates_invariants_and_partitions_entries() {
        let mut template = Cim::new();
        template
            .add_invariant(
                hermes_lang::parse_invariant("V1 <= V2 => d:f(V2) >= d:f(V1).").expect("parse"),
            )
            .expect("invariant");
        template.store(call("f", 1), answers(1), true, SimInstant::EPOCH);
        template.store(call("g", 2), answers(2), true, SimInstant::EPOCH);

        let sharded = ShardedCim::from_template(&template, 4);
        assert_eq!(sharded.len(), 2);
        sharded.for_each_shard(|_, cim| assert_eq!(cim.invariants().len(), 1));
        // Counters start fresh even though the template had stores.
        assert_eq!(sharded.stats().stores, 0);
        // The monotone invariant still fires inside the owning shard.
        let (resolution, _) = sharded.lookup(&call("f", 0), SimInstant::EPOCH);
        assert!(
            matches!(
                resolution,
                CimResolution::EqualHit { .. }
                    | CimResolution::PartialHit { .. }
                    | CimResolution::Miss { .. }
            ),
            "lookup must stay well-formed: {resolution:?}"
        );
    }

    #[test]
    fn invalidate_and_clear_sweep_all_shards() {
        let sharded = ShardedCim::new(3);
        for f in 0..6 {
            sharded.store(
                call(&format!("f{f}"), 0),
                answers(0),
                true,
                SimInstant::EPOCH,
            );
        }
        assert_eq!(sharded.invalidate_domain("d"), 6);
        assert!(sharded.is_empty());
        sharded.store(call("f", 0), answers(0), true, SimInstant::EPOCH);
        sharded.clear();
        assert_eq!(sharded.len(), 0);
    }
}
