//! The CIM itself: the §4.1 lookup pipeline plus its (small but non-zero)
//! processing-cost model.

use crate::cache::{AnswerCache, CacheStats};
use crate::invariant::{InvariantHit, InvariantStore};
use hermes_common::{GroundCall, Result, SimDuration, SimInstant, Value};
use hermes_lang::Invariant;
use std::sync::Arc;

/// The simulated cost of CIM processing.
///
/// The paper's Figure 5 shows cache hits are fast but not free (~300 ms to
/// the first answer vs ~1.8 s for the real call): the mediator still pays
/// query initialization, local copy, and display time. Invariant hits pay
/// extra matching and — for partial hits — answer-set comparison ("CIM must
/// keep the answers from the cache in memory and compare them with the
/// answers from the actual call").
#[derive(Clone, Copy, Debug)]
pub struct CimCostModel {
    /// Fixed cost of probing the cache (hit or miss), ms.
    pub probe_ms: f64,
    /// Cost per answer returned from the cache (copy + display), ms.
    pub per_answer_ms: f64,
    /// Cost of scanning one cache entry against one invariant, ms.
    pub invariant_scan_per_entry_ms: f64,
    /// Cost per cached answer merged/deduplicated on a partial hit, ms.
    pub merge_per_answer_ms: f64,
}

impl Default for CimCostModel {
    fn default() -> Self {
        CimCostModel {
            probe_ms: 2.0,
            per_answer_ms: 0.8,
            invariant_scan_per_entry_ms: 0.35,
            merge_per_answer_ms: 0.25,
        }
    }
}

/// How CIM resolved a lookup (§4.1).
#[derive(Clone, Debug, PartialEq)]
pub enum CimResolution {
    /// The call itself was cached (step 1): answers are complete. The
    /// answer slice is shared with the cache entry — no copy on the hit
    /// path.
    ExactHit {
        /// The cached answers.
        answers: Arc<[Value]>,
    },
    /// An equality invariant mapped the call onto a cached call with the
    /// same answer set (step 2): answers are complete.
    EqualHit {
        /// The cached call that served the answers.
        via: GroundCall,
        /// The cached answers (shared with the cache entry).
        answers: Arc<[Value]>,
    },
    /// A subset invariant found a cached partial answer set (step 3). The
    /// actual call is still required for the remaining answers unless the
    /// caller stops early (interactive mode).
    PartialHit {
        /// The cached call that served the partial answers.
        via: GroundCall,
        /// The partial answers (shared with the cache entry).
        answers: Arc<[Value]>,
    },
    /// Nothing in the cache applies. `substitute`, when present, is an
    /// equivalent (by an equality invariant) ground call that may be
    /// cheaper to execute than the original.
    Miss {
        /// An equivalent call worth executing instead, if any.
        substitute: Option<GroundCall>,
    },
}

impl CimResolution {
    /// True for exact or equality hits (complete answers, no source call
    /// needed).
    pub fn is_complete_hit(&self) -> bool {
        matches!(
            self,
            CimResolution::ExactHit { .. } | CimResolution::EqualHit { .. }
        )
    }
}

/// A side-effect-free preview of a lookup's outcome; see [`Cim::preview`].
#[derive(Clone, Debug, PartialEq)]
pub enum CimPreview {
    /// An exact or equality hit: no network call would be needed.
    Hit,
    /// A subset invariant applies: the actual call is still required for
    /// completeness, so a network call would follow the cached prefix.
    Partial,
    /// Nothing cached applies; `executed` is the ground call that would
    /// actually go over the wire (the substitute, if one exists).
    Miss {
        /// The call that would be executed on the network.
        executed: GroundCall,
    },
}

/// Cumulative CIM counters, per resolution kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CimStats {
    /// Step-1 hits.
    pub exact_hits: u64,
    /// Step-2 hits.
    pub equal_hits: u64,
    /// Step-3 hits.
    pub partial_hits: u64,
    /// Full misses.
    pub misses: u64,
    /// Misses that carried a substitute call.
    pub substituted_misses: u64,
    /// Answer sets stored.
    pub stores: u64,
}

/// The Cache and Invariant Manager.
///
/// During execution the CIM "behaves like any other domain" (§4.1): the
/// executor directs a domain call here first; the resolution tells it
/// whether a real call is still needed.
#[derive(Clone, Debug, Default)]
pub struct Cim {
    cache: AnswerCache,
    invariants: InvariantStore,
    cost: CimCostModel,
    stats: CimStats,
    serve_stale: bool,
}

impl Cim {
    /// A CIM with an unbounded cache and default cost model.
    pub fn new() -> Self {
        Cim::default()
    }

    /// A CIM with a byte-budgeted cache.
    pub fn with_cache_budget(bytes: usize) -> Self {
        Cim {
            cache: AnswerCache::with_budget(bytes),
            ..Cim::default()
        }
    }

    /// Overrides the processing-cost model.
    pub fn with_cost_model(mut self, cost: CimCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adds a validated invariant and registers the ordered indexes its
    /// monotone directions probe (idempotent; pre-existing cache entries
    /// are back-indexed).
    pub fn add_invariant(&mut self, inv: Invariant) -> Result<usize> {
        let idx = self.invariants.add(inv)?;
        for (domain, function, pos) in self.invariants.ordered_index_specs() {
            self.cache.register_ordered_index(domain, function, pos);
        }
        Ok(idx)
    }

    /// Enables serving stale (incomplete) cached entries when the source
    /// is unreachable: a possibly-partial old answer beats total failure.
    /// Off by default — stale answers are only ever served on outage, and
    /// the caller must flag the result incomplete.
    pub fn set_serve_stale_on_outage(&mut self, on: bool) {
        self.serve_stale = on;
    }

    /// Whether stale entries may be served during an outage.
    pub fn serve_stale_on_outage(&self) -> bool {
        self.serve_stale
    }

    /// The stale fallback: any exact-key cached entry, complete or not,
    /// without touching LRU order or hit counters. `None` when the knob is
    /// off or nothing is cached under the call. The slice is shared with
    /// the cache entry.
    pub fn stale_answers(&self, call: &GroundCall) -> Option<Arc<[Value]>> {
        if !self.serve_stale {
            return None;
        }
        self.cache.peek(call).map(|e| e.answers.clone())
    }

    /// Read access to the cache (diagnostics, tests).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// Mutable access to the cache (invalidation, expiry).
    pub fn cache_mut(&mut self) -> &mut AnswerCache {
        &mut self.cache
    }

    /// The stored invariants.
    pub fn invariants(&self) -> &InvariantStore {
        &self.invariants
    }

    /// Counters.
    pub fn stats(&self) -> CimStats {
        self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A non-mutating preview of what [`Cim::lookup`] would resolve to:
    /// no hit counters move, no LRU order changes, no simulated time is
    /// charged. The parallel scheduler peeks before dispatching a group so
    /// it only puts real network calls (misses) in flight; the member's
    /// later `lookup` performs the authoritative, charged resolution.
    pub fn preview(&self, call: &GroundCall) -> CimPreview {
        if self.cache.peek(call).is_some_and(|e| e.complete) {
            return CimPreview::Hit;
        }
        if !self.invariants.is_empty() {
            if let Some(hit) = self.invariants.find_hits(call, &self.cache).first() {
                return match hit {
                    InvariantHit::Equal { .. } => CimPreview::Hit,
                    InvariantHit::Partial { .. } => CimPreview::Partial,
                };
            }
        }
        let executed = self
            .invariants
            .substitutes(call)
            .into_iter()
            .next()
            .unwrap_or_else(|| call.clone());
        CimPreview::Miss { executed }
    }

    /// The §4.1 lookup pipeline. Returns the resolution and the simulated
    /// CIM processing time it took.
    pub fn lookup(&mut self, call: &GroundCall, _now: SimInstant) -> (CimResolution, SimDuration) {
        let mut cost_ms = self.cost.probe_ms;

        // Step 1: exact match.
        let exact = self
            .cache
            .get(call)
            .filter(|e| e.complete)
            .map(|e| e.answers.clone());
        if let Some(answers) = exact {
            cost_ms += self.cost.per_answer_ms * answers.len() as f64;
            self.stats.exact_hits += 1;
            return (
                CimResolution::ExactHit { answers },
                SimDuration::from_millis_f64(cost_ms),
            );
        }

        // Steps 2 and 3: invariants. The *simulated* matching cost keeps
        // the paper's scan model (entries × invariants) so plan choices and
        // reported timings are bit-identical; only the wall-clock matching
        // below is indexed.
        if !self.invariants.is_empty() {
            cost_ms += self.cost.invariant_scan_per_entry_ms
                * (self.cache.len() as f64)
                * (self.invariants.len() as f64);
            let hits = self.invariants.find_hits(call, &self.cache);
            if let Some(hit) = hits.first() {
                let answers: Arc<[Value]> = self
                    .cache
                    .peek(hit.cached())
                    .map(|e| e.answers.clone())
                    .unwrap_or_else(|| Vec::new().into());
                cost_ms += self.cost.per_answer_ms * answers.len() as f64;
                return match hit {
                    InvariantHit::Equal { cached, .. } => {
                        self.stats.equal_hits += 1;
                        (
                            CimResolution::EqualHit {
                                via: cached.clone(),
                                answers,
                            },
                            SimDuration::from_millis_f64(cost_ms),
                        )
                    }
                    InvariantHit::Partial { cached, .. } => {
                        self.stats.partial_hits += 1;
                        (
                            CimResolution::PartialHit {
                                via: cached.clone(),
                                answers,
                            },
                            SimDuration::from_millis_f64(cost_ms),
                        )
                    }
                };
            }
        }

        // Step 4: miss, possibly with a cheaper equivalent call.
        let substitute = self.invariants.substitutes(call).into_iter().next();
        self.stats.misses += 1;
        if substitute.is_some() {
            self.stats.substituted_misses += 1;
        }
        (
            CimResolution::Miss { substitute },
            SimDuration::from_millis_f64(cost_ms),
        )
    }

    /// Stores an answer set for future lookups. Accepts either an owned
    /// `Vec<Value>` or an already-shared `Arc<[Value]>` (the executor hands
    /// back the same allocation it streams from — zero-copy).
    pub fn store(
        &mut self,
        call: GroundCall,
        answers: impl Into<Arc<[Value]>>,
        complete: bool,
        now: SimInstant,
    ) {
        self.stats.stores += 1;
        self.cache.insert(call, answers, complete, now);
    }

    /// A structurally identical *empty* CIM: same invariants, cost model,
    /// staleness policy, cache budget, and registered ordered indexes, but
    /// no cached entries and zeroed counters. Shard facades replicate a
    /// template into every shard with this.
    pub fn fork_empty(&self) -> Cim {
        let mut forked = self.clone();
        forked.cache.clear();
        forked.cache.reset_stats();
        forked.stats = CimStats::default();
        forked
    }

    /// Merges partial (cached) answers with the actual call's answers,
    /// returning the deduplicated remainder (actual minus cached) and the
    /// simulated comparison cost — the §8 observation that "the size of the
    /// partial answer returned plays a significant role".
    pub fn merge_partial(&self, cached: &[Value], actual: &[Value]) -> (Vec<Value>, SimDuration) {
        let cached_set: std::collections::HashSet<&Value> = cached.iter().collect();
        let compared = actual.len() + cached.len();
        let remainder: Vec<Value> = actual
            .iter()
            .filter(|a| !cached_set.contains(*a))
            .cloned()
            .collect();
        (
            remainder,
            SimDuration::from_millis_f64(self.cost.merge_per_answer_ms * compared as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_invariant;

    fn call(v: i64) -> GroundCall {
        GroundCall::new(
            "rel",
            "select_lt",
            vec![Value::str("inv"), Value::str("qty"), Value::Int(v)],
        )
    }

    #[test]
    fn exact_hit_pipeline() {
        let mut cim = Cim::new();
        cim.store(call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let (res, cost) = cim.lookup(&call(10), SimInstant::EPOCH);
        assert_eq!(
            res,
            CimResolution::ExactHit {
                answers: vec![Value::Int(1)].into()
            }
        );
        assert!(cost > SimDuration::ZERO);
        assert_eq!(cim.stats().exact_hits, 1);
    }

    #[test]
    fn incomplete_exact_entry_is_not_a_full_hit() {
        let mut cim = Cim::new();
        cim.store(call(10), vec![Value::Int(1)], false, SimInstant::EPOCH);
        let (res, _) = cim.lookup(&call(10), SimInstant::EPOCH);
        assert!(matches!(res, CimResolution::Miss { .. }));
    }

    #[test]
    fn partial_hit_via_superset_invariant() {
        let mut cim = Cim::new();
        cim.add_invariant(
            parse_invariant("V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).")
                .unwrap(),
        )
        .unwrap();
        cim.store(call(10), vec![Value::Int(1)], true, SimInstant::EPOCH);
        let (res, _) = cim.lookup(&call(99), SimInstant::EPOCH);
        match res {
            CimResolution::PartialHit { via, answers } => {
                assert_eq!(via, call(10));
                assert_eq!(answers[..], [Value::Int(1)]);
            }
            other => panic!("expected partial hit, got {other:?}"),
        }
        assert_eq!(cim.stats().partial_hits, 1);
    }

    #[test]
    fn equality_hit_and_substitute_on_miss() {
        let mut cim = Cim::new();
        cim.add_invariant(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
        let wanted = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("p"),
                Value::Int(0),
                Value::Int(0),
                Value::Int(999),
            ],
        );
        // Empty cache: miss, but with the 142-substitute.
        let (res, _) = cim.lookup(&wanted, SimInstant::EPOCH);
        match &res {
            CimResolution::Miss {
                substitute: Some(sub),
            } => {
                assert_eq!(sub.args[3], Value::Int(142));
            }
            other => panic!("expected substituted miss, got {other:?}"),
        }
        assert_eq!(cim.stats().substituted_misses, 1);
        // Cache the substitute; now the wanted call is an equality hit.
        let sub = match res {
            CimResolution::Miss {
                substitute: Some(s),
            } => s,
            _ => unreachable!(),
        };
        cim.store(sub.clone(), vec![Value::Int(7)], true, SimInstant::EPOCH);
        let (res2, _) = cim.lookup(&wanted, SimInstant::EPOCH);
        match res2 {
            CimResolution::EqualHit { via, answers } => {
                assert_eq!(via, sub);
                assert_eq!(answers[..], [Value::Int(7)]);
            }
            other => panic!("expected equal hit, got {other:?}"),
        }
    }

    #[test]
    fn miss_without_invariants_is_cheap() {
        let mut cim = Cim::new();
        let (res, cost) = cim.lookup(&call(5), SimInstant::EPOCH);
        assert_eq!(res, CimResolution::Miss { substitute: None });
        assert_eq!(cost, SimDuration::from_millis_f64(2.0));
    }

    #[test]
    fn invariant_scan_cost_grows_with_cache() {
        let mut cim = Cim::new();
        cim.add_invariant(
            parse_invariant("V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).")
                .unwrap(),
        )
        .unwrap();
        let (_, cost_empty) = cim.lookup(&call(999), SimInstant::EPOCH);
        for i in 0..100 {
            cim.store(
                GroundCall::new("other", "f", vec![Value::Int(i)]),
                vec![],
                true,
                SimInstant::EPOCH,
            );
        }
        let (_, cost_full) = cim.lookup(&call(999), SimInstant::EPOCH);
        assert!(cost_full > cost_empty);
    }

    #[test]
    fn merge_partial_dedups_and_costs() {
        let cim = Cim::new();
        let cached = vec![Value::Int(1), Value::Int(2)];
        let actual = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let (rest, cost) = cim.merge_partial(&cached, &actual);
        assert_eq!(rest, vec![Value::Int(3)]);
        assert!(cost > SimDuration::ZERO);
    }

    #[test]
    fn stale_answers_gated_by_knob() {
        let mut cim = Cim::new();
        cim.store(call(10), vec![Value::Int(1)], false, SimInstant::EPOCH);
        // Knob off: nothing is served stale.
        assert_eq!(cim.stale_answers(&call(10)), None);
        cim.set_serve_stale_on_outage(true);
        assert!(cim.serve_stale_on_outage());
        // Incomplete entries qualify; unknown calls still do not.
        assert_eq!(
            cim.stale_answers(&call(10)).as_deref(),
            Some(&[Value::Int(1)][..])
        );
        assert_eq!(cim.stale_answers(&call(99)), None);
    }

    #[test]
    fn store_counts() {
        let mut cim = Cim::new();
        cim.store(call(1), vec![], true, SimInstant::EPOCH);
        cim.store(call(2), vec![], false, SimInstant::EPOCH);
        assert_eq!(cim.stats().stores, 2);
        assert_eq!(cim.cache().len(), 2);
    }
}
