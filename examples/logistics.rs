//! The paper's §2 motivating example: `routetosupplies` — find a place
//! holding a supply item in a remote INGRES-style inventory, then plan a
//! route to it with a terrain path planner that has no cost model at all.
//!
//! ```sh
//! cargo run --example logistics
//! ```

use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::terrain::{demo_map, TerrainDomain};
use hermes::net::profiles;
use hermes::{Mediator, Network, Value};
use std::sync::Arc;

fn main() {
    // The inventory database (remote, Cornell).
    let ingres = RelationalDomain::new("ingres");
    let mut inventory = Table::new(
        "inventory",
        Schema::new(vec![
            Column::new("item", ColumnType::Str),
            Column::new("loc", ColumnType::Str),
            Column::new("qty", ColumnType::Int),
        ])
        .unwrap(),
    );
    inventory
        .insert_all([
            vec![
                Value::str("h-22 fuel"),
                Value::str("pax river"),
                Value::Int(40),
            ],
            vec![
                Value::str("h-22 fuel"),
                Value::str("aberdeen"),
                Value::Int(12),
            ],
            vec![Value::str("ammo"), Value::str("aberdeen"), Value::Int(500)],
            vec![
                Value::str("rations"),
                Value::str("college park"),
                Value::Int(90),
            ],
        ])
        .unwrap();
    inventory.create_hash_index("item").unwrap();
    ingres.add_table(inventory);

    // The terrain path planner (a local Army package).
    let terrain = TerrainDomain::new("terraindb", demo_map());

    let mut net = Network::new(7);
    net.place(ingres, profiles::cornell());
    net.place_local(Arc::new(terrain));

    // The §2 rule, verbatim modulo syntax conventions.
    let mut mediator = Mediator::from_source(include_str!("programs/logistics.hms"), net)
        .expect("program compiles");

    // \"When this is queried with routetosupplies('place1', 'h-22 fuel',
    // To, R) we request to find a place To that has the h-22 fuel and plan
    // a path R from place1 to it.\"
    let result = mediator
        .query("?- routetosupplies('place1', 'h-22 fuel', To, R).")
        .expect("query runs");

    println!(
        "routes to h-22 fuel from place1 ({} found):",
        result.rows.len()
    );
    for row in &result.rows {
        let to = &row[0];
        let waypoints = match &row[1] {
            Value::List(wps) => wps.len(),
            _ => 0,
        };
        println!("  -> {to}: {waypoints} waypoints");
    }
    println!(
        "\nfirst route in {}, all routes in {}",
        result
            .t_first
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into()),
        result.t_all
    );

    // Run it again: the inventory lookup and both route computations are
    // cached, so the whole query answers locally.
    let again = mediator
        .query("?- routetosupplies('place1', 'h-22 fuel', To, R).")
        .expect("query runs");
    println!(
        "cached rerun: all routes in {} ({} cache hits)",
        again.t_all, again.stats.cim_exact
    );

    // After two executions DCSM has learned what findrte costs — something
    // no analytic model could predict from the arguments.
    let dcsm = mediator.dcsm();
    let dcsm = dcsm.lock();
    let pattern = hermes::GroundCall::new(
        "terraindb",
        "findrte",
        vec![Value::str("place1"), Value::str("pax river")],
    )
    .blanket_pattern();
    let est = dcsm.cost(&pattern);
    println!(
        "\nDCSM now estimates terraindb:findrte($b, $b) at {:.1}ms per call",
        est.t_all_ms()
    );
}
