//! Interactive exploration of a remote video catalog — the paper's §3
//! "interactive mode": the mediator computes a first batch of answers,
//! the user decides whether to continue, and stopping early cancels the
//! outstanding remote calls.
//!
//! ```sh
//! cargo run --example video_catalog
//! ```

use hermes::domains::video::gen::rope_store;
use hermes::net::profiles;
use hermes::{parse_invariant, Mediator, Network};
use std::sync::Arc;

fn main() {
    let mut net = Network::new(1996);
    net.place(Arc::new(rope_store()), profiles::italy());

    let mut mediator = Mediator::from_source(include_str!("programs/video_catalog.hms"), net)
        .expect("program compiles");

    // Optimize for time-to-first-answer: this is interactive use.
    mediator.config_mut().optimize_first_answer = true;

    // Frame-range monotonicity: a cached narrower scene partially answers
    // a wider one.
    mediator
        .caches()
        .add_invariant(
            parse_invariant(
                "F2 <= F1 & L1 <= L2 =>
                 video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
            )
            .unwrap(),
        )
        .unwrap();

    // Warm the cache with a narrow scene.
    let narrow = mediator
        .query("?- in_scene('rope', 10, 40, O).")
        .expect("narrow scene");
    println!(
        "warmup query: {} objects in frames 10..40 ({} total)",
        narrow.rows.len(),
        narrow.t_all
    );

    // Now browse a wide scene interactively. The first batch comes from
    // the cache (partial invariant hit) while the real transatlantic call
    // proceeds in the background of the virtual timeline.
    let mut browse = mediator
        .query_interactive("?- in_scene('rope', 0, 600, O).")
        .expect("interactive query starts");

    println!("\nfirst 5 objects in frames 0..600:");
    for (row, at) in browse.next_batch(5) {
        println!("  {} (available at +{at})", row[0]);
    }

    // The user has seen enough: stop. Remaining work is cancelled.
    let summary = browse.stop();
    println!(
        "\nstopped early: finished={}, error={:?}",
        summary.finished, summary.error
    );

    // A different user wants everything about one object.
    let spans = mediator
        .query("?- appears('rope', 'rupert', S).")
        .expect("appears query");
    println!(
        "\nrupert appears in {} frame interval(s):",
        spans.rows.len()
    );
    for row in &spans.rows {
        println!("  {}", row[0]); // the query's only free variable is S
    }

    let stats = mediator.caches().stats().cim;
    println!(
        "\nCIM totals: {} exact, {} equality, {} partial hits; {} misses",
        stats.exact_hits, stats.equal_hits, stats.partial_hits, stats.misses
    );
}
