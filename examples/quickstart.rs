//! Quickstart: build a two-source mediator, run a query three ways, and
//! watch the caches work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::video::gen::{rope_store, ROPE_CAST};
use hermes::net::profiles;
use hermes::{parse_invariant, Mediator, Network, Value};
use std::sync::Arc;

fn main() {
    // 1. Sources. The AVIS-style video store sits in Italy (1996 network
    //    conditions); the relational cast database at Cornell.
    let video = rope_store();
    let relation = RelationalDomain::new("relation");
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap(),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .unwrap();
    }
    relation.add_table(cast);

    let mut net = Network::new(42);
    net.place(Arc::new(video), profiles::italy());
    net.place(relation, profiles::cornell());

    // 2. The mediator program: who plays the objects seen in a scene?
    let mut mediator = Mediator::from_source(include_str!("programs/quickstart.hms"), net)
        .expect("program compiles");

    // An invariant: a frame range inside a cached wider range... is not
    // sound in general — but a *wider* range always contains a narrower
    // one, so a cached narrow range partially answers a wide query:
    mediator
        .caches()
        .add_invariant(
            parse_invariant(
                "F2 <= F1 & L1 <= L2 =>
                 video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
            )
            .unwrap(),
        )
        .unwrap();

    // 3. Cold run: everything goes over the (simulated) Atlantic.
    let q = "?- scene_actors(4, 47, Object, Actor).";
    let cold = mediator.query(q).expect("query runs");
    println!(
        "cold run:  {} answers, first in {}, all in {}",
        cold.rows.len(),
        fmt(cold.t_first),
        cold.t_all
    );

    // 4. Warm run: served from the answer cache.
    let warm = mediator.query(q).expect("query runs");
    println!(
        "warm run:  {} answers, first in {}, all in {}",
        warm.rows.len(),
        fmt(warm.t_first),
        warm.t_all
    );
    assert_eq!(cold.rows, warm.rows);

    // 5. A *wider* scene was never cached — the invariant lets the cache
    //    answer partially while the real call runs in parallel.
    let wide = mediator
        .query("?- scene_actors(4, 127, Object, Actor).")
        .expect("query runs");
    println!(
        "wide run:  {} answers, first in {}, all in {} ({} partial cache hits)",
        wide.rows.len(),
        fmt(wide.t_first),
        wide.t_all,
        wide.stats.cim_partial
    );

    // 6. What did the optimizer consider?
    println!("\n{}", mediator.explain(q).unwrap());

    for row in wide.rows.iter().take(5) {
        println!("  {} played by {}", row[0], row[1]);
    }
}

fn fmt(d: Option<hermes::SimDuration>) -> String {
    d.map(|d| d.to_string()).unwrap_or_else(|| "-".into())
}
