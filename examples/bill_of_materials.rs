//! Bill-of-materials federation: an object database (assembly structure),
//! a relational inventory (stock levels, with selection pushdown), and
//! execution tracing to watch the optimizer work.
//!
//! ```sh
//! cargo run --example bill_of_materials
//! ```

use hermes::common::Record;
use hermes::core::PushdownRule;
use hermes::domains::objectstore::ObjectStoreDomain;
use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::net::profiles;
use hermes::{Mediator, Network, Value};
use std::sync::Arc;

fn main() {
    // The design database: vehicles reference assemblies reference parts.
    let oodb = ObjectStoreDomain::new("design");
    let mut part_oids = Vec::new();
    for (i, name) in ["rotor", "gearbox", "piston", "ring", "seal", "blade"]
        .iter()
        .enumerate()
    {
        let oid = oodb.create(
            "part",
            Record::from_fields([
                ("name", Value::str(*name)),
                ("mass", Value::Int(5 + i as i64 * 3)),
            ]),
        );
        part_oids.push(oid);
    }
    let heli = oodb.create(
        "vehicle",
        Record::from_fields([("name", Value::str("h-22"))]),
    );
    for &p in &part_oids[..3] {
        oodb.add_ref("vehicle", heli, "parts", "part", p);
    }
    // Sub-assembly structure.
    oodb.add_ref("part", part_oids[2], "parts", "part", part_oids[3]); // piston -> ring
    oodb.add_ref("part", part_oids[2], "parts", "part", part_oids[4]); // piston -> seal
    oodb.add_ref("part", part_oids[0], "parts", "part", part_oids[5]); // rotor -> blade

    // The inventory database: stock per part name, at a remote site.
    let inv = RelationalDomain::new("inventory");
    let mut stock = Table::new(
        "stock",
        Schema::new(vec![
            Column::new("part", ColumnType::Str),
            Column::new("depot", ColumnType::Str),
            Column::new("qty", ColumnType::Int),
        ])
        .unwrap(),
    );
    for (part, depot, qty) in [
        ("rotor", "pax river", 2),
        ("gearbox", "pax river", 0),
        ("piston", "aberdeen", 40),
        ("ring", "aberdeen", 500),
        ("seal", "pax river", 12),
        ("blade", "aberdeen", 8),
    ] {
        stock
            .insert(vec![Value::str(part), Value::str(depot), Value::Int(qty)])
            .unwrap();
    }
    stock.create_hash_index("part").unwrap();
    inv.add_table(stock);

    let mut net = Network::new(22);
    net.place_local(Arc::new(oodb));
    net.place(inv, profiles::cornell());

    let mut mediator = Mediator::from_source(include_str!("programs/bill_of_materials.hms"), net)
        .expect("program compiles");
    // §5: push the part-name selection into the inventory source.
    mediator.add_pushdown(PushdownRule::relational("inventory"));
    mediator.config_mut().exec.collect_trace = true;

    let result = mediator
        .query("?- sourcing('vehicle', 0, Part, Depot, Qty).")
        .expect("query runs");

    println!("h-22 bill of materials with stock locations:");
    for row in &result.rows {
        println!("  {:<8} {:>4} units at {}", row[0], row[2], row[1]);
    }
    println!(
        "\nplan (note the fused inventory:select_eq — the selection was \
         pushed to the source):\n{}",
        result.plan
    );
    println!("trace:");
    print!("{}", hermes::core::trace::render(&result.trace));
    println!(
        "\n{} answers in {} ({} source calls)",
        result.rows.len(),
        result.t_all,
        result.stats.actual_calls
    );
}
