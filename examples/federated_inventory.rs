//! Cost-based plan choice across a federation — the optimizer story.
//!
//! Two sources can each drive the same join: a big parts catalog and a
//! small supplier directory. Which side to start from depends on
//! cardinalities and network costs the mediator initially knows nothing
//! about. Watch DCSM learn them and the plan flip.
//!
//! ```sh
//! cargo run --example federated_inventory
//! ```

use hermes::domains::synthetic::{CostProfile, RelationSpec, SyntheticDomain};
use hermes::net::profiles;
use hermes::{Mediator, Network};
use std::sync::Arc;

fn main() {
    // parts: a large relation (many pairs), hosted far away.
    // suppliers: a small relation, hosted nearby.
    let parts = SyntheticDomain::generate(
        "catalog",
        11,
        &[
            RelationSpec::uniform("parts", 300, 6.0).with_profile(CostProfile {
                start_ms: 5.0,
                per_answer_ms: 0.4,
                per_probe_ms: 1.0,
            }),
        ],
    );
    let suppliers = SyntheticDomain::generate(
        "directory",
        12,
        &[RelationSpec::uniform("suppliers", 20, 2.0)],
    );

    // Join values must overlap: both relations map into integer ranges; the
    // join variable is the integer part id.
    let mut net = Network::new(3);
    net.place(Arc::new(parts), profiles::bucknell());
    net.place(Arc::new(suppliers), profiles::maryland());

    let mut mediator = Mediator::from_source(include_str!("programs/federated_inventory.hms"), net)
        .expect("program compiles");

    let q = "?- sources('parts_7', Vendor).";

    // Cold optimizer: DCSM knows nothing, every plan costs the same prior,
    // so the choice is arbitrary.
    let planned = mediator.plan(q).expect("plans enumerate");
    println!(
        "cold optimizer: {} candidate plans, all near the prior estimate",
        planned.plans.len()
    );

    // Run a few training queries to populate the statistics cache.
    for product in ["parts_1", "parts_2", "parts_3"] {
        mediator
            .query(format!("?- sources('{product}', V)."))
            .expect("training query");
    }

    // Warm optimizer: estimates now reflect reality.
    let warm = mediator.plan(q).expect("plans enumerate");
    println!("\nwarm optimizer ({} plans):", warm.plans.len());
    for (i, est) in warm.estimates.iter().enumerate() {
        let marker = if i == warm.chosen { ">>" } else { "  " };
        println!(
            "{marker} plan {i}: T_first={:>9.2}ms  T_all={:>9.2}ms  Card={:>7.1}",
            est.t_first_ms.unwrap_or(f64::NAN),
            est.t_all_ms.unwrap_or(f64::NAN),
            est.cardinality.unwrap_or(f64::NAN),
        );
    }

    let result = mediator.query(q).expect("query runs");
    println!(
        "\nchosen plan answered {} rows in {} (estimate was {:.1}ms):",
        result.rows.len(),
        result.t_all,
        result.estimate.t_all_ms.unwrap_or(f64::NAN),
    );
    println!("{}", result.plan);

    // Flip the optimization goal to first-answer latency (interactive
    // users) and show the plan can change.
    mediator.config_mut().optimize_first_answer = true;
    let interactive = mediator.plan(q).expect("plans enumerate");
    println!(
        "optimizing for first answer chooses plan {} (vs {} for all answers)",
        interactive.chosen, warm.chosen
    );
}
