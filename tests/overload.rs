//! Overload behavior: deterministic tier selection, one-way fail-soft
//! downgrade under budget pressure, serial-vs-tiered equivalence when
//! nothing is wrong, and a thundering-herd stampede against a bounded
//! admission gate — shed queries must return [`HermesError::Shed`]
//! immediately (never hang) while admitted queries complete.

use hermes::core::tier::{select_tier, TierInputs, TierLoad};
use hermes::core::TraceEvent;
use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::net::profiles;
use hermes::{
    GateConfig, HermesError, IncompleteReason, Mediator, Network, PlanTier, QueryRequest,
    SimDuration, Value,
};
use std::sync::{Arc, Barrier};

fn mediator(seed: u64) -> Mediator {
    let domain = SyntheticDomain::generate("d1", seed, &[RelationSpec::uniform("p", 12, 2.0)]);
    let mut net = Network::new(seed);
    net.place(Arc::new(domain), profiles::maryland());
    Mediator::from_source(
        "
        item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        item(A, B) :- in(B, d1:p_bf(A)).
        item(A, B) :- in(A, d1:p_fb(B)).
        pair(B, C) :- in(B, d1:p_bf('p_1')) & in(C, d1:p_bf('p_2')).
        ",
        net,
    )
    .unwrap()
}

fn sorted(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

#[test]
fn tier_selector_is_deterministic_across_seeds() {
    // The selector is a pure function: for each seeded input, ten
    // evaluations yield one decision, and re-building identical inputs
    // later yields it again.
    for seed in 0..10u64 {
        let build = || TierInputs {
            requested: None,
            budget: if seed % 2 == 0 {
                Some(SimDuration::from_millis(40 + seed * 7))
            } else {
                None
            },
            estimate_ms: 25.0 * seed as f64,
            plan_site_breaker_open: seed % 4 == 0,
            load: TierLoad {
                in_flight: seed as usize,
                capacity: 12,
            },
        };
        let first = select_tier(&build());
        for _ in 0..10 {
            assert_eq!(select_tier(&build()), first, "seed {seed}");
        }
    }
}

#[test]
fn budget_pressure_downgrades_one_way_and_never_aborts() {
    // Two sequential remote calls; the budget burns out after the first.
    // The deadline is far away: the budget must fire first, producing a
    // `Downgraded` gap — not a `DeadlineExceeded` abort.
    let mut m = mediator(42);
    m.config_mut().exec.cheap_call_ms = 0.0; // nothing is "cheap"
    let req = QueryRequest::new("?- pair(B, C).")
        .tier(PlanTier::Full)
        .budget(SimDuration::from_millis(1))
        .deadline(SimDuration::from_secs(3600))
        .trace(true);
    let result = m.query(req).unwrap();
    assert!(result.incomplete, "the second call was skipped");
    assert_eq!(result.stats.deadline_aborts, 0, "budget beat the deadline");
    assert!(result.stats.tier_downgrades >= 1);
    assert!(result.stats.tier_skipped_calls >= 1);
    assert!(result
        .provenance
        .iter()
        .any(|p| p.gaps.contains(&IncompleteReason::Downgraded)));
    // Every downgrade in the trace moves strictly down — never up.
    let mut last = PlanTier::Full;
    for entry in &result.trace {
        if let TraceEvent::TierDowngraded { from, to, .. } = &entry.event {
            assert!(to < from, "downgrade must move down: {from} -> {to}");
            assert!(*from <= last, "tier can never climb back to {from}");
            last = *to;
        }
    }
}

#[test]
fn deadline_without_budget_still_aborts_with_its_own_reason() {
    // The control for the test above: no budget, a too-tight deadline.
    // Provenance must say `DeadlineExceeded`, never `Downgraded`.
    let mut m = mediator(42);
    let req = QueryRequest::new("?- pair(B, C).").deadline(SimDuration::from_millis(1));
    let result = m.query(req).unwrap();
    assert!(result.incomplete);
    assert!(result.stats.deadline_aborts >= 1);
    assert!(result
        .provenance
        .iter()
        .any(|p| p.gaps.contains(&IncompleteReason::DeadlineExceeded)));
    assert!(!result
        .provenance
        .iter()
        .any(|p| p.gaps.contains(&IncompleteReason::Downgraded)));
}

#[test]
fn tiered_serving_matches_serial_when_nothing_is_wrong() {
    // Adaptive tiers on, healthy system, no budget, no load: the selector
    // must pick Full and the answers must be bit-identical to the plain
    // paper-exact mediator.
    let mut plain = mediator(7);
    let expected = plain.query("?- item(A, B).").unwrap();
    let mut tiered = mediator(7);
    tiered.config_mut().adaptive_tiers = true;
    let got = tiered.query("?- item(A, B).").unwrap();
    assert_eq!(sorted(&got.rows), sorted(&expected.rows));
    assert_eq!(got.stats.tier_downgrades, 0);
    assert_eq!(got.stats.tier_skipped_calls, 0);
    assert_eq!(got.stats.actual_calls, expected.stats.actual_calls);

    // Same through the concurrent server with a bounded-but-idle gate.
    let server = mediator(7).to_concurrent(4);
    server.set_gate(GateConfig::bounded(64));
    let got = server.query("?- item(A, B).").unwrap();
    assert_eq!(sorted(&got.rows), sorted(&expected.rows));
    let stats = server.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.downgraded, 0);
}

#[test]
fn saturated_tier_budgets_shed_deterministically() {
    // Zero slots at every tier: the query is admitted at the front door
    // but no tier can seat it — a deterministic `tier-budget-full` shed.
    let server = mediator(11).to_concurrent(2);
    server.set_gate(GateConfig {
        capacity: usize::MAX,
        cache_only_slots: 0,
        cached_cheap_slots: 0,
        full_slots: 0,
    });
    match server.query("?- item('p_1', B).").unwrap_err() {
        HermesError::Shed { reason } => assert_eq!(reason, "tier-budget-full"),
        other => panic!("expected Shed, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.admitted, 0);
}

#[test]
fn stampede_sheds_cleanly_and_admitted_queries_complete() {
    const THREADS: usize = 16;
    const PER_THREAD: usize = 4;

    let mut warm = mediator(3);
    let expected = sorted(&warm.query("?- item(A, B).").unwrap().rows);
    let server = Arc::new(warm.to_concurrent(4));
    server.set_gate(GateConfig::bounded(2));

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                let mut shed = 0usize;
                barrier.wait();
                for _ in 0..PER_THREAD {
                    match server.query("?- item(A, B).") {
                        Ok(result) => {
                            assert_eq!(sorted(&result.rows), expected);
                            served += 1;
                        }
                        Err(HermesError::Shed { reason }) => {
                            assert_eq!(reason, "gate-full");
                            shed += 1;
                        }
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                }
                (served, shed)
            })
        })
        .collect();

    let mut served = 0usize;
    let mut shed = 0usize;
    for h in handles {
        // A hung shed query would deadlock this join; completing it at
        // all is the "shed never hangs" proof.
        let (s, d) = h.join().expect("no panics");
        served += s;
        shed += d;
    }
    assert_eq!(served + shed, THREADS * PER_THREAD);
    assert!(served > 0, "a capacity-2 gate still serves someone");

    let stats = server.stats();
    assert_eq!(stats.queries, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.admitted, served as u64);
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(
        stats.admitted + stats.shed,
        stats.queries,
        "every query is accounted for exactly once"
    );
}

#[test]
fn explicit_cache_only_request_serves_warm_answers_without_the_wire() {
    let mut m = mediator(5);
    let full = m.query("?- item('p_1', B).").unwrap();
    let req = QueryRequest::new("?- item('p_1', B).").tier(PlanTier::CacheOnly);
    let cached = m.query(req).unwrap();
    assert_eq!(sorted(&cached.rows), sorted(&full.rows));
    assert_eq!(cached.stats.actual_calls, 0, "never touched the wire");
}
