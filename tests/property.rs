//! Property-style tests over the workspace's core invariants.
//!
//! The workspace is dependency-free, so instead of proptest these use
//! hand-rolled generators over the in-tree deterministic [`Rng64`]: every
//! property runs a fixed number of seeded cases and failures print the case
//! seed, which reproduces the input exactly.

use hermes::common::{CallPattern, GroundCall, PatArg, Rng64, SimInstant};
use hermes::dcsm::{Dcsm, SummaryTable};
use hermes::lang::{parse_rule, BodyAtom, CallTemplate, PredAtom, Rule, Term};
use hermes::Value;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const CASES: u64 = 128;

/// Runs `body` once per case with an independent, reproducible generator.
fn cases(test_name: &str, n: u64, mut body: impl FnMut(&mut Rng64)) {
    for case in 0..n {
        // Seed from the test name so adding cases to one test never shifts
        // the inputs of another.
        let mut name_hash = DefaultHasher::new();
        test_name.hash(&mut name_hash);
        let mut rng = Rng64::new(name_hash.finish() ^ case.wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng);
    }
}

// ---------- generators ----------

fn lower_string(r: &mut Rng64, min_len: usize, max_len: usize) -> String {
    let len = r.range_usize(min_len, max_len + 1);
    (0..len)
        .map(|_| (b'a' + r.range_u64(0, 26) as u8) as char)
        .collect()
}

fn finite_float(r: &mut Rng64) -> f64 {
    match r.range_usize(0, 6) {
        0 => 0.0,
        1 => -1.0,
        _ => r.range_f64(-1e6, 1e6),
    }
}

fn scalar_value(r: &mut Rng64) -> Value {
    match r.range_usize(0, 5) {
        0 => Value::Null,
        1 => Value::Bool(r.chance(0.5)),
        2 => Value::Int(r.next_u64() as i64),
        3 => Value::Float(finite_float(r)),
        _ => Value::str(lower_string(r, 0, 8)),
    }
}

/// Any value, including non-finite floats (the value model canonicalizes
/// NaN and signed zero) and nested lists/records up to depth 3.
fn value(r: &mut Rng64) -> Value {
    fn go(r: &mut Rng64, depth: usize) -> Value {
        if depth == 0 || r.chance(0.55) {
            return match r.range_usize(0, 8) {
                0 => Value::Float(f64::NAN),
                1 => Value::Float(f64::INFINITY),
                2 => Value::Float(f64::NEG_INFINITY),
                3 => Value::Float(-0.0),
                _ => scalar_value(r),
            };
        }
        if r.chance(0.5) {
            let n = r.range_usize(0, 4);
            Value::List((0..n).map(|_| go(r, depth - 1)).collect())
        } else {
            let n = r.range_usize(0, 4);
            let fields: Vec<(String, Value)> = (0..n)
                .map(|_| (lower_string(r, 1, 4), go(r, depth - 1)))
                .collect();
            Value::Record(hermes::common::Record::from_fields(fields))
        }
    }
    go(r, 3)
}

fn ident(r: &mut Rng64) -> String {
    let mut s = lower_string(r, 1, 1);
    let extra = r.range_usize(0, 7);
    for _ in 0..extra {
        let c = match r.range_usize(0, 12) {
            0 => '_',
            1..=2 => (b'0' + r.range_u64(0, 10) as u8) as char,
            _ => (b'a' + r.range_u64(0, 26) as u8) as char,
        };
        s.push(c);
    }
    s
}

fn var_name(r: &mut Rng64) -> String {
    let mut s = String::new();
    s.push((b'A' + r.range_u64(0, 26) as u8) as char);
    let extra = r.range_usize(0, 5);
    for _ in 0..extra {
        let c = if r.chance(0.3) {
            (b'0' + r.range_u64(0, 10) as u8) as char
        } else {
            (b'a' + r.range_u64(0, 26) as u8) as char
        };
        s.push(c);
    }
    s
}

fn term(r: &mut Rng64) -> Term {
    match r.range_usize(0, 3) {
        0 => Term::var(var_name(r)),
        1 => Term::constant(r.range_i64(i32::MIN as i64, i32::MAX as i64 + 1)),
        _ => {
            let mut s = lower_string(r, 1, 1);
            let extra = r.range_usize(0, 7);
            for _ in 0..extra {
                s.push(if r.chance(0.2) {
                    ' '
                } else {
                    (b'a' + r.range_u64(0, 26) as u8) as char
                });
            }
            Term::Const(Value::str(s))
        }
    }
}

fn ground_call(r: &mut Rng64) -> GroundCall {
    let d = ident(r);
    let f = ident(r);
    let n = r.range_usize(0, 4);
    let args: Vec<Value> = (0..n).map(|_| scalar_value(r)).collect();
    GroundCall::new(d, f, args)
}

fn rule(r: &mut Rng64) -> Rule {
    let name = ident(r);
    let head_vars: Vec<String> = (0..r.range_usize(1, 3)).map(|_| var_name(r)).collect();
    let mut body: Vec<BodyAtom> = (0..r.range_usize(1, 4))
        .map(|_| {
            let v = var_name(r);
            let d = ident(r);
            let f = ident(r);
            let n = r.range_usize(0, 3);
            let args = (0..n).map(|_| term(r)).collect();
            BodyAtom::In {
                target: Term::var(v),
                call: CallTemplate::new(d, f, args),
            }
        })
        .collect();
    // Make the rule trivially range-restricted by reusing the head vars as
    // in-targets of the first body atoms.
    let n = body.len();
    for (i, hv) in head_vars.iter().enumerate() {
        if let Some(BodyAtom::In { target, .. }) = body.get_mut(i % n) {
            *target = Term::var(hv.as_str());
        }
    }
    let head = PredAtom::new(
        name,
        head_vars.iter().map(|v| Term::var(v.as_str())).collect(),
    );
    Rule::new(head, body)
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

// ---------- value-model properties ----------

#[test]
fn value_order_is_total_and_consistent() {
    cases("value_order_is_total_and_consistent", CASES, |r| {
        let a = value(r);
        let b = value(r);
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        assert_eq!(ab, ba.reverse(), "{a:?} vs {b:?}");
        assert_eq!(ab == Ordering::Equal, a == b, "{a:?} vs {b:?}");
        if a == b {
            assert_eq!(hash_of(&a), hash_of(&b), "{a:?}");
        }
    });
}

#[test]
fn value_order_is_transitive() {
    cases("value_order_is_transitive", CASES, |r| {
        let mut v = [value(r), value(r), value(r)];
        v.sort();
        assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2], "{v:?}");
    });
}

#[test]
fn value_equals_itself_even_with_nan() {
    cases("value_equals_itself_even_with_nan", CASES, |r| {
        let a = value(r);
        assert_eq!(a.clone(), a);
    });
}

#[test]
fn size_bytes_is_positive_and_stable() {
    cases("size_bytes_is_positive_and_stable", CASES, |r| {
        let a = value(r);
        assert!(a.size_bytes() >= 1);
        assert_eq!(a.size_bytes(), a.clone().size_bytes());
    });
}

// ---------- parser round-trips ----------

#[test]
fn rule_display_reparses_identically() {
    cases("rule_display_reparses_identically", CASES, |r| {
        let rule = rule(r);
        let text = rule.to_string();
        let parsed = parse_rule(&text);
        assert!(
            parsed.is_ok(),
            "failed to reparse `{}`: {:?}",
            text,
            parsed.err()
        );
        assert_eq!(parsed.unwrap(), rule);
    });
}

#[test]
fn ground_call_display_is_parseable_as_query() {
    cases("ground_call_display_is_parseable_as_query", CASES, |r| {
        let c = ground_call(r);
        let text = format!("?- in(X, {c}).");
        let q = hermes::parse_query(&text);
        assert!(q.is_ok(), "failed on `{text}`: {:?}", q.err());
    });
}

// ---------- call-pattern lattice ----------

#[test]
fn blanket_generalizes_everything() {
    cases("blanket_generalizes_everything", CASES, |r| {
        let c = ground_call(r);
        let full = c.pattern();
        let blanket = c.blanket_pattern();
        assert!(blanket.generalizes(&full));
        assert!(blanket.matches(&c));
        assert!(full.matches(&c));
    });
}

#[test]
fn relaxation_preserves_matching() {
    cases("relaxation_preserves_matching", CASES, |r| {
        let c = ground_call(r);
        let mut frontier = vec![c.pattern()];
        // Walk the whole relaxation lattice; every pattern must match c.
        while let Some(p) = frontier.pop() {
            assert!(p.matches(&c), "{p} should match {c}");
            assert!(p.generalizes(&c.pattern()));
            for relaxed in p.relaxations() {
                assert!(relaxed.generalizes(&p));
                assert!(!p.generalizes(&relaxed) || p == relaxed);
                frontier.push(relaxed);
            }
        }
    });
}

#[test]
fn generalizes_is_antisymmetric() {
    cases("generalizes_is_antisymmetric", CASES, |r| {
        let c = ground_call(r);
        let full = c.pattern();
        let mut p = full.clone();
        for i in 0..p.args.len() {
            if r.chance(0.5) {
                p.args[i] = PatArg::Bound;
            }
        }
        if p.generalizes(&full) && full.generalizes(&p) {
            assert_eq!(p, full);
        }
    });
}

// ---------- cache invariants ----------

#[test]
fn cache_respects_budget_and_returns_stored_answers() {
    cases("cache_respects_budget", CASES, |r| {
        let budget = r.range_usize(64, 2048);
        let mut cache = hermes::cim::AnswerCache::with_budget(budget);
        let mut last_inserted: Option<(GroundCall, Vec<Value>)> = None;
        let ops = r.range_usize(1, 60);
        for _ in 0..ops {
            let op = r.range_usize(0, 3);
            let key = r.range_i64(0, 20);
            let n = r.range_usize(0, 6);
            let answers: Vec<Value> = (0..n).map(|_| scalar_value(r)).collect();
            let call = GroundCall::new("d", "f", vec![Value::Int(key)]);
            match op {
                0 => {
                    cache.insert(call.clone(), answers.clone(), true, SimInstant::EPOCH);
                    last_inserted = Some((call, answers));
                }
                1 => {
                    let _ = cache.get(&call);
                }
                _ => {
                    cache.invalidate_domain("other"); // no-op on these keys
                }
            }
            // Budget holds whenever more than one entry exists.
            if cache.len() > 1 {
                assert!(cache.bytes() <= budget, "{} > {budget}", cache.bytes());
            }
            // The most recent insert is always retrievable.
            if let Some((c, a)) = &last_inserted {
                if let Some(e) = cache.peek(c) {
                    assert_eq!(e.answers[..], a[..]);
                }
            }
        }
    });
}

// ---------- DCSM summarization invariants ----------

#[test]
fn lossless_summary_equals_detail_aggregation() {
    cases("lossless_summary_equals_detail", CASES, |r| {
        let n = r.range_usize(1, 40);
        let observations: Vec<(i64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    r.range_i64(0, 6),
                    r.range_f64(0.1, 100.0),
                    r.range_f64(0.0, 40.0),
                )
            })
            .collect();
        let mut dcsm = Dcsm::new();
        for (arg, t_all, card) in &observations {
            dcsm.record(
                &GroundCall::new("d", "f", vec![Value::Int(*arg)]),
                Some(t_all / 2.0),
                Some(*t_all),
                Some(*card),
                SimInstant::EPOCH,
            );
        }
        let table = SummaryTable::summarize_lossless(dcsm.db(), "d", "f");
        for arg in observations.iter().map(|(a, _, _)| *a) {
            let pattern = CallPattern::new("d", "f", vec![PatArg::Const(Value::Int(arg))]);
            let (detail, n) = dcsm.db().aggregate(&pattern);
            let row = table.lookup(&pattern).expect("row exists for observed arg");
            assert!(n > 0);
            assert!((row.t_all.mean().unwrap() - detail.t_all_ms.unwrap()).abs() < 1e-6);
            assert!((row.card.mean().unwrap() - detail.cardinality.unwrap()).abs() < 1e-6);
            assert_eq!(row.l as usize, n);
        }
    });
}

#[test]
fn lossy_derivation_equals_direct_blanket_aggregation() {
    cases("lossy_derivation_equals_blanket", CASES, |r| {
        let n = r.range_usize(2, 40);
        let observations: Vec<(i64, f64)> = (0..n)
            .map(|_| (r.range_i64(0, 6), r.range_f64(0.1, 100.0)))
            .collect();
        let mut dcsm = Dcsm::new();
        for (arg, t_all) in &observations {
            dcsm.record(
                &GroundCall::new("d", "f", vec![Value::Int(*arg)]),
                None,
                Some(*t_all),
                Some(1.0),
                SimInstant::EPOCH,
            );
        }
        let lossless = SummaryTable::summarize_lossless(dcsm.db(), "d", "f");
        let lossy = lossless
            .derive_lossy(hermes::common::PatternShape::new("d", "f", vec![false]))
            .unwrap();
        let blanket = CallPattern::new("d", "f", vec![PatArg::Bound]);
        let (detail, _) = dcsm.db().aggregate(&blanket);
        let row = lossy.lookup(&blanket).unwrap();
        assert!((row.t_all.mean().unwrap() - detail.t_all_ms.unwrap()).abs() < 1e-6);
    });
}

// ---------- wire codec & persistence round-trips ----------

#[test]
fn wire_codec_roundtrips_any_value() {
    cases("wire_codec_roundtrips_any_value", CASES, |r| {
        let v = value(r);
        let text = hermes::common::wire::value_to_string(&v);
        assert!(!text.contains('\n'));
        let back = hermes::common::wire::value_from_str(&text).unwrap();
        assert_eq!(back, v);
    });
}

#[test]
fn wire_codec_roundtrips_any_call() {
    cases("wire_codec_roundtrips_any_call", CASES, |r| {
        let c = ground_call(r);
        let mut text = String::new();
        hermes::common::wire::encode_call(&c, &mut text);
        let mut d = hermes::common::wire::Decoder::new(&text);
        assert_eq!(d.call().unwrap(), c);
        assert!(d.is_done());
    });
}

#[test]
fn cache_persistence_roundtrips() {
    cases("cache_persistence_roundtrips", CASES, |r| {
        let n = r.range_usize(0, 12);
        let mut cache = hermes::cim::AnswerCache::new();
        for _ in 0..n {
            let call = ground_call(r);
            let answers: Vec<Value> = (0..r.range_usize(0, 5)).map(|_| value(r)).collect();
            cache.insert(call, answers, r.chance(0.5), SimInstant::EPOCH);
        }
        let mut buf = Vec::new();
        hermes::cim::persist::save(&cache, &mut buf).unwrap();
        let loaded = hermes::cim::persist::load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), cache.len());
        for (call, entry) in cache.iter() {
            let got = loaded.peek(call).expect("entry survives");
            assert_eq!(&got.answers, &entry.answers);
            assert_eq!(got.complete, entry.complete);
        }
    });
}

#[test]
fn stats_persistence_roundtrips() {
    cases("stats_persistence_roundtrips", CASES, |r| {
        let n = r.range_usize(0, 20);
        let mut db = hermes::dcsm::CostVectorDb::new();
        for _ in 0..n {
            let call = ground_call(r);
            let opt = |r: &mut Rng64, hi: f64| {
                if r.chance(0.5) {
                    Some(r.range_f64(0.0, hi))
                } else {
                    None
                }
            };
            let vector = hermes::dcsm::CostVector {
                t_first_ms: opt(r, 1e6),
                t_all_ms: opt(r, 1e6),
                cardinality: opt(r, 1e4),
            };
            db.record(call, vector, SimInstant::EPOCH);
        }
        let mut buf = Vec::new();
        hermes::dcsm::persist::save(&db, &mut buf).unwrap();
        let loaded = hermes::dcsm::persist::load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (domain, function) in db.functions() {
            assert_eq!(
                loaded.records_for(&domain, &function),
                db.records_for(&domain, &function)
            );
        }
    });
}

// ---------- whole-pipeline properties ----------

#[test]
fn every_plan_computes_the_same_answers() {
    cases("every_plan_computes_the_same_answers", 12, |r| {
        use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
        use hermes::net::profiles;
        use hermes::{CimPolicy, Mediator, Network};
        use std::sync::Arc;

        let seed = r.range_u64(0, 500);
        let build = || {
            let d = SyntheticDomain::generate(
                "d1",
                seed,
                &[
                    RelationSpec::uniform("p", 6, 2.0),
                    RelationSpec::uniform("q", 6, 2.0),
                ],
            );
            let mut net = Network::new(seed);
            net.place(Arc::new(d), profiles::maryland());
            let mut m = Mediator::from_source(
                "
                p(A, B) :- in(B, d1:p_bf(A)).
                p(A, B) :- in(A, d1:p_fb(B)).
                p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
                q(A, B) :- in(B, d1:q_bf(A)).
                q(A, B) :- in(A, d1:q_fb(B)).
                q(A, B) :- in(Ans, d1:q_ff()) & =(Ans.a, A) & =(Ans.b, B).
                join(X, Y, Z) :- p(X, Y) & q(Z, Y).
                ",
                net,
            )
            .unwrap();
            m.caches()
                .policy()
                .routing(CimPolicy::never())
                .apply()
                .unwrap();
            m
        };
        let planner = build();
        let planned = planner.plan("?- join('p_1', Y, Z).").unwrap();
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for i in 0..planned.plans.len() {
            let mut m = build();
            let single = hermes::core::Planned {
                plans: vec![planned.plans[i].clone()],
                estimates: vec![planned.estimates[i]],
                chosen: 0,
            };
            let out = m.execute(single, None).unwrap();
            assert!(out.t_first.map(|f| f <= out.t_all).unwrap_or(true));
            let mut rows = out.rows;
            rows.sort();
            rows.dedup();
            match &reference {
                None => reference = Some(rows),
                Some(reference) => {
                    assert_eq!(&rows, reference, "plan {} disagrees (seed {seed})", i)
                }
            }
        }
    });
}

// ---------- binary frame codec (hermes-serve's wire format) ----------

fn query_frame(r: &mut Rng64) -> hermes::QueryFrame {
    let mut q = hermes::QueryFrame::new(lower_string(r, 0, 24));
    if r.chance(0.5) {
        q.limit = Some(r.range_u64(0, 1 << 20));
    }
    if r.chance(0.5) {
        q.deadline_us = Some(r.next_u64() >> 20);
    }
    if r.chance(0.5) {
        q.budget_us = Some(r.next_u64() >> 20);
    }
    if r.chance(0.3) {
        q.tier = Some(lower_string(r, 1, 12));
    }
    q.trace = r.chance(0.5);
    q
}

fn any_frame(r: &mut Rng64) -> hermes::Frame {
    use hermes::Frame;
    match r.range_usize(0, 9) {
        0 => Frame::Query(query_frame(r)),
        1 => Frame::Stats,
        2 => Frame::Ping,
        3 => Frame::Shutdown,
        4 => {
            let rows = r.range_usize(0, 5);
            Frame::Batch(
                (0..rows)
                    .map(|_| {
                        let cols = r.range_usize(0, 4);
                        (0..cols).map(|_| value(r)).collect()
                    })
                    .collect(),
            )
        }
        5 => Frame::Done(hermes::DoneFrame {
            columns: (0..r.range_usize(0, 4)).map(|_| var_name(r)).collect(),
            rows: r.range_u64(0, 1 << 30),
            incomplete: r.chance(0.3),
            elapsed_us: r.next_u64() >> 16,
            source_calls: r.range_u64(0, 1 << 20),
            cache_hits: r.range_u64(0, 1 << 20),
            tier_downgrades: r.range_u64(0, 4),
            trace: (0..r.range_usize(0, 3))
                .map(|_| lower_string(r, 0, 16))
                .collect(),
        }),
        6 => Frame::Error(hermes::ErrorFrame {
            code: lower_string(r, 1, 10),
            message: lower_string(r, 0, 32),
        }),
        7 => Frame::StatsReply(value(r)),
        _ => Frame::Pong,
    }
}

#[test]
fn frame_binary_value_codec_roundtrips_any_value() {
    cases(
        "frame_binary_value_codec_roundtrips_any_value",
        CASES,
        |r| {
            let v = value(r);
            let bytes = hermes::common::frame::value_to_bytes(&v);
            let back = hermes::common::frame::value_from_bytes(&bytes).unwrap();
            assert_eq!(back, v);
        },
    );
}

#[test]
fn wire_call_string_codec_roundtrips_any_call() {
    cases("wire_call_string_codec_roundtrips_any_call", CASES, |r| {
        let c = ground_call(r);
        let text = hermes::common::wire::call_to_string(&c);
        let back = hermes::common::wire::call_from_str(&text).unwrap();
        assert_eq!(back, c);
    });
}

#[test]
fn any_frame_roundtrips_through_the_stream_codec() {
    cases(
        "any_frame_roundtrips_through_the_stream_codec",
        CASES,
        |r| {
            let frame = any_frame(r);
            let bytes = frame.encode();
            let mut cursor = std::io::Cursor::new(bytes);
            let back = hermes::Frame::read_from(&mut cursor)
                .expect("well-formed frame decodes")
                .expect("not EOF");
            assert_eq!(back, frame);
            // Nothing left over: a second read sees clean EOF.
            assert!(hermes::Frame::read_from(&mut cursor).unwrap().is_none());
        },
    );
}

/// Corrupting or truncating a valid frame must yield an error (or, for
/// lucky corruptions, a different valid frame) — never a panic, hang,
/// or giant allocation.
#[test]
fn mutated_frames_never_panic_the_decoder() {
    cases("mutated_frames_never_panic_the_decoder", CASES, |r| {
        let mut bytes = any_frame(r).encode();
        match r.range_usize(0, 3) {
            0 => {
                // Flip a few random bytes (possibly in the length prefix).
                for _ in 0..r.range_usize(1, 4) {
                    let i = r.range_usize(0, bytes.len());
                    bytes[i] ^= 1 << r.range_u64(0, 8);
                }
            }
            1 => {
                // Truncate mid-frame.
                let keep = r.range_usize(0, bytes.len());
                bytes.truncate(keep);
            }
            _ => {
                // Pure noise.
                let len = r.range_usize(1, 64);
                bytes = (0..len).map(|_| r.next_u64() as u8).collect();
            }
        }
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = hermes::Frame::read_from(&mut cursor); // must return, any Result
    });
}

/// Byte soup into the bare value decoder: errors are fine, panics are not.
#[test]
fn random_bytes_never_panic_the_value_decoder() {
    cases("random_bytes_never_panic_the_value_decoder", CASES, |r| {
        let len = r.range_usize(0, 96);
        let bytes: Vec<u8> = (0..len).map(|_| r.next_u64() as u8).collect();
        let _ = hermes::common::frame::value_from_bytes(&bytes);
    });
}

/// Hostile nesting in the *text* codec: deep `L1;L1;…` input must error
/// at the depth limit instead of overflowing the stack.
#[test]
fn deep_text_nesting_errors_cleanly() {
    cases("deep_text_nesting_errors_cleanly", 8, |r| {
        let depth = hermes::common::wire::MAX_DEPTH + r.range_usize(1, 1000);
        let text = "L1;".repeat(depth) + "N";
        assert!(hermes::common::wire::value_from_str(&text).is_err());
    });
}
