//! Property-based tests over the workspace's core invariants.

use hermes::common::{CallPattern, GroundCall, PatArg, SimInstant};
use hermes::dcsm::{Dcsm, SummaryTable};
use hermes::lang::{parse_rule, BodyAtom, CallTemplate, PredAtom, Rule, Term};
use hermes::Value;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

// ---------- generators ----------

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::str),
    ]
}

fn value() -> impl Strategy<Value = Value> {
    scalar_value().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(("[a-z]{1,4}", inner), 0..4).prop_map(|fields| {
                Value::Record(hermes::common::Record::from_fields(
                    fields,
                ))
            }),
        ]
    })
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn var_name() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}"
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        var_name().prop_map(Term::var),
        any::<i32>().prop_map(|i| Term::constant(i as i64)),
        "[a-z][a-z0-9 ]{0,6}".prop_map(|s| Term::Const(Value::str(s))),
    ]
}

fn ground_call() -> impl Strategy<Value = GroundCall> {
    (
        ident(),
        ident(),
        prop::collection::vec(scalar_value(), 0..4),
    )
        .prop_map(|(d, f, args)| GroundCall::new(d, f, args))
}

fn rule() -> impl Strategy<Value = Rule> {
    let in_atom = (var_name(), ident(), ident(), prop::collection::vec(term(), 0..3))
        .prop_map(|(v, d, f, args)| BodyAtom::In {
            target: Term::var(v),
            call: CallTemplate::new(d, f, args),
        });
    (
        ident(),
        prop::collection::vec(var_name(), 1..3),
        prop::collection::vec(in_atom, 1..4),
    )
        .prop_map(|(name, head_vars, body)| {
            // Make the rule trivially range-restricted by reusing the head
            // vars as in-targets of the first body atoms.
            let mut body = body;
            let n = body.len();
            for (i, hv) in head_vars.iter().enumerate() {
                if let Some(BodyAtom::In { target, .. }) = body.get_mut(i % n) {
                    *target = Term::var(hv.as_str());
                }
            }
            let head = PredAtom::new(
                name,
                head_vars.iter().map(|v| Term::var(v.as_str())).collect(),
            );
            Rule::new(head, body)
        })
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

// ---------- value-model properties ----------

proptest! {
    #[test]
    fn value_order_is_total_and_consistent(a in value(), b in value()) {
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn value_order_is_transitive(a in value(), b in value(), c in value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn value_equals_itself_even_with_nan(a in value()) {
        prop_assert_eq!(a.clone(), a);
    }

    #[test]
    fn size_bytes_is_positive_and_stable(a in value()) {
        prop_assert!(a.size_bytes() >= 1);
        prop_assert_eq!(a.size_bytes(), a.clone().size_bytes());
    }
}

// ---------- parser round-trips ----------

proptest! {
    #[test]
    fn rule_display_reparses_identically(r in rule()) {
        let text = r.to_string();
        let parsed = parse_rule(&text);
        prop_assert!(parsed.is_ok(), "failed to reparse `{}`: {:?}", text, parsed.err());
        prop_assert_eq!(parsed.unwrap(), r);
    }

    #[test]
    fn ground_call_display_is_parseable_as_query(c in ground_call()) {
        let text = format!("?- in(X, {c}).");
        let q = hermes::parse_query(&text);
        prop_assert!(q.is_ok(), "failed on `{text}`: {:?}", q.err());
    }
}

// ---------- call-pattern lattice ----------

proptest! {
    #[test]
    fn blanket_generalizes_everything(c in ground_call()) {
        let full = c.pattern();
        let blanket = c.blanket_pattern();
        prop_assert!(blanket.generalizes(&full));
        prop_assert!(blanket.matches(&c));
        prop_assert!(full.matches(&c));
    }

    #[test]
    fn relaxation_preserves_matching(c in ground_call()) {
        let mut frontier = vec![c.pattern()];
        // Walk the whole relaxation lattice; every pattern must match c.
        while let Some(p) = frontier.pop() {
            prop_assert!(p.matches(&c), "{p} should match {c}");
            prop_assert!(p.generalizes(&c.pattern()));
            for r in p.relaxations() {
                prop_assert!(r.generalizes(&p));
                prop_assert!(!p.generalizes(&r) || p == r);
                frontier.push(r);
            }
        }
    }

    #[test]
    fn generalizes_is_antisymmetric(c in ground_call(), mask in prop::collection::vec(any::<bool>(), 0..4)) {
        let full = c.pattern();
        let mut p = full.clone();
        for (i, drop) in mask.iter().enumerate() {
            if *drop && i < p.args.len() {
                p.args[i] = PatArg::Bound;
            }
        }
        if p.generalizes(&full) && full.generalizes(&p) {
            prop_assert_eq!(p, full);
        }
    }
}

// ---------- cache invariants ----------

proptest! {
    #[test]
    fn cache_respects_budget_and_returns_stored_answers(
        ops in prop::collection::vec((0u8..3, 0i64..20, prop::collection::vec(scalar_value(), 0..6)), 1..60),
        budget in 64usize..2048,
    ) {
        let mut cache = hermes::cim::AnswerCache::with_budget(budget);
        let mut last_inserted: Option<(GroundCall, Vec<Value>)> = None;
        for (op, key, answers) in ops {
            let call = GroundCall::new("d", "f", vec![Value::Int(key)]);
            match op {
                0 => {
                    cache.insert(call.clone(), answers.clone(), true, SimInstant::EPOCH);
                    last_inserted = Some((call, answers));
                }
                1 => {
                    let _ = cache.get(&call);
                }
                _ => {
                    cache.invalidate_domain("other"); // no-op on these keys
                }
            }
            // Budget holds whenever more than one entry exists.
            if cache.len() > 1 {
                prop_assert!(cache.bytes() <= budget, "{} > {budget}", cache.bytes());
            }
            // The most recent insert is always retrievable.
            if let Some((c, a)) = &last_inserted {
                if let Some(e) = cache.peek(c) {
                    prop_assert_eq!(&e.answers, a);
                }
            }
        }
    }
}

// ---------- DCSM summarization invariants ----------

proptest! {
    #[test]
    fn lossless_summary_equals_detail_aggregation(
        observations in prop::collection::vec((0i64..6, 0.1f64..100.0, 0.0f64..40.0), 1..40),
    ) {
        let mut dcsm = Dcsm::new();
        for (arg, t_all, card) in &observations {
            dcsm.record(
                &GroundCall::new("d", "f", vec![Value::Int(*arg)]),
                Some(t_all / 2.0),
                Some(*t_all),
                Some(*card),
                SimInstant::EPOCH,
            );
        }
        let table = SummaryTable::summarize_lossless(dcsm.db(), "d", "f");
        for arg in observations.iter().map(|(a, _, _)| *a) {
            let pattern = CallPattern::new("d", "f", vec![PatArg::Const(Value::Int(arg))]);
            let (detail, n) = dcsm.db().aggregate(&pattern);
            let row = table.lookup(&pattern).expect("row exists for observed arg");
            prop_assert!(n > 0);
            prop_assert!((row.t_all.mean().unwrap() - detail.t_all_ms.unwrap()).abs() < 1e-6);
            prop_assert!((row.card.mean().unwrap() - detail.cardinality.unwrap()).abs() < 1e-6);
            prop_assert_eq!(row.l as usize, n);
        }
    }

    #[test]
    fn lossy_derivation_equals_direct_blanket_aggregation(
        observations in prop::collection::vec((0i64..6, 0.1f64..100.0), 2..40),
    ) {
        let mut dcsm = Dcsm::new();
        for (arg, t_all) in &observations {
            dcsm.record(
                &GroundCall::new("d", "f", vec![Value::Int(*arg)]),
                None,
                Some(*t_all),
                Some(1.0),
                SimInstant::EPOCH,
            );
        }
        let lossless = SummaryTable::summarize_lossless(dcsm.db(), "d", "f");
        let lossy = lossless
            .derive_lossy(hermes::common::PatternShape::new("d", "f", vec![false]))
            .unwrap();
        let blanket = CallPattern::new("d", "f", vec![PatArg::Bound]);
        let (detail, _) = dcsm.db().aggregate(&blanket);
        let row = lossy.lookup(&blanket).unwrap();
        prop_assert!((row.t_all.mean().unwrap() - detail.t_all_ms.unwrap()).abs() < 1e-6);
    }
}

// ---------- wire codec & persistence round-trips ----------

proptest! {
    #[test]
    fn wire_codec_roundtrips_any_value(v in value()) {
        let text = hermes::common::wire::value_to_string(&v);
        prop_assert!(!text.contains('\n'));
        let back = hermes::common::wire::value_from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn wire_codec_roundtrips_any_call(c in ground_call()) {
        let mut text = String::new();
        hermes::common::wire::encode_call(&c, &mut text);
        let mut d = hermes::common::wire::Decoder::new(&text);
        prop_assert_eq!(d.call().unwrap(), c);
        prop_assert!(d.is_done());
    }

    #[test]
    fn cache_persistence_roundtrips(
        entries in prop::collection::vec(
            (ground_call(), prop::collection::vec(value(), 0..5), any::<bool>()),
            0..12,
        ),
    ) {
        let mut cache = hermes::cim::AnswerCache::new();
        for (call, answers, complete) in &entries {
            cache.insert(call.clone(), answers.clone(), *complete, SimInstant::EPOCH);
        }
        let mut buf = Vec::new();
        hermes::cim::persist::save(&cache, &mut buf).unwrap();
        let loaded = hermes::cim::persist::load(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(loaded.len(), cache.len());
        for (call, entry) in cache.iter() {
            let got = loaded.peek(call).expect("entry survives");
            prop_assert_eq!(&got.answers, &entry.answers);
            prop_assert_eq!(got.complete, entry.complete);
        }
    }

    #[test]
    fn stats_persistence_roundtrips(
        records in prop::collection::vec(
            (ground_call(), prop::option::of(0.0f64..1e6), prop::option::of(0.0f64..1e6), prop::option::of(0.0f64..1e4)),
            0..20,
        ),
    ) {
        let mut db = hermes::dcsm::CostVectorDb::new();
        for (call, tf, ta, card) in &records {
            db.record(
                call.clone(),
                hermes::dcsm::CostVector { t_first_ms: *tf, t_all_ms: *ta, cardinality: *card },
                SimInstant::EPOCH,
            );
        }
        let mut buf = Vec::new();
        hermes::dcsm::persist::save(&db, &mut buf).unwrap();
        let loaded = hermes::dcsm::persist::load(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(loaded.len(), db.len());
        for (domain, function) in db.functions() {
            prop_assert_eq!(
                loaded.records_for(&domain, &function),
                db.records_for(&domain, &function)
            );
        }
    }
}

// ---------- whole-pipeline properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn every_plan_computes_the_same_answers(seed in 0u64..500) {
        use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
        use hermes::net::profiles;
        use hermes::{CimPolicy, Mediator, Network};
        use std::sync::Arc;

        let build = || {
            let d = SyntheticDomain::generate(
                "d1",
                seed,
                &[RelationSpec::uniform("p", 6, 2.0), RelationSpec::uniform("q", 6, 2.0)],
            );
            let mut net = Network::new(seed);
            net.place(Arc::new(d), profiles::maryland());
            let mut m = Mediator::from_source(
                "
                p(A, B) :- in(B, d1:p_bf(A)).
                p(A, B) :- in(A, d1:p_fb(B)).
                p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
                q(A, B) :- in(B, d1:q_bf(A)).
                q(A, B) :- in(A, d1:q_fb(B)).
                q(A, B) :- in(Ans, d1:q_ff()) & =(Ans.a, A) & =(Ans.b, B).
                join(X, Y, Z) :- p(X, Y) & q(Z, Y).
                ",
                net,
            ).unwrap();
            m.set_policy(CimPolicy::never());
            m
        };
        let planner = build();
        let planned = planner.plan("?- join('p_1', Y, Z).").unwrap();
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for i in 0..planned.plans.len() {
            let mut m = build();
            let single = hermes::core::Planned {
                plans: vec![planned.plans[i].clone()],
                estimates: vec![planned.estimates[i]],
                chosen: 0,
            };
            let out = m.execute(single, None).unwrap();
            prop_assert!(out.t_first.map(|f| f <= out.t_all).unwrap_or(true));
            let mut rows = out.rows;
            rows.sort();
            rows.dedup();
            match &reference {
                None => reference = Some(rows),
                Some(r) => prop_assert_eq!(&rows, r, "plan {} disagrees", i),
            }
        }
    }
}
