//! Loopback integration of the network serving stack through the root
//! crate's public API: `NetServer` + `WireClient` end to end, including
//! concurrent clients, gate sheds on the wire, and graceful shutdown.

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::net::profiles;
use hermes::{
    GateConfig, HermesError, Mediator, NetServer, Network, QueryFrame, ServeConfig, Value,
    WireClient,
};
use std::sync::Arc;
use std::time::Duration;

fn world() -> Mediator {
    let domain = SyntheticDomain::generate("d1", 9, &[RelationSpec::uniform("p", 16, 2.0)]);
    let mut net = Network::new(9);
    net.place(Arc::new(domain), profiles::maryland());
    Mediator::from_source(
        "
        item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        item(A, B) :- in(B, d1:p_bf(A)).
        ",
        net,
    )
    .unwrap()
}

fn start() -> (NetServer, String) {
    let server = Arc::new(world().to_concurrent(4));
    let net = NetServer::bind(server, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = net.addr().to_string();
    (net, addr)
}

#[test]
fn concurrent_clients_all_get_the_right_answers() {
    let (net, addr) = start();
    let mut expected = world().query("?- item(A, B).").unwrap().rows;
    expected.sort();

    std::thread::scope(|s| {
        for _ in 0..4 {
            let addr = addr.clone();
            let expected = expected.clone();
            s.spawn(move || {
                let mut client = WireClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
                for _ in 0..5 {
                    let got = client.query(QueryFrame::new("?- item(A, B).")).unwrap();
                    let mut rows = got.rows;
                    rows.sort();
                    assert_eq!(rows, expected);
                }
            });
        }
    });

    let stats = net.shutdown();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.requests, 20);
    assert_eq!(stats.bad_frames, 0);
}

#[test]
fn limits_deadlines_and_traces_travel_with_the_frame() {
    let (net, addr) = start();
    let mut client = WireClient::connect(&addr).unwrap();

    let mut q = QueryFrame::new("?- item(A, B).");
    q.limit = Some(3);
    let got = client.query(q).unwrap();
    assert!(got.rows.len() <= 3, "limit must cap the answer set");

    let mut q = QueryFrame::new("?- item('p_1', B).");
    q.trace = true;
    let got = client.query(q).unwrap();
    assert!(
        !got.done.trace.is_empty(),
        "requested trace must come back rendered"
    );

    // A very generous deadline changes nothing.
    let mut q = QueryFrame::new("?- item('p_1', B).");
    q.deadline_us = Some(60_000_000);
    let got = client.query(q).unwrap();
    assert!(!got.done.incomplete);
    net.shutdown();
}

#[test]
fn warm_queries_hit_the_cache_over_the_wire() {
    let (net, addr) = start();
    let mut client = WireClient::connect(&addr).unwrap();
    let cold = client.query(QueryFrame::new("?- item('p_2', B).")).unwrap();
    let warm = client.query(QueryFrame::new("?- item('p_2', B).")).unwrap();
    assert_eq!(cold.rows, warm.rows);
    assert!(cold.done.source_calls >= 1);
    assert_eq!(warm.done.source_calls, 0, "second answer comes from CIM");
    assert!(warm.done.cache_hits >= 1);
    net.shutdown();
}

#[test]
fn gate_shed_reaches_the_client_as_a_shed_error() {
    let (net, addr) = start();
    net.mediator().set_gate(GateConfig::bounded(0));
    let mut client = WireClient::connect(&addr).unwrap();
    let err = client.query(QueryFrame::new("?- item(A, B).")).unwrap_err();
    let HermesError::Shed { reason } = err else {
        panic!("expected a shed, got {err:?}");
    };
    assert_eq!(reason, "gate-full");
    // Stats must agree with what the client saw.
    let stats = client.stats().unwrap();
    let Value::Record(rec) = &stats else {
        panic!("stats is not a record");
    };
    let Some(Value::Record(server)) = rec.get("server") else {
        panic!("no server section");
    };
    assert_eq!(server.get("shed"), Some(&Value::Int(1)));
    net.shutdown();
}

#[test]
fn client_driven_shutdown_drains_cleanly() {
    let (net, addr) = start();
    let mut client = WireClient::connect(&addr).unwrap();
    client.query(QueryFrame::new("?- item('p_3', B).")).unwrap();
    client.shutdown_server().unwrap();
    let stats = net.wait();
    assert_eq!(stats.requests, 2);
}
