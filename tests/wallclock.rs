//! Wall-clock serving semantics: deadlines, budgets, and tier
//! downgrades must bind to *real* elapsed time when a
//! [`hermes::ConcurrentMediator`] serves in wall mode, with the same
//! observable semantics (error types, provenance gaps, trace reason
//! codes) as the paper-exact simulated-clock path.
//!
//! Sources sit behind [`SlowDomain`] so every real call costs real
//! milliseconds — on the wall clock that is the *only* time that
//! exists, exactly what a network client experiences.

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::SlowDomain;
use hermes::net::profiles;
use hermes::{
    ConcurrentMediator, HermesError, IncompleteReason, Mediator, Network, QueryRequest, SimDuration,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A world where `?- chain(A, B).` needs 1 + 8 sequential source calls,
/// each costing `delay` of real time.
fn slow_world(delay: Duration) -> Mediator {
    let domain = SyntheticDomain::generate(
        "d1",
        42,
        &[
            RelationSpec::uniform("p", 8, 2.0),
            RelationSpec::uniform("r", 8, 2.0),
        ],
    );
    let mut net = Network::new(1);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(domain), delay)),
        profiles::cornell(),
    );
    Mediator::from_source(
        "
        item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        chain(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & in(B, d1:r_bf(A)).
        ",
        net,
    )
    .unwrap()
}

fn wall_server(delay: Duration) -> ConcurrentMediator {
    let server = slow_world(delay).to_concurrent(2);
    server.set_wall_clock(true);
    server
}

#[test]
fn wall_deadline_aborts_in_bounded_wall_time() {
    let server = wall_server(Duration::from_millis(100));
    // ~900ms of sequential source time against a 150ms deadline: the
    // abort must come from the wall clock, in bounded real time.
    let req = QueryRequest::new("?- chain(A, B).").deadline(SimDuration::from_millis(150));
    let start = Instant::now();
    let out = server.query(req);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not bind to wall time: took {elapsed:?}"
    );
    match out {
        Err(HermesError::DeadlineExceeded { .. }) => {}
        Ok(result) => {
            assert!(result.incomplete, "past-deadline answers must be partial");
            assert!(
                result
                    .provenance
                    .iter()
                    .any(|p| p.gaps.contains(&IncompleteReason::DeadlineExceeded)),
                "partial result must carry DeadlineExceeded provenance: {:?}",
                result.provenance
            );
            assert!(result.stats.deadline_aborts >= 1);
        }
        Err(e) => panic!("unexpected error: {e:?}"),
    }
}

#[test]
fn generous_wall_deadline_leaves_results_complete() {
    let server = wall_server(Duration::from_millis(1));
    let req = QueryRequest::new("?- chain(A, B).").deadline(SimDuration::from_secs(60));
    let result = server.query(req).unwrap();
    assert!(!result.incomplete);
    assert_eq!(result.stats.deadline_aborts, 0);
}

/// Extract downgrade lines from a rendered trace, with the timestamp
/// prefix stripped (virtual and wall timestamps legitimately differ;
/// the transition and its reason code must not).
fn downgrade_lines(trace: &[hermes::core::TraceEntry]) -> Vec<String> {
    hermes::core::trace::render(trace)
        .lines()
        .filter(|l| l.contains("DGRD"))
        .map(|l| {
            l.split_once("] ")
                .map(|(_, rest)| rest)
                .unwrap_or(l)
                .to_string()
        })
        .collect()
}

#[test]
fn budget_downgrade_reason_codes_match_the_sim_clock_path() {
    // The same world twice: one server on virtual time, one on the wall.
    let sim = slow_world(Duration::from_millis(40)).to_concurrent(2);
    let wall = wall_server(Duration::from_millis(40));

    // Pin the tier to `full` so the 1ms budget cannot fire the
    // selection-time budget rule — it must run out *mid-execution*,
    // exercising the fail-soft downgrade path on both clocks.
    let req = || {
        QueryRequest::new("?- chain(A, B).")
            .budget(SimDuration::from_millis(1))
            .tier(hermes::PlanTier::Full)
            .trace(true)
    };
    let sim_out = sim.query(req()).unwrap();
    let wall_out = wall.query(req()).unwrap();

    let sim_dgrd = downgrade_lines(&sim_out.trace);
    let wall_dgrd = downgrade_lines(&wall_out.trace);
    assert!(
        !sim_dgrd.is_empty() && !wall_dgrd.is_empty(),
        "a 1ms budget against 40ms calls must downgrade on both clocks \
         (sim: {sim_dgrd:?}, wall: {wall_dgrd:?})"
    );
    // The reason code is the contract: both clocks must report the same
    // machine-readable cause, not merely "some" downgrade.
    for lines in [&sim_dgrd, &wall_dgrd] {
        for line in lines.iter() {
            assert!(
                line.contains("(budget-pressure)"),
                "downgrade without the budget-pressure reason code: {line}"
            );
        }
    }
    // And the first transition is identical text on both clocks.
    assert_eq!(sim_dgrd[0], wall_dgrd[0]);
    assert!(sim_out.stats.tier_downgrades >= 1);
    assert!(wall_out.stats.tier_downgrades >= 1);
}

#[test]
fn wall_and_sim_clocks_agree_on_answers() {
    let sim = slow_world(Duration::from_millis(1)).to_concurrent(2);
    let wall = wall_server(Duration::from_millis(1));
    let mut expect = sim.query("?- item(A, B).").unwrap().rows;
    let mut got = wall.query("?- item(A, B).").unwrap().rows;
    expect.sort();
    got.sort();
    assert_eq!(got, expect, "the clock must never change the answers");
}

#[test]
fn sim_clock_path_stays_deterministic() {
    // Two fresh sim-mode servers must report bit-identical virtual
    // timings — the wall-clock feature may not leak into the default.
    let a = slow_world(Duration::from_millis(1)).to_concurrent(2);
    let b = slow_world(Duration::from_millis(1)).to_concurrent(2);
    assert!(!a.wall_clock());
    let ra = a.query("?- item(A, B).").unwrap();
    let rb = b.query("?- item(A, B).").unwrap();
    assert_eq!(ra.t_all, rb.t_all);
    assert_eq!(ra.t_first, rb.t_first);
    assert_eq!(ra.rows, rb.rows);
}

#[test]
fn wall_retry_backoff_waits_real_time() {
    // A world with an unavailable site: with retries configured, wall
    // mode must *really* wait the backoff out (bounded here), while sim
    // mode only advances virtual time. We just pin down that the wall
    // query returns (no hang) and reports the failure.
    let domain = SyntheticDomain::generate("d1", 42, &[RelationSpec::uniform("p", 4, 2.0)]);
    let mut net = Network::new(1);
    let mut site = profiles::cornell();
    site.link.failure_rate = 1.0; // never reachable
    net.place(Arc::new(domain), site);
    let mut m = Mediator::from_source("item(A, B) :- in(B, d1:p_bf(A)).", net).unwrap();
    m.config_mut().exec.retry_attempts = 2;
    m.config_mut().exec.retry_backoff_ms = 50.0;
    let server = m.to_concurrent(2);
    server.set_wall_clock(true);
    let start = Instant::now();
    let out = server.query("?- item('p_1', B).");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(40),
        "wall-mode backoff should really wait (took {elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "retry backoff must be bounded in wall mode"
    );
    // An Err (unavailable) is also acceptable; a success must have gaps.
    if let Ok(result) = out {
        assert!(result.incomplete, "unreachable site must leave gaps");
    }
}
