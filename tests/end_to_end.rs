//! Full-stack integration tests: program text → plans → execution over the
//! simulated network, across all substrate domains.

use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::spatial::{uniform_points, SpatialDomain};
use hermes::domains::terrain::{demo_map, TerrainDomain};
use hermes::domains::video::gen::{rope_store, ROPE_CAST};
use hermes::net::profiles;
use hermes::{Mediator, Network, Value};
use std::sync::Arc;

fn cast_table() -> Table {
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap(),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .unwrap();
    }
    cast
}

fn rope_mediator(seed: u64) -> Mediator {
    let relation = RelationalDomain::new("relation");
    relation.add_table(cast_table());
    let mut net = Network::new(seed);
    net.place(Arc::new(rope_store()), profiles::cornell());
    net.place(relation, profiles::maryland());
    Mediator::from_source(
        "
        scene_actors(F, L, Object, Actor) :-
            in(Object, video:frames_to_objects('rope', F, L)) &
            in(Tuple, relation:select_eq('cast', 'role', Object)) &
            =(Tuple.name, Actor).

        movie_size(V, S) :- in(S, video:video_size(V)).
        ",
        net,
    )
    .unwrap()
}

#[test]
fn video_relational_join_returns_cast_members() {
    let mut m = rope_mediator(1);
    let result = m.query("?- scene_actors(0, 935, O, A).").unwrap();
    // Every cast member appears somewhere in the film; props have no
    // matching cast row and are filtered by the join.
    assert_eq!(result.rows.len(), ROPE_CAST.len());
    let actors: Vec<String> = result.rows.iter().map(|r| r[1].to_string()).collect();
    assert!(actors.contains(&"james stewart".to_string()));
    assert!(actors.contains(&"dick hogan".to_string()));
}

#[test]
fn narrow_scene_excludes_late_arrivals() {
    let mut m = rope_mediator(2);
    let result = m.query("?- scene_actors(4, 47, O, A).").unwrap();
    let objects: Vec<String> = result.rows.iter().map(|r| r[0].to_string()).collect();
    // kenneth enters at frame 110.
    assert!(!objects.contains(&"kenneth".to_string()));
    assert!(objects.contains(&"brandon".to_string()));
}

#[test]
fn all_candidate_plans_agree_on_answers() {
    let m = rope_mediator(3);
    let planned = m.plan("?- scene_actors(4, 127, O, A).").unwrap();
    assert!(!planned.plans.is_empty());
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for i in 0..planned.plans.len() {
        let mut m2 = rope_mediator(3);
        let single = hermes::core::Planned {
            plans: vec![planned.plans[i].clone()],
            estimates: vec![planned.estimates[i]],
            chosen: 0,
        };
        let mut rows = m2.execute(single, None).unwrap().rows;
        rows.sort();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(&rows, r, "plan {i} disagrees"),
        }
    }
}

#[test]
fn movie_size_scalar_answer() {
    let mut m = rope_mediator(4);
    let result = m.query("?- movie_size('rope', S).").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][0], Value::Int(936 * 3_580));
}

#[test]
fn four_domain_federation_runs() {
    // relational + video + spatial + terrain in one program.
    let relation = RelationalDomain::new("relation");
    relation.add_table(cast_table());
    let spatial = SpatialDomain::new("spatial");
    spatial.load_points("sites", uniform_points(5, 200, 100.0), 10.0);
    let terrain = TerrainDomain::new("terraindb", demo_map());

    let mut net = Network::new(5);
    net.place(Arc::new(rope_store()), profiles::italy());
    net.place(relation, profiles::cornell());
    net.place_local(Arc::new(spatial));
    net.place_local(Arc::new(terrain));

    let mut m = Mediator::from_source(
        "
        briefing(Actor, NSites, Route) :-
            in(Tuple, relation:select_eq('cast', 'role', 'rupert')) &
            =(Tuple.name, Actor) &
            in(NSites, spatial:count_range('sites', 50, 50, 25)) &
            in(Route, terraindb:findrte('place1', 'aberdeen')).
        ",
        net,
    )
    .unwrap();
    let result = m.query("?- briefing(A, N, R).").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0][0], Value::str("james stewart"));
    assert!(result.rows[0][1].as_int().unwrap() > 0);
    assert!(matches!(result.rows[0][2], Value::List(_)));
}

#[test]
fn remote_placement_slows_queries_proportionally() {
    let place = |site: hermes::Site| {
        let mut net = Network::new(9);
        net.place(Arc::new(rope_store()), site);
        let mut m = Mediator::from_source(
            "objs(O) :- in(O, video:frames_to_objects('rope', 4, 47)).",
            net,
        )
        .unwrap();
        m.query("?- objs(O).").unwrap().t_all
    };
    let md = place(profiles::maryland());
    let co = place(profiles::cornell());
    let it = place(profiles::italy());
    assert!(co > md, "cornell {co} <= maryland {md}");
    assert!(it > co * 3, "italy {it} not ≫ cornell {co}");
}

#[test]
fn cache_survives_source_outage() {
    use hermes::{SimDuration, SimInstant};
    let mut net = Network::new(6);
    // Site goes down 1 virtual minute in, for an hour.
    let down_from = SimInstant::EPOCH + SimDuration::from_secs(60);
    let down_to = SimInstant::EPOCH + SimDuration::from_secs(3660);
    net.place(
        Arc::new(rope_store()),
        profiles::cornell().with_outage(down_from, down_to),
    );
    let mut m = Mediator::from_source(
        "objs(O) :- in(O, video:frames_to_objects('rope', 4, 47)).",
        net,
    )
    .unwrap();
    // Query while the site is up: populates the cache.
    let warm = m.query("?- objs(O).").unwrap();
    // Jump into the outage window.
    m.advance_clock(SimDuration::from_secs(120));
    let during = m.query("?- objs(O).").unwrap();
    assert_eq!(during.rows, warm.rows);
    assert!(!during.incomplete);
    assert_eq!(during.stats.actual_calls, 0);
    // A *different* query cannot be served and fails.
    let err = m.query("?- objs2(O) & objs(O).");
    assert!(err.is_err()); // undefined predicate → no plan
    let err2 = m
        .query("?- in(O, video:frames_to_objects('rope', 200, 300)).")
        .unwrap_err();
    assert!(matches!(err2, hermes::HermesError::Unavailable { .. }));
}

#[test]
fn direct_in_goals_work_in_queries() {
    // Queries may call domains directly without an IDB wrapper.
    let mut net = Network::new(7);
    net.place_local(Arc::new(rope_store()));
    let mut m = Mediator::from_source("", net).unwrap();
    let result = m
        .query("?- in(S, video:video_size('rope')) & >(S, 1000000).")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
}

#[test]
fn unknown_domain_is_reported_at_execution() {
    let net = Network::new(8);
    let mut m = Mediator::from_source("", net).unwrap();
    let err = m.query("?- in(X, ghost:f()).").unwrap_err();
    assert!(matches!(err, hermes::HermesError::UnknownDomain(_)));
}

#[test]
fn statistics_improve_estimates_over_time() {
    let mut m = rope_mediator(10);
    let cold = m.plan("?- scene_actors(4, 47, O, A).").unwrap();
    let cold_est = cold.estimate().t_all_ms.unwrap();
    m.query("?- scene_actors(4, 47, O, A).").unwrap();
    // Clear the answer cache so the second run re-executes, but keep the
    // statistics: the *estimate* should now be grounded in observation.
    m.caches().clear(hermes::CacheTier::Answers);
    let warm = m.plan("?- scene_actors(4, 47, O, A).").unwrap();
    let warm_est = warm.estimate().t_all_ms.unwrap();
    let actual = m.query("?- scene_actors(4, 47, O, A).").unwrap();
    let actual_ms = actual.t_all.as_millis_f64();
    let err = |est: f64| (est - actual_ms).abs() / actual_ms;
    assert!(
        err(warm_est) < err(cold_est),
        "warm estimate {warm_est} should beat cold {cold_est} against actual {actual_ms}"
    );
}
