//! Equivalence of the indexed lookup paths (PR 4) with their retained
//! naive references, over randomized caches and statistics databases.
//!
//! * CIM: `InvariantStore::find_hits` / `substitutes` (posting lists,
//!   ordered-index range probes, ground probes) must return the same hit
//!   sets as `find_hits_naive` / `substitutes_naive` (full cache scan).
//! * DCSM: `CostVectorDb::aggregate` (shape-keyed cells) must return
//!   *bitwise*-identical averages to `aggregate_scan` — plan choices hang
//!   off these floats, so approximate equality is not enough.
//!
//! Generators follow the `property.rs` idiom: hand-rolled over the seeded
//! in-tree [`Rng64`]; every case is reproducible from the test name.

use hermes::cim::{AnswerCache, InvariantHit, InvariantStore};
use hermes::common::{CallPattern, GroundCall, PatArg, Rng64, SimDuration, SimInstant};
use hermes::dcsm::{CostVector, CostVectorDb};
use hermes::lang::parse_invariant;
use hermes::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn cases(test_name: &str, n: u64, mut body: impl FnMut(&mut Rng64)) {
    for case in 0..n {
        let mut name_hash = DefaultHasher::new();
        test_name.hash(&mut name_hash);
        let mut rng = Rng64::new(name_hash.finish() ^ case.wrapping_mul(0x9E3779B97F4A7C15));
        body(&mut rng);
    }
}

// ---------- CIM: find_hits / substitutes vs the naive scan ----------

/// A pool exercising every probe plan the classifier can produce:
/// ordered-index range probes (`<=`, and `=` via the k/k5 pair), ground
/// equality probes, posting scans (two free variables in the video
/// invariant), and the posting fallback for a non-contiguous `!=` range.
fn invariant_pool() -> InvariantStore {
    let mut s = InvariantStore::new();
    for text in [
        "V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).",
        "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
        "=> d:f(X) = d:g(X).",
        "F2 <= F1 & L1 <= L2 =>
         video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
        "V1 != 7 => d:j(T, V1) <= d:jall(T).",
        "V1 = 5 => d:k(T, V1) = d:k5(T).",
    ] {
        s.add(parse_invariant(text).unwrap()).unwrap();
    }
    s
}

/// Calls overlapping the invariant pool's templates (plus unrelated noise),
/// drawn from small value ranges so random caches collide with probes.
fn pool_call(r: &mut Rng64) -> GroundCall {
    match r.range_usize(0, 9) {
        0 | 1 => GroundCall::new(
            "rel",
            "select_lt",
            vec![
                Value::str(format!("t{}", r.range_u64(0, 3))),
                Value::str(if r.chance(0.5) { "qty" } else { "weight" }),
                Value::Int(r.range_i64(0, 30)),
            ],
        ),
        2 => GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str(if r.chance(0.7) { "points" } else { "grid" }),
                Value::Int(r.range_i64(0, 2)),
                Value::Int(r.range_i64(0, 2)),
                Value::Int(if r.chance(0.4) {
                    142
                } else {
                    r.range_i64(100, 200)
                }),
            ],
        ),
        3 => GroundCall::new("d", "f", vec![Value::Int(r.range_i64(0, 6))]),
        4 => GroundCall::new("d", "g", vec![Value::Int(r.range_i64(0, 6))]),
        5 => GroundCall::new(
            "video",
            "frames_to_objects",
            vec![
                Value::str(format!("v{}", r.range_u64(0, 2))),
                Value::Int(r.range_i64(0, 10)),
                Value::Int(r.range_i64(10, 20)),
            ],
        ),
        6 => {
            if r.chance(0.5) {
                GroundCall::new(
                    "d",
                    "j",
                    vec![Value::str("t"), Value::Int(r.range_i64(0, 10))],
                )
            } else {
                GroundCall::new("d", "jall", vec![Value::str("t")])
            }
        }
        7 => {
            if r.chance(0.5) {
                GroundCall::new(
                    "d",
                    "k",
                    vec![Value::str("t"), Value::Int(r.range_i64(0, 8))],
                )
            } else {
                GroundCall::new("d", "k5", vec![Value::str("t")])
            }
        }
        _ => GroundCall::new("noise", "fn", vec![Value::Int(r.range_i64(0, 4))]),
    }
}

fn random_cache(r: &mut Rng64, store: &InvariantStore) -> AnswerCache {
    let mut cache = AnswerCache::new();
    // Half the cases register the ordered indexes (exercising the range
    // probes); the other half exercise the posting-list fallback.
    if r.chance(0.5) {
        for (d, f, pos) in store.ordered_index_specs() {
            cache.register_ordered_index(d, f, pos);
        }
    }
    let n = r.range_usize(0, 60);
    for i in 0..n {
        let call = pool_call(r);
        let answers: Vec<Value> = (0..r.range_usize(0, 4))
            .map(|_| Value::Int(r.range_i64(0, 100)))
            .collect();
        // Distinct insertion times keep the freshness sort deterministic.
        cache.insert(
            call,
            answers,
            r.chance(0.7),
            SimInstant::EPOCH + SimDuration::from_micros(i as u64),
        );
    }
    cache
}

fn hit_key(h: &InvariantHit) -> (bool, GroundCall, usize) {
    match h {
        InvariantHit::Equal { cached, invariant } => (true, cached.clone(), *invariant),
        InvariantHit::Partial { cached, invariant } => (false, cached.clone(), *invariant),
    }
}

#[test]
fn indexed_find_hits_matches_naive_reference() {
    let store = invariant_pool();
    cases("indexed_find_hits_matches_naive_reference", 96, |r| {
        let cache = random_cache(r, &store);
        for _ in 0..8 {
            let probe = pool_call(r);
            let indexed = store.find_hits(&probe, &cache);
            let naive = store.find_hits_naive(&probe, &cache);
            // The §4.1 preference must survive indexing: if any equality
            // hit exists, both paths lead with one.
            assert_eq!(
                indexed.first().map(InvariantHit::is_equal),
                naive.first().map(InvariantHit::is_equal),
                "lead hit kind diverged for {probe}"
            );
            // Hit sets must be identical (order among equal sort keys is
            // representation-dependent, so compare canonically sorted).
            let mut a: Vec<_> = indexed.iter().map(hit_key).collect();
            let mut b: Vec<_> = naive.iter().map(hit_key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "hit sets diverged for {probe}");
        }
    });
}

#[test]
fn indexed_substitutes_matches_naive_reference() {
    let store = invariant_pool();
    cases("indexed_substitutes_matches_naive_reference", 128, |r| {
        let probe = pool_call(r);
        // Substitutes are cache-independent and deterministically ordered:
        // exact (ordered) equality is required, not just set equality.
        assert_eq!(
            store.substitutes(&probe),
            store.substitutes_naive(&probe),
            "substitutes diverged for {probe}"
        );
    });
}

#[test]
fn indexed_hits_survive_eviction_and_invalidation() {
    // Posting lists and ordered indexes must stay coherent with entry
    // removal: after invalidation, the indexed path must agree with the
    // naive scan (which only sees `entries`).
    let store = invariant_pool();
    cases("indexed_hits_survive_eviction_and_invalidation", 48, |r| {
        let mut cache = random_cache(r, &store);
        match r.range_usize(0, 3) {
            0 => {
                cache.invalidate_domain("rel");
            }
            1 => {
                cache.invalidate_domain("d");
                cache.invalidate_domain("spatial");
            }
            _ => {
                // Age half the entries out.
                cache.expire(
                    SimInstant::EPOCH + SimDuration::from_micros(30),
                    SimDuration::from_micros(10),
                );
            }
        }
        for _ in 0..6 {
            let probe = pool_call(r);
            let mut a: Vec<_> = store
                .find_hits(&probe, &cache)
                .iter()
                .map(hit_key)
                .collect();
            let mut b: Vec<_> = store
                .find_hits_naive(&probe, &cache)
                .iter()
                .map(hit_key)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "hit sets diverged after removal for {probe}");
        }
    });
}

// ---------- DCSM: shape-indexed aggregate vs the linear scan ----------

fn random_record_call(r: &mut Rng64) -> GroundCall {
    let domain = if r.chance(0.5) { "d1" } else { "d2" };
    let function = if r.chance(0.5) { "f" } else { "g" };
    let arity = r.range_usize(0, 4);
    let args: Vec<Value> = (0..arity)
        .map(|_| {
            if r.chance(0.5) {
                Value::Int(r.range_i64(0, 4))
            } else {
                Value::str(format!("{}", (b'a' + r.range_u64(0, 3) as u8) as char))
            }
        })
        .collect();
    GroundCall::new(domain, function, args)
}

fn random_vector(r: &mut Rng64) -> CostVector {
    let maybe = |r: &mut Rng64| {
        if r.chance(0.8) {
            Some(r.range_f64(0.0, 100.0))
        } else {
            None
        }
    };
    CostVector {
        t_first_ms: maybe(r),
        t_all_ms: maybe(r),
        cardinality: maybe(r),
    }
}

fn random_pattern(r: &mut Rng64) -> CallPattern {
    // Reuse the record-call generator so patterns actually match rows.
    let call = random_record_call(r);
    let args: Vec<PatArg> = call
        .args
        .iter()
        .map(|v| {
            if r.chance(0.5) {
                PatArg::Const(v.clone())
            } else {
                PatArg::Bound
            }
        })
        .collect();
    CallPattern::new(call.domain.as_ref(), call.function.as_ref(), args)
}

fn assert_aggregate_bitwise_equal(db: &CostVectorDb, p: &CallPattern) {
    let (iv, in_) = db.aggregate(p);
    let (sv, sn) = db.aggregate_scan(p);
    assert_eq!(in_, sn, "matched count diverged for {p}");
    assert_eq!(
        iv.t_first_ms.map(f64::to_bits),
        sv.t_first_ms.map(f64::to_bits),
        "t_first diverged for {p}"
    );
    assert_eq!(
        iv.t_all_ms.map(f64::to_bits),
        sv.t_all_ms.map(f64::to_bits),
        "t_all diverged for {p}"
    );
    assert_eq!(
        iv.cardinality.map(f64::to_bits),
        sv.cardinality.map(f64::to_bits),
        "cardinality diverged for {p}"
    );
}

#[test]
fn dcsm_indexed_aggregate_matches_scan_on_random_dbs() {
    cases(
        "dcsm_indexed_aggregate_matches_scan_on_random_dbs",
        64,
        |r| {
            let mut db = CostVectorDb::new();
            for _ in 0..r.range_usize(0, 80) {
                db.record(random_record_call(r), random_vector(r), SimInstant::EPOCH);
            }
            let patterns: Vec<CallPattern> = (0..12).map(|_| random_pattern(r)).collect();
            for p in &patterns {
                assert_aggregate_bitwise_equal(&db, p);
            }
            // Interleave more observations: shapes built above must be
            // maintained incrementally, still bitwise-equal to a fresh scan.
            for _ in 0..r.range_usize(1, 30) {
                db.record(random_record_call(r), random_vector(r), SimInstant::EPOCH);
            }
            for p in &patterns {
                assert_aggregate_bitwise_equal(&db, p);
            }
        },
    );
}

#[test]
fn dcsm_drop_function_clears_index_cells() {
    cases("dcsm_drop_function_clears_index_cells", 32, |r| {
        let mut db = CostVectorDb::new();
        for _ in 0..r.range_usize(5, 40) {
            db.record(random_record_call(r), random_vector(r), SimInstant::EPOCH);
        }
        let p = random_pattern(r);
        assert_aggregate_bitwise_equal(&db, &p); // builds the shape
        db.drop_function(&p.domain, &p.function);
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 0, "dropped function still aggregates for {p}");
        assert_eq!(v, CostVector::default());
        assert_aggregate_bitwise_equal(&db, &p);
    });
}
