//! Torture tests for the epoll reactor serving engine: connection
//! scaling far past the worker count, partial-I/O robustness, deadline
//! evictions, pipelining order, bounded-depth sheds, graceful drain,
//! and serial-vs-reactor answer equivalence.
//!
//! Linux-only: on other platforms `ServeMode::Reactor` falls back to
//! the worker pool, and these tests assert reactor-specific behavior.
#![cfg(target_os = "linux")]

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::SlowDomain;
use hermes::net::profiles;
use hermes::{
    Frame, FrameDecoder, HermesError, Mediator, NetServer, Network, QueryFrame, ServeConfig,
    ServeMode, Value, WireClient,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn world() -> Mediator {
    let domain = SyntheticDomain::generate("d1", 9, &[RelationSpec::uniform("p", 16, 2.0)]);
    let mut net = Network::new(9);
    net.place(Arc::new(domain), profiles::maryland());
    Mediator::from_source(
        "
        item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        item(A, B) :- in(B, d1:p_bf(A)).
        ",
        net,
    )
    .unwrap()
}

fn slow_world(delay: Duration) -> Mediator {
    let domain = SyntheticDomain::generate("d1", 9, &[RelationSpec::uniform("p", 16, 2.0)]);
    let mut net = Network::new(9);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(domain), delay)),
        profiles::maryland(),
    );
    Mediator::from_source("item(A, B) :- in(B, d1:p_bf(A)).", net).unwrap()
}

fn reactor(config: ServeConfig) -> (NetServer, String) {
    let server = Arc::new(world().to_concurrent(4));
    let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
    assert_eq!(net.mode(), ServeMode::Reactor);
    let addr = net.addr().to_string();
    (net, addr)
}

#[test]
fn concurrent_open_connections_far_exceed_workers() {
    // 2 workers, 32 live connections: the pool engine would serve 2 and
    // park the rest; the reactor must hold ALL of them open and answer
    // on each. 16× over the worker count clears the ≥4× acceptance bar.
    let workers = 2usize;
    let conns = 32usize;
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .workers(workers)
        .build();
    let (net, addr) = reactor(config);

    let mut clients: Vec<WireClient> = (0..conns)
        .map(|_| WireClient::connect_retry(&addr, Duration::from_secs(5)).unwrap())
        .collect();
    // Every connection is open at once; prove each is live in turn.
    for client in &mut clients {
        client.ping().unwrap();
    }
    let mut expected = world().query("?- item(A, B).").unwrap().rows;
    expected.sort();
    for client in &mut clients {
        let mut rows = client
            .query(QueryFrame::new("?- item(A, B)."))
            .unwrap()
            .rows;
        rows.sort();
        assert_eq!(rows, expected);
    }
    let stats = net.shutdown();
    assert_eq!(stats.accepted, conns as u64);
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.bad_frames, 0);
    assert!(conns >= 4 * workers);
}

#[test]
fn one_byte_reads_and_writes_survive_the_state_machine() {
    // The client dribbles its query one byte at a time and slurps the
    // response one byte at a time: every partial-read re-entry of the
    // decoder and every short-write path must compose to the same
    // answer a well-behaved client gets.
    let (net, addr) = reactor(
        ServeConfig::builder()
            .mode(ServeMode::Reactor)
            .batch_rows(2)
            .build(),
    );
    let mut expected = world().query("?- item(A, B).").unwrap().rows;
    expected.sort();

    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_nodelay(true).unwrap();
    let query = Frame::Query(QueryFrame::new("?- item(A, B).")).encode();
    for byte in &query {
        raw.write_all(std::slice::from_ref(byte)).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_micros(300));
    }

    // Reassemble Batch* + Done from single-byte reads.
    let mut decoder = FrameDecoder::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut one = [0u8; 1];
    'outer: loop {
        match raw.read(&mut one) {
            Ok(0) => panic!("server hung up before Done"),
            Ok(_) => decoder.feed(&one),
            Err(e) => panic!("read failed: {e}"),
        }
        while let Some(frame) = decoder.next_frame().unwrap() {
            match frame {
                Frame::Batch(mut batch) => rows.append(&mut batch),
                Frame::Done(done) => {
                    assert_eq!(done.rows as usize, rows.len());
                    break 'outer;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
    rows.sort();
    assert_eq!(rows, expected);
    let stats = net.shutdown();
    assert_eq!(stats.bad_frames, 0);
}

#[test]
fn slow_loris_connections_are_evicted_on_the_frame_deadline() {
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .frame_timeout(Duration::from_millis(150))
        .idle_poll(Duration::from_millis(20))
        .build();
    let (net, addr) = reactor(config);

    // Two header bytes, then silence: a classic slow loris.
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris.write_all(&[9, 0]).unwrap();

    // The server must hang up within a few frame timeouts.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    let start = Instant::now();
    let hung_up = matches!(loris.read(&mut buf), Ok(0) | Err(_));
    assert!(hung_up, "loris connection should be closed by the server");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "eviction took too long"
    );

    // A healthy client is unaffected before and after.
    let mut client = WireClient::connect(&addr).unwrap();
    client.ping().unwrap();
    let stats = net.shutdown();
    assert_eq!(stats.evicted, 1, "exactly the loris is evicted");
}

#[test]
fn idle_timeout_reclaims_quiet_connections() {
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .idle_timeout(Some(Duration::from_millis(120)))
        .idle_poll(Duration::from_millis(20))
        .build();
    let (net, addr) = reactor(config);

    let mut idle = WireClient::connect(&addr).unwrap();
    idle.ping().unwrap();
    // Go quiet past the idle limit; the server reclaims the slot.
    std::thread::sleep(Duration::from_millis(400));
    let gone = idle.ping().is_err();
    assert!(gone, "idle connection should have been evicted");
    let stats = net.shutdown();
    assert!(stats.evicted >= 1);
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let (net, addr) = reactor(ServeConfig::builder().mode(ServeMode::Reactor).build());
    let mut direct = world();
    let keys: Vec<String> = (0..8).map(|k| format!("p_{k}")).collect();

    let mut client = WireClient::connect(&addr).unwrap();
    for key in &keys {
        client
            .send_query(QueryFrame::new(format!("?- item('{key}', B).")))
            .unwrap();
    }
    // Distinct keys have distinct answer sets, so order mixups would
    // show up as wrong rows, not just reordered rows.
    for key in &keys {
        let mut expected = direct.query(format!("?- item('{key}', B).")).unwrap().rows;
        expected.sort();
        let mut got = client.recv_result().unwrap().rows;
        got.sort();
        assert_eq!(got, expected, "response out of order for {key}");
    }
    net.shutdown();
}

#[test]
fn pipeline_depth_sheds_with_a_typed_error_and_keeps_the_gate_invariant() {
    // 1 worker on slow sources and a depth of 2: a burst of 6 pipelined
    // queries must come back as exactly 6 FIFO responses, the overflow
    // shed as `pipeline-full` without ever becoming a mediator query.
    let server = Arc::new(slow_world(Duration::from_millis(150)).to_concurrent(2));
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .workers(1)
        .pipeline_depth(2)
        .build();
    let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
    let addr = net.addr().to_string();

    let mut client = WireClient::connect(&addr).unwrap();
    let burst = 6usize;
    for _ in 0..burst {
        client
            .send_query(QueryFrame::new("?- item('p_1', B)."))
            .unwrap();
    }
    let mut answered = 0u64;
    let mut shed = 0u64;
    for _ in 0..burst {
        match client.recv_result() {
            Ok(_) => answered += 1,
            Err(HermesError::Shed { reason }) => {
                assert_eq!(reason, "pipeline-full");
                shed += 1;
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert_eq!(answered + shed, burst as u64);
    assert!(shed >= 1, "burst past the depth must shed");
    assert!(answered >= 2, "the in-depth queries must be answered");

    // Pre-gate sheds never reach the mediator: the gate invariant holds
    // and the query count equals what was actually admitted downstream.
    let m = net.mediator().stats();
    assert_eq!(m.queries, answered);
    assert_eq!(m.admitted + m.shed, m.queries);
    let stats = net.shutdown();
    assert_eq!(stats.pre_gate_shed, shed);
}

#[test]
fn shutdown_drains_inflight_pipelined_responses() {
    // Queries are mid-flight on slow sources when another client asks
    // the server to shut down: every owed response must still arrive,
    // in order, before the connection closes.
    let server = Arc::new(slow_world(Duration::from_millis(100)).to_concurrent(2));
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .workers(4)
        .build();
    let net = NetServer::bind(server, "127.0.0.1:0", config).unwrap();
    let addr = net.addr().to_string();

    let mut busy = WireClient::connect(&addr).unwrap();
    for k in 0..4 {
        busy.send_query(QueryFrame::new(format!("?- item('p_{k}', B).")))
            .unwrap();
    }
    let mut admin = WireClient::connect(&addr).unwrap();
    admin.shutdown_server().unwrap();

    while busy.in_flight() > 0 {
        busy.recv_result().unwrap();
    }
    let stats = net.wait();
    assert_eq!(stats.requests, 5, "4 queries + shutdown");
}

#[test]
fn connection_ceiling_refuses_with_accept_queue_full() {
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .max_conns(3)
        .build();
    let (net, addr) = reactor(config);

    let mut held: Vec<WireClient> = (0..3)
        .map(|_| WireClient::connect(&addr).unwrap())
        .collect();
    for c in &mut held {
        c.ping().unwrap();
    }
    let mut overflow = WireClient::connect(&addr).unwrap();
    let err = overflow.ping().unwrap_err();
    let HermesError::Shed { reason } = err else {
        panic!("expected a shed, got {err:?}");
    };
    assert_eq!(reason, "accept-queue-full");

    // Closing one held connection frees a slot.
    drop(held.pop());
    std::thread::sleep(Duration::from_millis(200));
    let mut retry = WireClient::connect_retry(&addr, Duration::from_secs(5)).unwrap();
    retry.ping().unwrap();

    let stats = net.shutdown();
    assert_eq!(stats.refused, 1);
}

#[test]
fn serial_and_reactor_answers_are_the_same_multiset() {
    let (net, addr) = reactor(ServeConfig::builder().mode(ServeMode::Reactor).build());
    let mut direct = world();
    let mut client = WireClient::connect(&addr).unwrap();

    let queries = [
        "?- item(A, B).",
        "?- item('p_1', B).",
        "?- item('p_5', B).",
        "?- item('p_13', B).",
    ];
    for q in queries {
        let mut expected = direct.query(q).unwrap().rows;
        expected.sort();
        let mut got = client.query(QueryFrame::new(q)).unwrap().rows;
        got.sort();
        assert_eq!(got, expected, "answers diverge for {q}");
    }
    net.shutdown();
}
