//! Integration tests of the runtime subplan materialization cache: with
//! sharing on, every query must return exactly the answer multiset the
//! paper-exact (sharing-off) pipeline returns — across seeds, across
//! repeated rounds, and across a mid-workload source invalidation — and
//! HA071-volatile subplans must never be served from a snapshot.

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::video::gen::rope_store;
use hermes::net::profiles;
use hermes::{CimPolicy, Mediator, Network, RoutingDecision, Value};
use std::sync::Arc;

fn world(seed: u64) -> Mediator {
    let synth = SyntheticDomain::generate("synth", seed, &[RelationSpec::uniform("r", 30, 2.0)]);
    let mut net = Network::new(seed);
    net.place(Arc::new(rope_store()), profiles::italy());
    net.place(Arc::new(synth), profiles::maryland());
    Mediator::from_source(
        "scene(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).
         pairs(A, B) :- in(Ans, synth:r_ff()) & =(Ans.a, A) & =(Ans.b, B).",
        net,
    )
    .unwrap()
}

const QUERIES: [&str; 4] = [
    "?- scene(0, 40, O).",
    "?- scene(30, 70, O).",
    "?- pairs(A, B).",
    "?- scene(0, 40, O).",
];

fn sorted_rows(m: &mut Mediator, q: &str) -> Vec<Vec<Value>> {
    let mut rows = m.query(q).unwrap().rows;
    rows.sort();
    rows
}

#[test]
fn sharing_on_matches_sharing_off_across_seeds_with_invalidation() {
    for seed in 0..10u64 {
        let mut reference = world(seed);
        let mut shared = world(seed);
        shared
            .caches()
            .policy()
            .share_subplans(true)
            .apply()
            .unwrap();

        for round in 0..3 {
            for q in QUERIES {
                assert_eq!(
                    sorted_rows(&mut shared, q),
                    sorted_rows(&mut reference, q),
                    "seed {seed} round {round} query {q}: sharing changed answers"
                );
            }
            if round == 0 {
                // Mid-workload invalidation: dirty every subplan that reads
                // the video source. Rounds 1-2 must re-materialize and still
                // agree with the paper-exact run.
                let sweep = shared
                    .caches()
                    .invalidate_source("video", "frames_to_objects");
                assert!(
                    sweep.subplans_dropped >= 1,
                    "seed {seed}: no materialized subplan was invalidated"
                );
            }
        }

        let snap = shared.caches().stats();
        assert!(
            snap.subplans.hits >= 1,
            "seed {seed}: repeated queries never hit the subplan cache"
        );
        assert!(
            snap.subplans.invalidated >= 1,
            "seed {seed}: invalidation sweep dropped nothing"
        );
        assert!(
            snap.subplans.materialized > snap.subplans.hits.min(1),
            "seed {seed}: invalidated subplans were never re-materialized"
        );
    }
}

#[test]
fn volatile_subplans_are_never_served_from_a_snapshot() {
    // Routing `synth` around the CIM makes every subplan that reads it
    // HA071-volatile: the matcache must refuse those plans a ticket, so
    // repeated identical queries keep re-executing.
    let mut m = world(3);
    let mut policy = CimPolicy::cache_everything();
    policy.set_domain("synth", RoutingDecision::Direct);
    m.caches()
        .policy()
        .routing(policy)
        .share_subplans(true)
        .apply()
        .unwrap();

    let mut reference = world(3);
    let mut ref_policy = CimPolicy::cache_everything();
    ref_policy.set_domain("synth", RoutingDecision::Direct);
    reference
        .caches()
        .policy()
        .routing(ref_policy)
        .apply()
        .unwrap();

    for _ in 0..3 {
        assert_eq!(
            sorted_rows(&mut m, "?- pairs(A, B)."),
            sorted_rows(&mut reference, "?- pairs(A, B)."),
        );
    }
    let snap = m.caches().stats();
    assert_eq!(snap.subplans.hits, 0, "volatile subplan served from cache");
    assert_eq!(snap.subplans.materialized, 0, "volatile subplan was stored");
    assert!(
        snap.subplans.volatile_skips >= 3,
        "volatile plans should be refused a ticket every time, got {}",
        snap.subplans.volatile_skips
    );
}

#[test]
fn clearing_the_subplan_tier_leaves_answers_intact() {
    let mut m = world(5);
    m.caches().policy().share_subplans(true).apply().unwrap();
    let first = sorted_rows(&mut m, "?- scene(0, 40, O).");
    let warm = sorted_rows(&mut m, "?- scene(0, 40, O).");
    assert_eq!(first, warm);
    assert!(m.caches().stats().subplans.hits >= 1);

    m.caches().clear(hermes::CacheTier::Subplans);
    assert_eq!(m.caches().stats().subplans.entries, 0);
    let after = sorted_rows(&mut m, "?- scene(0, 40, O).");
    assert_eq!(first, after, "clearing the subplan tier changed answers");
}
