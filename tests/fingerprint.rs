//! Stability and collision tests for the canonical subplan fingerprints
//! (`hermes::analysis::fingerprint`, re-exported from `hermes_core::rewrite`).
//!
//! The fingerprint is the key a subplan result cache files answers under,
//! so two properties matter end to end:
//!
//! * **stability** — alpha-renaming the variables or permuting the body
//!   atoms of a rule must not move the key (10 seeded shuffles each);
//! * **no collisions** — across every rule of the shipped examples and
//!   test fixtures, equal fingerprints must mean equal canonical forms.

use hermes::analysis::fingerprint::{fingerprint_body, fingerprint_rule};
use hermes::lang::{parse_program, parse_query, parse_rule, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// A tiny deterministic LCG (the tests must not depend on ambient
/// randomness: a seed that fails must fail tomorrow too).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

/// Renames every variable of `rule` through a seeded bijection: variables
/// are collected, shuffled, and mapped to fresh names `R0, R1, ...` in
/// shuffled order, so different seeds produce different bijections.
fn alpha_rename(rule: &Rule, rng: &mut Lcg) -> Rule {
    let mut vars: Vec<Arc<str>> = rule.variables().into_iter().collect();
    rng.shuffle(&mut vars);
    let map: BTreeMap<Arc<str>, Arc<str>> = vars
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, Arc::from(format!("R{i}").as_str())))
        .collect();
    rule.map_vars(|v| map[v].clone())
}

/// Every rule of every `.hms` file under the shipped examples and the test
/// fixtures — the corpus the no-collision guarantee is checked against.
fn corpus() -> Vec<Rule> {
    let mut rules = Vec::new();
    for dir in ["examples/programs", "tests/fixtures"] {
        for entry in std::fs::read_dir(repo_path(dir)).expect("corpus dir exists") {
            let path = entry.unwrap().path();
            if path.extension().is_none_or(|ext| ext != "hms") {
                continue;
            }
            let src = std::fs::read_to_string(&path).unwrap();
            if let Ok(program) = parse_program(&src) {
                rules.extend(program.rules.iter().cloned());
            }
        }
    }
    assert!(rules.len() >= 20, "corpus too small: {} rules", rules.len());
    rules
}

#[test]
fn fingerprints_survive_renaming_and_reordering_across_seeds() {
    let corpus = corpus();
    for seed in 0..10u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed + 1));
        for rule in &corpus {
            let bound = vec![false; rule.head.args.len()];
            let reference = fingerprint_rule(rule, &bound);

            let mut mutated = alpha_rename(rule, &mut rng);
            rng.shuffle(&mut mutated.body);
            let shuffled = fingerprint_rule(&mutated, &bound);

            assert_eq!(
                reference.fingerprint, shuffled.fingerprint,
                "seed {seed}, rule `{}`:\n  {}\nvs\n  {}",
                rule.head, reference.canonical, shuffled.canonical
            );
            assert_eq!(reference.canonical, shuffled.canonical);
        }
    }
}

#[test]
fn adornment_is_part_of_the_key() {
    let rule = parse_rule("p(A, B) :- in(B, d:f(A)).").unwrap();
    let free = fingerprint_rule(&rule, &[false, false]);
    let bound = fingerprint_rule(&rule, &[true, false]);
    assert_ne!(
        free.fingerprint, bound.fingerprint,
        "a subplan entered with `A` bound answers a different question"
    );
}

#[test]
fn no_collisions_across_the_corpus() {
    // Equal fingerprint must mean equal canonical form — a 64-bit
    // collision on a corpus this small would be a broken hash, not luck.
    let mut by_fp: BTreeMap<u64, String> = BTreeMap::new();
    for rule in corpus() {
        let key = fingerprint_rule(&rule, &vec![false; rule.head.args.len()]);
        if let Some(prior) = by_fp.insert(key.fingerprint.0, key.canonical.clone()) {
            assert_eq!(
                prior, key.canonical,
                "fingerprint {} collides across different canonical forms",
                key.fingerprint
            );
        }
    }
}

#[test]
fn core_exposes_the_same_keys() {
    // `hermes_core::rewrite::query_fingerprint` and the analyzer must
    // agree: the future subplan cache and today's HA070 inventory share
    // one key space.
    let query = parse_query("?- in(X, d:f('k')) & in(Y, e:g(X)).").unwrap();
    let via_core = hermes::core::rewrite::query_fingerprint(&query);
    let via_analysis = fingerprint_body(&query.goals, &BTreeSet::new());
    assert_eq!(via_core.fingerprint, via_analysis.fingerprint);
    assert_eq!(via_core.canonical, via_analysis.canonical);
    assert_eq!(via_core.calls, via_analysis.calls);
}
