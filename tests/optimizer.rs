//! Integration tests of cost-based plan choice: does the DCSM-driven
//! optimizer actually pick plans that run faster? (The §8 claims, as
//! assertions; the full sweep lives in the `plan_choice` bench.)

use hermes::domains::synthetic::{CostProfile, RelationSpec, SyntheticDomain};
use hermes::net::profiles;
use hermes::{CimPolicy, Mediator, Network};
use std::sync::Arc;

/// A federation where starting from the small `dir` relation is clearly
/// better than starting from the big, expensive `big` relation.
fn asymmetric_mediator(seed: u64) -> Mediator {
    let big = SyntheticDomain::generate(
        "srcbig",
        seed,
        &[
            RelationSpec::uniform("big", 400, 5.0).with_profile(CostProfile {
                start_ms: 10.0,
                per_answer_ms: 0.5,
                per_probe_ms: 2.0,
            }),
        ],
    );
    let small = SyntheticDomain::generate(
        "srcsmall",
        seed + 1,
        &[RelationSpec::uniform("dir", 12, 2.0)],
    );
    let mut net = Network::new(seed);
    net.place(Arc::new(big), profiles::bucknell());
    net.place(Arc::new(small), profiles::maryland());
    let mut m = Mediator::from_source(
        "
        big(A, B) :- in(B, srcbig:big_bf(A)).
        big(A, B) :- in(A, srcbig:big_fb(B)).
        big(A, B) :- in(Ans, srcbig:big_ff()) & =(Ans.a, A) & =(Ans.b, B).
        dir(A, B) :- in(B, srcsmall:dir_bf(A)).
        dir(A, B) :- in(A, srcsmall:dir_fb(B)).
        dir(A, B) :- in(Ans, srcsmall:dir_ff()) & =(Ans.a, A) & =(Ans.b, B).
        joined(X, Y, Z) :- dir(X, Y) & big(Z, Y).
        ",
        net,
    )
    .unwrap();
    // Keep runs comparable: no result caching, statistics only.
    m.caches()
        .policy()
        .routing(CimPolicy::never())
        .apply()
        .unwrap();
    m
}

/// Executes every candidate plan of `q` on a fresh mediator and returns
/// (plan index, simulated t_all ms).
fn measure_all_plans(q: &str, seed: u64) -> Vec<(usize, f64)> {
    let planner = asymmetric_mediator(seed);
    let planned = planner.plan(q).unwrap();
    (0..planned.plans.len())
        .map(|i| {
            let mut fresh = asymmetric_mediator(seed);
            let single = hermes::core::Planned {
                plans: vec![planned.plans[i].clone()],
                estimates: vec![planned.estimates[i]],
                chosen: 0,
            };
            let r = fresh.execute(single, None).unwrap();
            (i, r.t_all.as_millis_f64())
        })
        .collect()
}

/// Trains DCSM by running a few queries, then returns the mediator.
fn trained_mediator(seed: u64) -> Mediator {
    let mut m = asymmetric_mediator(seed);
    for x in 0..4 {
        let _ = m.query(format!("?- joined('dir_{x}', Y, Z)."));
        let _ = m.query(format!("?- big('big_{x}', B)."));
        let _ = m.query(format!("?- dir('dir_{x}', B)."));
    }
    m
}

#[test]
fn trained_optimizer_picks_a_near_optimal_plan() {
    let q = "?- joined('dir_5', Y, Z).";
    let m = trained_mediator(21);
    let planned = m.plan(q).unwrap();
    assert!(planned.plans.len() >= 2, "need a real choice");

    let timings = measure_all_plans(q, 21);
    let best = timings
        .iter()
        .cloned()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let worst = timings
        .iter()
        .cloned()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let chosen_time = timings[planned.chosen].1;
    // The chosen plan must be much closer to the best than to the worst.
    assert!(
        chosen_time <= best.1 * 3.0 + 50.0,
        "chosen {} ({}ms) vs best {} ({}ms), worst {} ({}ms)",
        planned.chosen,
        chosen_time,
        best.0,
        best.1,
        worst.0,
        worst.1
    );
}

#[test]
fn predicted_ordering_matches_actual_for_large_margins() {
    // §8 claim 1: when DCSM predicts Q1 much better than Q2 for all
    // answers, Q1 really is faster.
    let q = "?- joined('dir_3', Y, Z).";
    let m = trained_mediator(33);
    let planned = m.plan(q).unwrap();
    let timings = measure_all_plans(q, 33);
    for (i, ei) in planned.estimates.iter().enumerate() {
        for (j, ej) in planned.estimates.iter().enumerate() {
            let (pi, pj) = (ei.t_all_ms.unwrap(), ej.t_all_ms.unwrap());
            // A 5x predicted gap is a "large margin".
            if pi * 5.0 < pj {
                let (ai, aj) = (timings[i].1, timings[j].1);
                assert!(
                    ai < aj * 1.5,
                    "predicted {i}({pi}ms) ≪ {j}({pj}ms) but measured {ai}ms vs {aj}ms"
                );
            }
        }
    }
}

#[test]
fn first_answer_mode_changes_objective() {
    let q = "?- joined(X, Y, Z).";
    let mut m = trained_mediator(44);
    m.config_mut().optimize_first_answer = false;
    let all_mode = m.plan(q).unwrap();
    m.config_mut().optimize_first_answer = true;
    let first_mode = m.plan(q).unwrap();
    // The two objectives pick (possibly) different plans; each must win on
    // its own metric.
    let est_all = &all_mode.estimates[all_mode.chosen];
    let est_first = &first_mode.estimates[first_mode.chosen];
    assert!(est_all.t_all_ms.unwrap() <= est_first.t_all_ms.unwrap() + 1e-9);
    assert!(est_first.t_first_ms.unwrap() <= est_all.t_first_ms.unwrap() + 1e-9);
}

#[test]
fn estimates_converge_toward_actuals_with_training() {
    let q = "?- big('big_9', B).";
    let relative_error = |mut m: Mediator| {
        let planned = m.plan(q).unwrap();
        let est = planned.estimate().t_all_ms.unwrap();
        let actual = m.query(q).unwrap().t_all.as_millis_f64();
        (est - actual).abs() / actual.max(1.0)
    };
    let untrained_err = relative_error(asymmetric_mediator(55));
    let trained_err = relative_error(trained_mediator(55));
    assert!(
        trained_err < untrained_err,
        "training should reduce error: {trained_err} vs {untrained_err}"
    );
}

#[test]
fn external_estimator_feeds_the_optimizer() {
    use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
    use hermes::Value;
    // A relational source exports its own cost model; with zero training
    // the optimizer should still get a sane (non-prior) estimate.
    let rel = RelationalDomain::new("rel");
    let mut t = Table::new(
        "wide",
        Schema::new(vec![
            Column::new("k", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ])
        .unwrap(),
    );
    for i in 0..500 {
        t.insert(vec![Value::Int(i % 50), Value::Int(i)]).unwrap();
    }
    rel.add_table(t);
    let est_src = rel.clone();
    let mut net = Network::new(66);
    net.place(rel, profiles::maryland());
    let m =
        Mediator::from_source("rows(K, T) :- in(T, rel:select_eq('wide', 'k', K)).", net).unwrap();
    m.dcsm().lock().register_external("rel", est_src);
    let planned = m.plan("?- rows(7, T).").unwrap();
    let card = planned.estimate().cardinality.unwrap();
    // 500 rows / 50 distinct keys = 10 per key — the native model knows.
    assert!((card - 10.0).abs() < 1.0, "cardinality {card}");
}
