//! Integration tests of the caching + invariants machinery (§4) against
//! live domains — the behaviors Figure 5 measures, as assertions.

use hermes::domains::spatial::{uniform_points, SpatialDomain};
use hermes::domains::video::gen::rope_store;
use hermes::net::profiles;
use hermes::{parse_invariant, CimPolicy, Mediator, Network};
use std::sync::Arc;

fn video_mediator(seed: u64, policy: CimPolicy) -> Mediator {
    let mut net = Network::new(seed);
    net.place(Arc::new(rope_store()), profiles::italy());
    let mut m = Mediator::from_source(
        "objs(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).",
        net,
    )
    .unwrap();
    m.caches().policy().routing(policy).apply().unwrap();
    m
}

fn frame_range_invariant() -> hermes::lang::Invariant {
    parse_invariant(
        "F2 <= F1 & L1 <= L2 =>
         video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
    )
    .unwrap()
}

#[test]
fn caching_always_helps_remote_sources() {
    // Figure 5's headline: "using caches always leads to savings in time
    // when the software/data is located at remote sites."
    let mut m = video_mediator(1, CimPolicy::cache_everything());
    let cold = m.query("?- objs(4, 47, O).").unwrap();
    let warm = m.query("?- objs(4, 47, O).").unwrap();
    assert_eq!(warm.rows, cold.rows);
    assert!(warm.t_all.as_millis_f64() < cold.t_all.as_millis_f64() / 10.0);
    assert!(warm.t_first.unwrap().as_millis_f64() < cold.t_first.unwrap().as_millis_f64() / 10.0);
}

#[test]
fn no_cache_policy_pays_full_price_every_time() {
    let mut m = video_mediator(1, CimPolicy::never());
    let first = m.query("?- objs(4, 47, O).").unwrap();
    let second = m.query("?- objs(4, 47, O).").unwrap();
    // Both runs make the actual call; timings stay in the same regime.
    assert_eq!(first.stats.actual_calls, 1);
    assert_eq!(second.stats.actual_calls, 1);
    assert!(second.t_all.as_millis_f64() > first.t_all.as_millis_f64() / 4.0);
}

#[test]
fn partial_invariant_gives_fast_first_answer_but_full_all_answers_time() {
    // The Figure 5 "cache + partial inv" rows: first answer near cache
    // speed, all answers near the no-cache time (the actual call still
    // runs, in parallel).
    let mut m = video_mediator(2, CimPolicy::cache_everything());
    m.caches().add_invariant(frame_range_invariant()).unwrap();
    // Warm with a narrow range.
    m.query("?- objs(10, 40, O).").unwrap();
    // Query a wider, uncached range.
    let wide = m.query("?- objs(0, 600, O).").unwrap();
    assert_eq!(wide.stats.cim_partial, 1);
    assert_eq!(wide.stats.actual_calls, 1);
    let t_first = wide.t_first.unwrap().as_millis_f64();
    let t_all = wide.t_all.as_millis_f64();
    assert!(
        t_first < 500.0,
        "first answer should be cache-fast, got {t_first}"
    );
    assert!(
        t_all > 2_000.0,
        "all answers need the real call, got {t_all}"
    );
    assert!(
        t_all > t_first * 10.0,
        "t_all {t_all} should dwarf t_first {t_first}"
    );
}

#[test]
fn partial_answers_complete_and_deduplicated() {
    let mut m = video_mediator(3, CimPolicy::cache_everything());
    m.caches().add_invariant(frame_range_invariant()).unwrap();
    // Reference: the same wide query without any cache.
    let mut reference = video_mediator(3, CimPolicy::never());
    let want = {
        let mut rows = reference.query("?- objs(0, 600, O).").unwrap().rows;
        rows.sort();
        rows
    };
    m.query("?- objs(10, 40, O).").unwrap();
    let mut got = m.query("?- objs(0, 600, O).").unwrap().rows;
    got.sort();
    got.dedup();
    assert_eq!(got, want);
}

#[test]
fn interactive_stop_within_partial_prefix_skips_actual_call() {
    // "In the interactive mode, the partial set of answers may prove to be
    // sufficient and the actual call may not need to be made at all."
    let m = {
        let mut m = video_mediator(4, CimPolicy::cache_everything());
        m.caches().add_invariant(frame_range_invariant()).unwrap();
        m
    };
    let mut warmup = m.query_interactive("?- objs(10, 40, O).").unwrap();
    while warmup.next_answer().is_some() {}
    drop(warmup);
    let mut wide = m.query_interactive("?- objs(0, 600, O).").unwrap();
    let first_three = wide.next_batch(3);
    assert_eq!(first_three.len(), 3);
    // All three should be nearly instant (cache speed).
    for (_, at) in &first_three {
        assert!(at.as_millis_f64() < 500.0, "answer at {at}");
    }
    let summary = wide.stop();
    assert!(!summary.finished);
    assert!(summary.error.is_none());
}

#[test]
fn equality_invariant_spatial_range_shrinking() {
    // The paper's §4 example: any range ≥ 142 over a 100x100 point file
    // equals the 142 range. A *miss* should execute the cheaper
    // substituted call and then serve future big-range queries from it.
    let spatial = SpatialDomain::new("spatial");
    spatial.load_points("points", uniform_points(7, 2_000, 100.0), 10.0);
    let mut net = Network::new(5);
    net.place(Arc::new(spatial), profiles::cornell());
    let mut m = Mediator::from_source(
        "near(X, Y, D, P) :- in(P, spatial:range('points', X, Y, D)).",
        net,
    )
    .unwrap();
    m.caches()
        .add_invariant(
            parse_invariant(
                "Dist > 142 =>
                 spatial:range('points', X, Y, Dist) = spatial:range('points', X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();

    let huge = m.query("?- near(0, 0, 100000, P).").unwrap();
    assert_eq!(huge.rows.len(), 2_000); // everything is within 142 of (0,0)? No:
                                        // (0,0) corner: max distance is sqrt(2)*100 ≈ 141.4 < 142. Yes, all.
    assert_eq!(huge.stats.substituted_calls, 1);
    // The big call was rewritten to range(...,142) and BOTH keys cached:
    let big2 = m.query("?- near(0, 0, 99999, P).").unwrap();
    // Different radius, still > 142: equality invariant finds the cached
    // 142 call without any network traffic.
    assert_eq!(big2.stats.actual_calls, 0);
    assert!(big2.stats.cim_equal + big2.stats.cim_exact >= 1);
    assert_eq!(big2.rows.len(), huge.rows.len());
}

#[test]
fn invariant_hits_counted_in_cim_stats() {
    let mut m = video_mediator(6, CimPolicy::cache_everything());
    m.caches().add_invariant(frame_range_invariant()).unwrap();
    m.query("?- objs(10, 40, O).").unwrap();
    m.query("?- objs(0, 600, O).").unwrap();
    let stats = m.caches().stats().cim;
    assert_eq!(stats.partial_hits, 1);
    assert!(stats.stores >= 2);
}

#[test]
fn cache_budget_evicts_but_stays_correct() {
    let mut m = video_mediator(7, CimPolicy::cache_everything());
    // Tiny cache: every new store evicts the previous entry.
    m.caches().policy().answer_budget(Some(64)).apply().unwrap();
    let a = m.query("?- objs(4, 47, O).").unwrap();
    let b = m.query("?- objs(100, 200, O).").unwrap();
    let a2 = m.query("?- objs(4, 47, O).").unwrap();
    assert_eq!(a.rows, a2.rows);
    assert!(!b.rows.is_empty());
    let evictions = m.caches().stats().answers.evictions;
    assert!(evictions >= 1, "expected evictions, got {evictions}");
}

#[test]
fn early_stopped_interactive_run_still_caches_completed_calls() {
    // The interactive consumer stopped after two answers, but the single
    // underlying call had already completed — so its (complete) answer set
    // is cached and a later all-answers query is served locally with the
    // full, correct result.
    let m = video_mediator(8, CimPolicy::cache_everything());
    let mut iq = m.query_interactive("?- objs(4, 47, O).").unwrap();
    let _ = iq.next_batch(2);
    drop(iq);
    let mut m = m;
    let full = m.query("?- objs(4, 47, O).").unwrap();
    assert!(full.rows.len() > 10);
    assert_eq!(full.stats.actual_calls, 0);
    assert_eq!(full.stats.cim_exact, 1);
    // And it matches a from-scratch no-cache run.
    let mut reference = video_mediator(8, CimPolicy::never());
    let want = reference.query("?- objs(4, 47, O).").unwrap();
    assert_eq!(full.rows, want.rows);
}
