//! Integration tests for the static analyzer: every diagnostic class has a
//! fixture that trips it, the shipped example programs lint clean, the
//! `hermes-lint` binary reports through its exit status, and the mediator
//! refuses to register a program the analyzer rejects.

use hermes::{analyze_source, DiagCode, HermesError, Mediator, Network};
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn analyze_fixture(name: &str) -> hermes::AnalysisReport {
    let path = repo_path(&format!("tests/fixtures/{name}"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    analyze_source(&src).expect("fixture parses")
}

#[test]
fn graph_fixture_trips_dependency_diagnostics() {
    let report = analyze_fixture("bad_graph.hms");
    assert!(
        report.has_code(DiagCode::RecursiveCycle),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UndefinedPredicate),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UnreachablePredicate),
        "{}",
        report.render()
    );
}

#[test]
fn adornment_fixture_trips_groundability_diagnostics() {
    let report = analyze_fixture("bad_adorn.hms");
    assert!(
        report.has_code(DiagCode::UngroundableVariable),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::InfeasibleAdornment),
        "{}",
        report.render()
    );
}

#[test]
fn signature_fixture_trips_all_three_signature_diagnostics() {
    let report = analyze_fixture("bad_sigs.hms");
    assert!(
        report.has_code(DiagCode::UnknownDomain),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UnknownFunction),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::ArityMismatch),
        "{}",
        report.render()
    );
}

#[test]
fn invariant_fixture_trips_invariant_diagnostics() {
    let report = analyze_fixture("bad_invariants.hms");
    assert!(
        report.has_code(DiagCode::FreeConditionVariable),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::DuplicateInvariant),
        "{}",
        report.render()
    );
}

#[test]
fn tier_fixture_trips_the_cache_starvation_diagnostic() {
    let report = analyze_fixture("bad_tier.hms");
    assert!(
        report.has_code(DiagCode::CacheStarved),
        "{}",
        report.render()
    );
    // A warning, not an error: the program still runs at the Full tier.
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn coverage_pass_flags_unprofiled_call_patterns() {
    // Pass 5 needs a DCSM; an empty one can only cost from the prior.
    let src = std::fs::read_to_string(repo_path("examples/programs/logistics.hms")).unwrap();
    let program = hermes::parse_program(&src).unwrap();
    let directives = hermes::analysis::parse_directives(&src).unwrap();
    let dcsm = hermes::Dcsm::new();
    let mut analyzer = hermes::Analyzer::new(&program)
        .with_query_forms(directives.query_forms)
        .with_dcsm(&dcsm);
    if let Some(table) = directives.signatures {
        analyzer = analyzer.with_signatures(table);
    }
    let report = analyzer.analyze();
    assert!(
        report.has_code(DiagCode::EstimatorBlindSpot),
        "{}",
        report.render()
    );
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn shipped_example_programs_lint_clean() {
    let dir = repo_path("examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|ext| ext != "hms") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let report = analyze_source(&src)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(
            report.is_clean(),
            "{} has findings:\n{}",
            path.display(),
            report.render()
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the example programs, found {checked}"
    );
}

#[test]
fn lint_binary_exit_status_reflects_findings() {
    let lint = env!("CARGO_BIN_EXE_hermes-lint");

    let clean = Command::new(lint)
        .arg(repo_path("examples/programs"))
        .output()
        .expect("hermes-lint runs");
    assert!(
        clean.status.success(),
        "examples should lint clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    let dirty = Command::new(lint)
        .arg(repo_path("tests/fixtures"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(dirty.status.code(), Some(1));
    let out = String::from_utf8_lossy(&dirty.stdout);
    for code in [
        "HA001", "HA002", "HA005", "HA010", "HA020", "HA030", "HA060",
    ] {
        assert!(out.contains(code), "missing {code} in:\n{out}");
    }

    // Warnings only fail under --strict.
    let strict = Command::new(lint)
        .args(["--coverage", "--strict"])
        .arg(repo_path("examples/programs/logistics.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(strict.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&strict.stdout).contains("HA040"));

    let usage = Command::new(lint).output().expect("hermes-lint runs");
    assert_eq!(usage.status.code(), Some(2));
}

#[test]
fn mediator_rejects_program_the_analyzer_fails() {
    // No domains are placed, so every domain call is an unknown domain.
    let mut mediator = Mediator::from_source("p(A) :- in(A, d:f('x')).", Network::new(1)).unwrap();
    let err = mediator
        .register_source("q(A) :- in(A, nosuch:fetch('k')).", &[])
        .unwrap_err();
    match err {
        HermesError::Analysis { diagnostics } => {
            assert!(
                diagnostics.iter().any(|d| d.contains("HA020")),
                "{diagnostics:?}"
            );
        }
        other => panic!("expected an analysis rejection, got: {other}"),
    }
}
