//! Integration tests for the static analyzer: every diagnostic class has a
//! fixture that trips it, the shipped example programs lint clean, the
//! `hermes-lint` binary reports through its exit status, and the mediator
//! refuses to register a program the analyzer rejects.

use hermes::{
    analyze_source, analyze_source_with, AnalyzeOptions, DiagCode, HermesError, Mediator, Network,
    Severity,
};
use std::path::{Path, PathBuf};
use std::process::Command;

const MATERIALIZE: AnalyzeOptions = AnalyzeOptions {
    coverage: false,
    materialize: true,
};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn fixture_src(name: &str) -> String {
    let path = repo_path(&format!("tests/fixtures/{name}"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn analyze_fixture(name: &str) -> hermes::AnalysisReport {
    analyze_source(&fixture_src(name)).expect("fixture parses")
}

fn analyze_fixture_materialized(name: &str) -> hermes::AnalysisReport {
    analyze_source_with(&fixture_src(name), MATERIALIZE).expect("fixture parses")
}

#[test]
fn graph_fixture_trips_dependency_diagnostics() {
    let report = analyze_fixture("bad_graph.hms");
    assert!(
        report.has_code(DiagCode::RecursiveCycle),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UndefinedPredicate),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UnreachablePredicate),
        "{}",
        report.render()
    );
}

#[test]
fn adornment_fixture_trips_groundability_diagnostics() {
    let report = analyze_fixture("bad_adorn.hms");
    assert!(
        report.has_code(DiagCode::UngroundableVariable),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::InfeasibleAdornment),
        "{}",
        report.render()
    );
}

#[test]
fn signature_fixture_trips_all_three_signature_diagnostics() {
    let report = analyze_fixture("bad_sigs.hms");
    assert!(
        report.has_code(DiagCode::UnknownDomain),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::UnknownFunction),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::ArityMismatch),
        "{}",
        report.render()
    );
}

#[test]
fn invariant_fixture_trips_invariant_diagnostics() {
    let report = analyze_fixture("bad_invariants.hms");
    assert!(
        report.has_code(DiagCode::FreeConditionVariable),
        "{}",
        report.render()
    );
    assert!(
        report.has_code(DiagCode::DuplicateInvariant),
        "{}",
        report.render()
    );
}

#[test]
fn tier_fixture_trips_the_cache_starvation_diagnostic() {
    let report = analyze_fixture("bad_tier.hms");
    assert!(
        report.has_code(DiagCode::CacheStarved),
        "{}",
        report.render()
    );
    // A warning, not an error: the program still runs at the Full tier.
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn coverage_pass_flags_unprofiled_call_patterns() {
    // Pass 5 needs a DCSM; an empty one can only cost from the prior.
    let src = std::fs::read_to_string(repo_path("examples/programs/logistics.hms")).unwrap();
    let program = hermes::parse_program(&src).unwrap();
    let directives = hermes::analysis::parse_directives(&src).unwrap();
    let dcsm = hermes::Dcsm::new();
    let mut analyzer = hermes::Analyzer::new(&program)
        .with_query_forms(directives.query_forms)
        .with_dcsm(&dcsm);
    if let Some(table) = directives.signatures {
        analyzer = analyzer.with_signatures(table);
    }
    let report = analyzer.analyze();
    assert!(
        report.has_code(DiagCode::EstimatorBlindSpot),
        "{}",
        report.render()
    );
    assert!(!report.has_errors(), "{}", report.render());
}

#[test]
fn shipped_example_programs_lint_clean() {
    let dir = repo_path("examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/programs exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|ext| ext != "hms") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let report = analyze_source(&src)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(
            report.is_clean(),
            "{} has findings:\n{}",
            path.display(),
            report.render()
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected the example programs, found {checked}"
    );
}

#[test]
fn lint_binary_exit_status_reflects_findings() {
    let lint = env!("CARGO_BIN_EXE_hermes-lint");

    let clean = Command::new(lint)
        .arg(repo_path("examples/programs"))
        .output()
        .expect("hermes-lint runs");
    assert!(
        clean.status.success(),
        "examples should lint clean:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Errors exit 2.
    let dirty = Command::new(lint)
        .arg(repo_path("tests/fixtures"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(dirty.status.code(), Some(2));
    let out = String::from_utf8_lossy(&dirty.stdout);
    for code in [
        "HA001", "HA002", "HA005", "HA010", "HA020", "HA030", "HA060",
    ] {
        assert!(out.contains(code), "missing {code} in:\n{out}");
    }

    // Warnings alone exit 1; --strict promotes them to the error class.
    let warn = Command::new(lint)
        .arg("--coverage")
        .arg(repo_path("examples/programs/logistics.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(warn.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&warn.stdout).contains("HA040"));
    let strict = Command::new(lint)
        .args(["--coverage", "--strict"])
        .arg(repo_path("examples/programs/logistics.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(strict.status.code(), Some(2));

    // Notes never affect the exit status.
    let notes = Command::new(lint)
        .arg("--materialize")
        .arg(repo_path("tests/fixtures/materialize_safe.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(notes.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&notes.stdout).contains("HA070"));

    // Usage trouble exits 3.
    let usage = Command::new(lint).output().expect("hermes-lint runs");
    assert_eq!(usage.status.code(), Some(3));
    let missing = Command::new(lint)
        .arg(repo_path("tests/fixtures/no_such_file.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(missing.status.code(), Some(3));
}

#[test]
fn lint_binary_explains_codes() {
    let lint = env!("CARGO_BIN_EXE_hermes-lint");
    let explain = Command::new(lint)
        .args(["--explain", "HA071"])
        .output()
        .expect("hermes-lint runs");
    assert_eq!(explain.status.code(), Some(0));
    let out = String::from_utf8_lossy(&explain.stdout);
    assert!(out.contains("HA071"), "{out}");
    assert!(out.contains("volatile"), "{out}");

    let unknown = Command::new(lint)
        .args(["--explain", "HA999"])
        .output()
        .expect("hermes-lint runs");
    assert_eq!(unknown.status.code(), Some(3));
}

#[test]
fn materialize_safe_fixture_is_inventoried() {
    // Opt-in pass off: the fixture is clean.
    let plain = analyze_fixture("materialize_safe.hms");
    assert!(plain.is_clean(), "{}", plain.render());

    let report = analyze_fixture_materialized("materialize_safe.hms");
    let safe: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == DiagCode::MaterializeSafe)
        .collect();
    assert_eq!(safe.len(), 2, "{}", report.render());
    // Alpha-equivalent bodies share one fingerprint...
    assert_eq!(safe[0].fingerprint, safe[1].fingerprint);
    // ...which surfaces as a sharing opportunity and invalidation scopes.
    assert!(
        report.has_code(DiagCode::SharedSubplan),
        "{}",
        report.render()
    );
    let scopes: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == DiagCode::InvalidationScope)
        .collect();
    assert_eq!(scopes.len(), 2, "{}", report.render());
    // Notes only: the exit-relevant counts stay zero.
    assert!(!report.has_errors());
    assert!(report.warnings().is_empty());
}

#[test]
fn materialize_volatile_fixture_blocks_the_feed_subplan() {
    let plain = analyze_fixture("materialize_volatile.hms");
    assert!(plain.is_clean(), "{}", plain.render());

    let report = analyze_fixture_materialized("materialize_volatile.hms");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::MaterializeVolatile && d.message.contains("feed:quote_bf")),
        "{}",
        report.render()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::MaterializeSafe && d.message.contains("safe")),
        "{}",
        report.render()
    );
}

#[test]
fn materialize_recursive_fixture_demands_delta_maintenance() {
    let report = analyze_fixture_materialized("materialize_recursive.hms");
    let rec: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == DiagCode::MaterializeRecursive)
        .collect();
    assert_eq!(rec.len(), 2, "{}", report.render());
    assert!(!report.has_code(DiagCode::MaterializeSafe));
    // The default dependency pass still reports the recursion itself.
    assert!(report.has_code(DiagCode::RecursiveCycle));
}

#[test]
fn directive_edge_cases_are_diagnostics_not_silent_skips() {
    let src = "\
        %! frobnicate yes\n\
        %! query p(f)\n\
        %! query p(f)\n\
        %! cache d:\n\
        %! volatile \n\
        p(A) :- in(A, d:f()).\n";
    let report = analyze_source(src).expect("directive trouble never aborts the lint");
    let codes: Vec<DiagCode> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(
        codes
            .iter()
            .filter(|c| **c == DiagCode::MalformedDirective)
            .count(),
        2,
        "{}",
        report.render()
    );
    assert!(codes.contains(&DiagCode::UnknownDirective));
    assert!(codes.contains(&DiagCode::DuplicateDirective));
    // Malformed/unknown are errors (they silently disable checks),
    // verbatim duplicates only warn.
    assert!(report.has_errors());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::DuplicateDirective && d.severity == Severity::Warning));
}

#[test]
fn lint_binary_json_output_round_trips() {
    let lint = env!("CARGO_BIN_EXE_hermes-lint");
    let out = Command::new(lint)
        .args(["--materialize", "--format", "json"])
        .arg(repo_path("tests/fixtures/materialize_safe.hms"))
        .output()
        .expect("hermes-lint runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf-8");
    let files = hermes::report_from_json(&text)
        .unwrap_or_else(|e| panic!("emitted JSON must validate: {e}\n{text}"));
    assert_eq!(files.len(), 1);
    assert!(files[0].error.is_none());
    assert!(files[0]
        .report
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::MaterializeSafe && d.fingerprint.is_some()));

    // SARIF mode parses as JSON and names the fired rules.
    let sarif = Command::new(lint)
        .args(["--materialize", "--format", "sarif"])
        .arg(repo_path("tests/fixtures/materialize_safe.hms"))
        .output()
        .expect("hermes-lint runs");
    let doc = hermes::analysis::json::parse(&String::from_utf8_lossy(&sarif.stdout))
        .expect("SARIF is valid JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_str()),
        Some("2.1.0"),
        "SARIF version"
    );
}

#[test]
fn lint_snapshot_of_examples_matches_committed_expectation() {
    // CI runs the same comparison; regenerate with
    //   cargo run --bin hermes-lint -- --materialize --format json \
    //     examples/programs > tests/expectations/examples_lint.json
    // from the repository root.
    let lint = env!("CARGO_BIN_EXE_hermes-lint");
    let out = Command::new(lint)
        .current_dir(repo_path(""))
        .args(["--materialize", "--format", "json", "examples/programs"])
        .output()
        .expect("hermes-lint runs");
    assert_eq!(out.status.code(), Some(0));
    let got = String::from_utf8(out.stdout).expect("utf-8");
    let want = std::fs::read_to_string(repo_path("tests/expectations/examples_lint.json"))
        .expect("committed snapshot exists");
    assert_eq!(
        got, want,
        "lint snapshot drifted; regenerate tests/expectations/examples_lint.json"
    );
}

#[test]
fn mediator_rejects_program_the_analyzer_fails() {
    // No domains are placed, so every domain call is an unknown domain.
    let mut mediator = Mediator::from_source("p(A) :- in(A, d:f('x')).", Network::new(1)).unwrap();
    let err = mediator
        .register_source("q(A) :- in(A, nosuch:fetch('k')).", &[])
        .unwrap_err();
    match err {
        HermesError::Analysis { diagnostics } => {
            assert!(
                diagnostics.iter().any(|d| d.contains("HA020")),
                "{diagnostics:?}"
            );
        }
        other => panic!("expected an analysis rejection, got: {other}"),
    }
}
