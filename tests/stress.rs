//! Stress: a wide federation (all seven substrate domains at four sites),
//! a deep query, and a long query sequence exercising cache eviction,
//! statistics growth, and clock progression together.

use hermes::common::Record;
use hermes::domains::objectstore::ObjectStoreDomain;
use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::spatial::{uniform_points, SpatialDomain};
use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::terrain::{demo_map, TerrainDomain};
use hermes::domains::text::newswire;
use hermes::domains::video::gen::{rope_store, ROPE_CAST};
use hermes::net::profiles;
use hermes::{Mediator, Network, Value};
use std::sync::Arc;

fn big_world(seed: u64) -> Mediator {
    let relation = RelationalDomain::new("relation");
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap(),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .unwrap();
    }
    relation.add_table(cast);

    let spatial = SpatialDomain::new("spatial");
    spatial.load_points("sites", uniform_points(seed, 1_000, 200.0), 20.0);
    let terrain = TerrainDomain::new("terraindb", demo_map());
    let text = newswire(seed, "text", "usatoday", 500);
    let synth = SyntheticDomain::generate("synth", seed, &[RelationSpec::uniform("r", 30, 2.0)]);
    let oodb = ObjectStoreDomain::new("design");
    for i in 0..20 {
        let oid = oodb.create("doc", Record::from_fields([("n", Value::Int(i as i64))]));
        if oid > 0 {
            oodb.add_ref("doc", oid - 1, "next", "doc", oid);
        }
    }

    let mut net = Network::new(seed);
    net.place(Arc::new(rope_store()), profiles::italy());
    net.place(relation, profiles::cornell());
    net.place(Arc::new(text), profiles::bucknell());
    net.place(Arc::new(synth), profiles::maryland());
    net.place_local(Arc::new(spatial));
    net.place_local(Arc::new(terrain));
    net.place_local(Arc::new(oodb));

    Mediator::from_source(
        "
        scene(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).
        played_by(O, A) :-
            in(T, relation:select_eq('cast', 'role', O)) & =(T.name, A).
        press(Term, H) :-
            in(D, text:search('usatoday', Term)) & =(D.headline, H).
        chainable(A, B) :- in(B, synth:r_bf(A)).
        near(X, Y, D, P) :- in(P, spatial:count_range('sites', X, Y, D)).
        rte(F, T, R) :- in(R, terraindb:distance(F, T)).
        chain_doc(N, M) :- in(D, design:follow('doc', N, 'next')) & =(D.n, M).

        dossier(F, L, Object, Actor, Stories, NearSites, Route) :-
            scene(F, L, Object) &
            played_by(Object, Actor) &
            in(Stories, text:search('usatoday', 'election')) &
            near(50, 50, 30, NearSites) &
            rte('place1', 'aberdeen', Route).
        ",
        net,
    )
    .unwrap()
}

#[test]
fn seven_domain_dossier_query_runs() {
    let mut m = big_world(2);
    let result = m.query("?- dossier(4, 47, O, A, S, N, R).").unwrap();
    // Cast members in the opening scene: brandon, phillip, david,
    // mrs_wilson, janet, rupert (6 of them) × stories cross product.
    assert!(!result.rows.is_empty());
    assert!(result.plans_considered >= 1);
    let distinct_actors: std::collections::BTreeSet<String> =
        result.rows.iter().map(|r| r[1].to_string()).collect();
    assert!(distinct_actors.len() >= 5, "{distinct_actors:?}");
    assert!(!result.incomplete);
}

#[test]
fn hundred_query_session_stays_consistent() {
    let mut m = big_world(3);
    // A tight cache budget forces continuous eviction.
    m.caches()
        .policy()
        .answer_budget(Some(1_024))
        .apply()
        .unwrap();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    let t0 = m.now();
    for i in 0..100 {
        let f = (i % 10) * 30;
        let result = m.query(format!("?- scene({f}, {}, O).", f + 40)).unwrap();
        assert!(!result.rows.is_empty());
        if f == 0 {
            let mut rows = result.rows.clone();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "answers drifted at query {i}"),
            }
        }
    }
    // The virtual clock progressed substantially and the caches did real
    // work under pressure.
    assert!(m.now().duration_since(t0).as_secs_f64() > 10.0);
    let snap = m.caches().stats();
    assert!(snap.answers.evictions > 0, "budget never binded");
    assert!(snap.cim.exact_hits + snap.cim.misses >= 100);
    let dcsm = m.dcsm();
    assert!(dcsm.lock().db().len() >= 10);
}

#[test]
fn concurrent_answers_match_serial_across_seeds() {
    // The tentpole soundness property: a ConcurrentMediator serving four
    // threads produces, per query, exactly the answer multiset a serial
    // mediator over the same world produces — across ten seeds, with each
    // thread walking the query mix from a different offset so cache hits,
    // partial hits, and misses interleave differently every run.
    const QUERIES: [&str; 5] = [
        "?- scene(0, 40, O).",
        "?- scene(30, 70, O).",
        "?- played_by('brandon', A).",
        "?- near(50, 50, 30, P).",
        "?- rte('place1', 'aberdeen', R).",
    ];
    for seed in 0..10u64 {
        let mut serial = big_world(seed);
        let reference: Vec<Vec<Vec<Value>>> = QUERIES
            .iter()
            .map(|q| {
                let mut rows = serial.query(*q).unwrap().rows;
                rows.sort();
                rows
            })
            .collect();

        let server = big_world(seed).to_concurrent(4);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let reference = &reference;
                let server = &server;
                s.spawn(move || {
                    for k in 0..QUERIES.len() {
                        let q = (t + k) % QUERIES.len();
                        let mut rows = server.query(QUERIES[q]).unwrap().rows;
                        rows.sort();
                        assert_eq!(
                            rows, reference[q],
                            "seed {seed} thread {t} query {q} diverged from serial answers"
                        );
                    }
                });
            }
        });
        assert_eq!(server.stats().queries, 20);
    }
}

#[test]
fn sharded_cache_coherent_under_concurrent_mutation() {
    use hermes::cim::{CimResolution, CimView};
    use hermes::{GroundCall, ShardedCim, SimInstant};

    let cim = ShardedCim::new(8);
    let call_for = |i: u64| {
        let domain = if i.is_multiple_of(2) { "keep" } else { "drop" };
        GroundCall::new(domain, format!("f{}", i % 4), vec![Value::Int(i as i64)])
    };
    let answers_for =
        |i: u64| -> Arc<[Value]> { vec![Value::Int(i as i64), Value::Int(-(i as i64))].into() };

    std::thread::scope(|s| {
        // Two writers over disjoint key ranges.
        for w in 0..2u64 {
            let cim = &cim;
            s.spawn(move || {
                for i in (w * 200)..(w * 200 + 200) {
                    cim.store(call_for(i), answers_for(i), true, SimInstant::EPOCH);
                }
            });
        }
        // An invalidator repeatedly sweeping the `drop` domain while the
        // writers are still landing entries in it.
        let invalidator = &cim;
        s.spawn(move || {
            for _ in 0..50 {
                invalidator.invalidate_domain("drop");
                std::thread::yield_now();
            }
        });
        // Readers: whatever the interleaving, a hit must carry exactly the
        // answer set that was stored for that call — never a torn state.
        for r in 0..2u64 {
            let cim = &cim;
            s.spawn(move || {
                for k in 0..400u64 {
                    let i = (k + r * 13) % 400;
                    let (res, _) = cim.lookup(&call_for(i), SimInstant::EPOCH);
                    if let CimResolution::ExactHit { answers } = res {
                        assert_eq!(
                            answers.as_ref(),
                            answers_for(i).as_ref(),
                            "torn read for call {i}"
                        );
                    }
                }
            });
        }
    });

    // Quiesced: one final sweep leaves exactly the `keep` entries, intact.
    cim.invalidate_domain("drop");
    assert_eq!(cim.len(), 200);
    for i in (0..400u64).filter(|i| i.is_multiple_of(2)) {
        let (res, _) = cim.lookup(&call_for(i), SimInstant::EPOCH);
        match res {
            CimResolution::ExactHit { answers } => {
                assert_eq!(answers.as_ref(), answers_for(i).as_ref())
            }
            other => panic!("keep call {i} lost: {other:?}"),
        }
    }
    for i in (0..400u64).filter(|i| i % 2 == 1) {
        let (res, _) = cim.lookup(&call_for(i), SimInstant::EPOCH);
        assert!(
            matches!(res, CimResolution::Miss { .. }),
            "drop call {i} survived invalidation"
        );
    }
}

#[test]
fn single_flight_coalesces_identical_concurrent_calls() {
    use hermes::domains::SlowDomain;
    use std::sync::atomic::Ordering;
    use std::sync::Barrier;
    use std::time::Duration;

    // A source whose calls take 150 ms of *real* time: long enough that
    // every thread released by the barrier reaches the in-flight registry
    // while the first call is still on the wire.
    let synth = SyntheticDomain::generate("d1", 11, &[RelationSpec::uniform("p", 20, 3.0)]);
    let a0 = synth.domain_values("p")[0].clone();
    let slow = SlowDomain::new(Arc::new(synth), Duration::from_millis(150));
    let counter = slow.counter();
    let mut net = Network::new(11);
    net.place(Arc::new(slow), profiles::maryland());
    let m = Mediator::from_source("item(A, B) :- in(B, d1:p_bf(A)).", net).unwrap();
    let server = m.to_concurrent(4);

    const K: usize = 6;
    let query = format!("?- item({}, B).", a0.to_literal());
    let barrier = Barrier::new(K);
    let rows: Vec<Vec<Vec<Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (server, barrier, query) = (&server, &barrier, &query);
                s.spawn(move || {
                    barrier.wait();
                    let mut rows = server.query(query.as_str()).unwrap().rows;
                    rows.sort();
                    rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(!rows[0].is_empty());
    for r in &rows[1..] {
        assert_eq!(r, &rows[0], "coalesced answers diverged");
    }
    // Exactly one source round trip for K identical concurrent calls: the
    // flight leader paid it; everyone else coalesced onto the in-flight
    // call or hit the cache the leader filled.
    assert_eq!(counter.load(Ordering::Relaxed), 1, "source asked twice");
    assert_eq!(server.network().source_calls(), 1);
    let flight = server.flight();
    assert!(flight.calls_coalesced() >= 1, "no call ever coalesced");
    assert_eq!(flight.round_trips_saved(), flight.calls_coalesced());
    assert_eq!(server.stats().queries as usize, K);
}

#[test]
fn subplan_single_flight_materializes_once_and_shares_rows() {
    use hermes::domains::SlowDomain;
    use std::sync::Barrier;
    use std::time::Duration;

    // K threads fire the *same whole query* at once. With subplan sharing
    // on, the matcache's plan-level single flight elects one leader; every
    // other thread blocks on the flight and is served the leader's
    // materialized snapshot — one materialization total, and the follower
    // rows share the leader's allocations instead of re-deriving them.
    let synth = SyntheticDomain::generate("d1", 13, &[RelationSpec::uniform("p", 20, 3.0)]);
    let slow = SlowDomain::new(Arc::new(synth), Duration::from_millis(150));
    let mut net = Network::new(13);
    net.place(Arc::new(slow), profiles::maryland());
    let mut m = Mediator::from_source(
        "item(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).",
        net,
    )
    .unwrap();
    m.caches().policy().share_subplans(true).apply().unwrap();
    let server = m.to_concurrent(4);

    const K: usize = 6;
    let query = "?- item(A, B).".to_string();
    let barrier = Barrier::new(K);
    let rows: Vec<Vec<Vec<Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let (server, barrier, query) = (&server, &barrier, &query);
                s.spawn(move || {
                    barrier.wait();
                    server.query(query.as_str()).unwrap().rows
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(!rows[0].is_empty());
    for r in &rows[1..] {
        let (mut a, mut b) = (rows[0].clone(), r.clone());
        a.sort();
        b.sort();
        assert_eq!(a, b, "shared subplan answers diverged");
    }
    // Exactly one thread ran the plan; the rest were served the snapshot
    // (coalesced onto the flight, or a cache hit if they arrived after
    // the leader published).
    let stats = server.stats();
    assert_eq!(
        stats.subplans_materialized, 1,
        "materialized more than once"
    );
    assert_eq!(
        stats.subplans_coalesced + stats.subplan_hits,
        (K - 1) as u64,
        "every non-leader should be served the shared snapshot"
    );
    assert!(stats.subplans_coalesced >= 1, "no thread ever coalesced");
    // Served rows share the materialized allocations: any string answer in
    // a follower's rows is the *same* Arc<str> as the leader's, not a copy.
    let find_str = |rows: &[Vec<Value>]| -> Arc<str> {
        let mut sorted = rows.to_vec();
        sorted.sort();
        sorted
            .iter()
            .flatten()
            .find_map(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("no string answer to compare")
    };
    let first = find_str(&rows[0]);
    for r in &rows[1..] {
        assert!(
            Arc::ptr_eq(&first, &find_str(r)),
            "follower re-derived its rows instead of sharing the snapshot"
        );
    }
}

#[test]
fn deep_unfolding_chain() {
    // A chain of IDB predicates ten levels deep still plans and runs.
    let mut src = String::from("p0(A, B) :- chainable(A, B).\n");
    for i in 1..10 {
        src.push_str(&format!(
            "p{i}(A, B) :- p{}(A, C) & chainable(C, B).\n",
            i - 1
        ));
    }
    src.push_str("chainable(A, B) :- in(B, synth:r_bf(A)).\n");
    let synth = SyntheticDomain::generate("synth", 9, &[RelationSpec::uniform("r", 60, 1.2)]);
    let a0 = synth.domain_values("r")[0].clone();
    let mut net = Network::new(9);
    net.place(Arc::new(synth), profiles::maryland());
    let mut m = Mediator::from_source(&src, net).unwrap();
    m.config_mut().rewrite.max_plans = 4;
    let result = m.query(format!("?- p9({}, B).", a0.to_literal())).unwrap();
    // The chain may die out; what matters is it plans, runs, terminates.
    assert!(result.plans_considered >= 1);
    assert!(result.stats.calls_attempted >= 1);
}
