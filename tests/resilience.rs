//! Resilience integration tests: the deterministic chaos harness and the
//! executor's fault-handling machinery working together end to end.
//!
//! The four scenarios here are the acceptance criteria for the resilient
//! execution layer:
//!   1. the same seeded `FaultPlan` replays bit-identically (traces AND
//!      answers);
//!   2. an open circuit breaker short-circuits a dead site, answering in
//!      far less simulated time than retry backoff alone;
//!   3. a deadline-bounded query returns partial answers with per-subgoal
//!      completeness provenance instead of running forever;
//!   4. failover replanning answers a query whose original plan routes
//!      through a dead site.

use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::video::gen::{rope_store, ROPE_CAST};
use hermes::net::profiles;
use hermes::{
    BreakerConfig, BreakerState, FaultPlan, HermesError, IncompleteReason, Mediator, Network,
    QueryResult, SimDuration, SimInstant, Value,
};
use std::sync::Arc;

fn cast_table() -> Table {
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap(),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .unwrap();
    }
    cast
}

/// The rope-cast join world used by the end-to-end tests, with a seeded
/// chaos plan layered on the network: the transatlantic video site drops
/// and truncates calls, the relational site flaps, and a latency spike
/// covers the first minute.
fn chaos_mediator(net_seed: u64, fault_seed: u64) -> Mediator {
    let relation = RelationalDomain::new("relation");
    relation.add_table(cast_table());
    let mut net = Network::new(net_seed);
    net.place(Arc::new(rope_store()), profiles::italy());
    net.place(relation, profiles::cornell());
    net.set_fault_plan(
        FaultPlan::new(fault_seed)
            .drop_rate("milan", 0.15)
            .drop_rate("cornell", 0.15)
            .truncation("milan", 0.5, 0.6)
            .flapping(
                "cornell",
                SimDuration::from_secs(8),
                SimDuration::from_secs(1),
                SimDuration::from_secs(4),
            )
            .latency_spike(
                "milan",
                SimInstant::EPOCH,
                SimInstant::EPOCH + SimDuration::from_secs(60),
                2.0,
            ),
    );
    let mut m = Mediator::from_source(
        "
        scene_actors(F, L, Object, Actor) :-
            in(Object, video:frames_to_objects('rope', F, L)) &
            in(Tuple, relation:select_eq('cast', 'role', Object)) &
            =(Tuple.name, Actor).
        ",
        net,
    )
    .unwrap();
    // Retries ride out drops and one-second flap windows; a generous
    // breaker threshold keeps this run in pure retry territory so the two
    // replays exercise the full fault surface instead of short-circuiting.
    let exec = &mut m.config_mut().exec;
    exec.collect_trace = true;
    exec.retry_attempts = 3;
    m.breakers().lock().set_config(BreakerConfig {
        failure_threshold: 32,
        cooldown: SimDuration::from_secs(30),
    });
    m
}

fn run_chaos(net_seed: u64, fault_seed: u64) -> QueryResult {
    let mut m = chaos_mediator(net_seed, fault_seed);
    m.query("?- scene_actors(0, 935, O, A).").unwrap()
}

#[test]
fn seeded_chaos_replays_bit_identically() {
    let a = run_chaos(11, 1996);
    let b = run_chaos(11, 1996);
    // Bit-identical replay: every event at the same virtual instant, the
    // same answers, the same counters, the same provenance.
    assert_eq!(a.trace, b.trace);
    assert!(!a.trace.is_empty());
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.t_all, b.t_all);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.incomplete, b.incomplete);
    assert_eq!(a.provenance, b.provenance);
    // The plan actually injected faults: this seed pays retries.
    assert!(
        a.stats.retries > 0 || a.stats.truncated_calls > 0,
        "chaos plan injected nothing: {:?}",
        a.stats
    );
    // Truncated answer sets are never silently passed off as complete.
    if a.stats.truncated_calls > 0 {
        assert!(a.incomplete);
        assert!(a.provenance.iter().any(|p| p
            .gaps
            .iter()
            .any(|g| matches!(g, IncompleteReason::Truncated { .. }))));
    }
}

#[test]
fn different_fault_seed_is_a_different_storm() {
    let a = run_chaos(11, 1996);
    let b = run_chaos(11, 2025);
    // Same world, different storm: the traces must diverge (drops and
    // truncations are drawn from the fault plan's own stream).
    assert_ne!(a.trace, b.trace);
}

/// Two replicas of the same synthetic relation: `d1` healthy at Cornell,
/// `d2` at Milan inside a day-long outage. The program lists the doomed
/// replica's rule first so the rewriter always produces a plan through it.
fn replicated_mediator() -> Mediator {
    let spec = [RelationSpec::uniform("p", 8, 2.0)];
    let d1 = SyntheticDomain::generate("d1", 42, &spec);
    let d2 = SyntheticDomain::generate("d2", 42, &spec);
    let mut net = Network::new(5);
    net.place(Arc::new(d1), profiles::cornell());
    net.place(
        Arc::new(d2),
        profiles::italy().with_outage(
            SimInstant::EPOCH,
            SimInstant::EPOCH + SimDuration::from_secs(86_400),
        ),
    );
    Mediator::from_source(
        "
        item(A, B) :- in(B, d2:p_bf(A)).
        item(A, B) :- in(B, d1:p_bf(A)).
        ",
        net,
    )
    .unwrap()
}

/// Forces the chosen plan onto the dead `d2` replica.
fn choose_dead_plan(planned: &mut hermes::core::Planned) {
    planned.chosen = planned
        .plans
        .iter()
        .position(|p| p.to_string().contains("d2:"))
        .expect("a plan uses the d2 replica");
}

#[test]
fn failover_replans_around_a_dead_site() {
    let mut m = replicated_mediator();
    let mut planned = m.plan("?- item('p_1', B).").unwrap();
    assert!(planned.plans.len() >= 2);
    choose_dead_plan(&mut planned);
    let result = m.execute(planned, None).unwrap();
    // The doomed plan failed over onto the live replica and answered.
    assert_eq!(result.failovers, 1);
    assert!(!result.incomplete);
    assert!(result.plan.to_string().contains("d1:"));
    let mut direct = m.query("?- item('p_1', B).").unwrap().rows;
    let mut rows = result.rows;
    rows.sort();
    direct.sort();
    assert_eq!(rows, direct);
}

#[test]
fn breaker_short_circuit_beats_retry_backoff() {
    // Both mediators are forced onto the dead replica twice and fail over.
    // The retry-only one pays the full exponential backoff ladder against
    // the dead site every time; the breaker one pays it once, trips, and
    // afterwards short-circuits in zero simulated time.
    let run_twice = |with_breaker: bool| -> (SimDuration, QueryResult) {
        let mut m = replicated_mediator();
        let exec = &mut m.config_mut().exec;
        exec.retry_attempts = 2;
        exec.retry_backoff_ms = 500.0;
        exec.retry_jitter_frac = 0.0;
        m.breakers().lock().set_config(BreakerConfig {
            failure_threshold: if with_breaker { 1 } else { u32::MAX },
            cooldown: SimDuration::from_secs(3_600),
        });
        let mut planned = m.plan("?- item('p_1', B).").unwrap();
        choose_dead_plan(&mut planned);
        m.execute(planned, None).unwrap();
        // The mediator's persistent clock includes the virtual time the
        // dead plan burned before failing over, so the second query's
        // true cost is the clock delta around it.
        let before = m.now();
        let mut planned = m.plan("?- item('p_2', B).").unwrap();
        choose_dead_plan(&mut planned);
        let second = m.execute(planned, None).unwrap();
        (m.now().duration_since(before), second)
    };
    let (t_retry, retry_result) = run_twice(false);
    let (t_breaker, breaker_result) = run_twice(true);
    // Retry-only: 500ms + 1000ms of backoff before giving up on d2.
    assert!(
        t_retry >= SimDuration::from_millis(1_500),
        "retry-only second query too fast: {t_retry}"
    );
    assert_eq!(retry_result.stats.breaker_short_circuits, 0);
    // Breaker: the open breaker rejects d2 instantly, so the second query
    // costs roughly one live call — a fraction of the retry ladder.
    assert!(
        t_breaker * 4 < t_retry,
        "breaker {t_breaker} not ≪ retry-only {t_retry}"
    );
    assert!(breaker_result.stats.breaker_short_circuits >= 1);
    assert_eq!(breaker_result.stats.retries, 0);
    assert_eq!(breaker_result.failovers, 1);
    // Both still produce the same answers, just at different cost.
    let mut a = retry_result.rows;
    let mut b = breaker_result.rows;
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn breaker_state_outlives_queries_and_recovers_on_the_virtual_clock() {
    let mut m = replicated_mediator();
    m.breakers().lock().set_config(BreakerConfig {
        failure_threshold: 1,
        cooldown: SimDuration::from_secs(3_600),
    });
    let mut planned = m.plan("?- item('p_1', B).").unwrap();
    choose_dead_plan(&mut planned);
    m.execute(planned, None).unwrap();
    assert_eq!(
        m.breakers().lock().state_at("milan", m.now()),
        BreakerState::Open
    );
    // Past the cooldown the breaker is willing to probe again.
    m.advance_clock(SimDuration::from_secs(4_000));
    assert_eq!(
        m.breakers().lock().state_at("milan", m.now()),
        BreakerState::HalfOpen
    );
}

#[test]
fn deadline_bounds_query_and_reports_provenance() {
    let world = || {
        let relation = RelationalDomain::new("relation");
        relation.add_table(cast_table());
        let mut net = Network::new(7);
        net.place(Arc::new(rope_store()), profiles::cornell());
        net.place(relation, profiles::maryland());
        Mediator::from_source(
            "
            scene_actors(F, L, Object, Actor) :-
                in(Object, video:frames_to_objects('rope', F, L)) &
                in(Tuple, relation:select_eq('cast', 'role', Object)) &
                =(Tuple.name, Actor).
            ",
            net,
        )
        .unwrap()
    };
    // Baseline: how long the full query takes in this world.
    let mut baseline = world();
    let full = baseline.query("?- scene_actors(0, 935, O, A).").unwrap();
    let t_first = full.t_first.unwrap();
    assert!(t_first < full.t_all);
    // Rerun the identical world with a deadline between first answer and
    // completion: the query is cut off cleanly, partway through.
    let midpoint = SimDuration::from_micros((t_first.as_micros() + full.t_all.as_micros()) / 2);
    let mut bounded = world();
    bounded.config_mut().exec.deadline = Some(midpoint);
    let partial = bounded.query("?- scene_actors(0, 935, O, A).").unwrap();
    assert!(partial.t_all <= full.t_all);
    assert!(partial.incomplete);
    assert_eq!(partial.stats.deadline_aborts, 1);
    // Partial but real: a non-empty prefix of the full answer stream.
    assert!(!partial.rows.is_empty());
    assert!(partial.rows.len() < full.rows.len());
    assert_eq!(partial.rows[..], full.rows[..partial.rows.len()]);
    // And the gap is attributed, per subgoal, to the deadline.
    assert!(partial
        .provenance
        .iter()
        .any(|p| p.gaps.contains(&IncompleteReason::DeadlineExceeded)));
}

#[test]
fn strict_deadline_is_a_typed_error() {
    let d1 = SyntheticDomain::generate("d1", 3, &[RelationSpec::uniform("p", 8, 2.0)]);
    let mut net = Network::new(3);
    net.place(Arc::new(d1), profiles::cornell());
    let mut m = Mediator::from_source(
        "
        pair(A, B) :- in(A, d1:p_ff()) & in(B, d1:p_ff()).
        ",
        net,
    )
    .unwrap();
    m.config_mut().exec.deadline = Some(SimDuration::ZERO);
    m.config_mut().exec.deadline_strict = true;
    let err = m.query("?- pair(A, B).").unwrap_err();
    assert!(matches!(err, HermesError::DeadlineExceeded { .. }), "{err}");
}
