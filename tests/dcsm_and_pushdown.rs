//! Integration tests: DCSM lifecycle management in vivo, selection
//! pushdown end-to-end, and the text-database federation.

use hermes::core::PushdownRule;
use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::text::newswire;
use hermes::net::profiles;
use hermes::{CimPolicy, Mediator, Network, Value};
use std::sync::Arc;

fn inventory_mediator(seed: u64, with_pushdown: bool, with_index: bool) -> Mediator {
    let rel = RelationalDomain::new("relation");
    let mut inv = Table::new(
        "inventory",
        Schema::new(vec![
            Column::new("item", ColumnType::Str),
            Column::new("loc", ColumnType::Str),
            Column::new("qty", ColumnType::Int),
        ])
        .unwrap(),
    );
    for i in 0..3_000i64 {
        inv.insert(vec![
            Value::str(format!("item_{}", i % 60)),
            Value::str(format!("depot_{}", i % 7)),
            Value::Int(i % 100),
        ])
        .unwrap();
    }
    if with_index {
        inv.create_hash_index("item").unwrap();
    }
    rel.add_table(inv);
    let mut net = Network::new(seed);
    net.place(rel, profiles::cornell());
    let mut m = Mediator::from_source(
        "
        stock(Item, Loc, Qty) :-
            in(T, relation:all('inventory')) &
            =(T.item, Item) & =(T.loc, Loc) & =(T.qty, Qty).
        ",
        net,
    )
    .unwrap();
    m.caches()
        .policy()
        .routing(CimPolicy::never())
        .apply()
        .unwrap();
    if with_pushdown {
        m.add_pushdown(PushdownRule::relational("relation"));
    }
    m
}

#[test]
fn pushdown_plan_is_chosen_and_faster_on_indexed_tables() {
    let q = "?- stock('item_7', Loc, Qty).";
    // Train both mediators so estimates are informed.
    let train = |m: &mut Mediator| {
        for i in 0..4 {
            let _ = m.query(format!("?- stock('item_{i}', L, Q)."));
            let _ = m.query(format!(
                "?- in(T, relation:select_eq('inventory', 'item', 'item_{i}')))."
            ));
        }
    };
    let mut plain = inventory_mediator(3, false, true);
    train(&mut plain);
    let mut pushed = inventory_mediator(3, true, true);
    train(&mut pushed);

    let r_plain = plain.query(q).unwrap();
    let r_pushed = pushed.query(q).unwrap();

    // Same answers either way (row order may differ across plans).
    let mut a = r_plain.rows.clone();
    let mut b = r_pushed.rows.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(a.len(), 50); // 3000 rows / 60 items

    // The pushed mediator chose the fused select_eq plan and won big: the
    // scan ships 3000 rows over the WAN, the indexed select ships 50.
    assert!(
        r_pushed.plan.to_string().contains("select_eq"),
        "chosen plan:\n{}",
        r_pushed.plan
    );
    assert!(
        r_pushed.t_all.as_millis_f64() * 3.0 < r_plain.t_all.as_millis_f64(),
        "pushed {} vs plain {}",
        r_pushed.t_all,
        r_plain.t_all
    );
    assert!(r_pushed.stats.bytes < r_plain.stats.bytes / 3);
}

#[test]
fn range_pushdown_end_to_end() {
    let mut m = inventory_mediator(5, true, false);
    let low = m
        .query("?- in(T, relation:all('inventory')) & <(T.qty, 5) & =(T.item, I).")
        .unwrap();
    // 3000 rows, qty = i % 100 → 5% have qty < 5.
    assert_eq!(low.rows.len(), 150);
    // The plan space includes the select_lt fusion.
    let planned = m
        .plan("?- in(T, relation:all('inventory')) & <(T.qty, 5) & =(T.item, I).")
        .unwrap();
    assert!(planned
        .plans
        .iter()
        .any(|p| p.to_string().contains("select_lt('inventory', 'qty', 5)")));
}

#[test]
fn dcsm_maintenance_in_vivo() {
    let mut m = inventory_mediator(7, true, true);
    // Generate estimator traffic on one hot shape.
    for i in 0..6 {
        let _ = m.query(format!("?- stock('item_{i}', L, Q)."));
    }
    let dcsm = m.dcsm();
    let mut dcsm = dcsm.lock();
    assert!(dcsm.tables().is_empty());
    let (created, _) = dcsm.maintain(3, 0);
    assert!(!created.is_empty(), "hot shapes should be materialized");
    // Pick a materialized shape whose function actually executed (has
    // detail records — the optimizer costs *every* candidate plan, so
    // never-executed functions can be hot too).
    let shape = created
        .iter()
        .find(|s| !dcsm.db().records_for(&s.domain, &s.function).is_empty())
        .expect("some hot shape belongs to an executed function")
        .clone();
    // Its table answers a matching pattern; after dropping the detail the
    // estimate still comes from the summary, not the prior.
    let sample_call = dcsm.db().records_for(&shape.domain, &shape.function)[0]
        .call
        .clone();
    let pattern = shape.project(&sample_call.pattern()).unwrap();
    let freed = dcsm.drop_detail(&shape.domain, &shape.function);
    assert!(freed > 0);
    let est = dcsm.cost(&pattern);
    assert!(est.t_all_ms() > 0.0);
    assert!(
        matches!(est.source, hermes::dcsm::EstimateSource::Summary { .. }),
        "source {:?}",
        est.source
    );
}

#[test]
fn text_federation_queries_run() {
    let text = newswire(11, "text", "usatoday", 3_000);
    let mut net = Network::new(11);
    net.place(Arc::new(text), profiles::bucknell());
    let mut m = Mediator::from_source(
        "
        headlines(Term, H) :-
            in(D, text:search('usatoday', Term)) & =(D.headline, H).
        both(T1, T2, H) :-
            in(D, text:search_and('usatoday', T1, T2)) & =(D.headline, H).
        story(Id, Body) :-
            in(D, text:fetch('usatoday', Id)) & =(D.body, Body).
        ",
        net,
    )
    .unwrap();

    let popular = m.query("?- headlines('election', H).").unwrap();
    let rare = m.query("?- headlines('taxes', H).").unwrap();
    assert!(popular.rows.len() > rare.rows.len());
    assert!(
        popular.t_all > rare.t_all,
        "posting-list skew shows in time"
    );

    let both = m.query("?- both('election', 'budget', H).").unwrap();
    assert!(both.rows.len() <= popular.rows.len());

    let story = m.query("?- story(5, B).").unwrap();
    assert_eq!(story.rows.len(), 1);

    // Second run of the popular query: served by the cache.
    let again = m.query("?- headlines('election', H).").unwrap();
    assert_eq!(again.rows, popular.rows);
    assert_eq!(again.stats.actual_calls, 0);
}

#[test]
fn dcsm_learns_posting_list_skew() {
    let text = newswire(13, "text", "usatoday", 3_000);
    let mut net = Network::new(13);
    net.place(Arc::new(text), profiles::maryland());
    let mut m = Mediator::from_source(
        "headlines(Term, H) :- in(D, text:search('usatoday', Term)) & =(D.headline, H).",
        net,
    )
    .unwrap();
    m.caches()
        .policy()
        .routing(CimPolicy::never())
        .apply()
        .unwrap();
    for _ in 0..3 {
        m.query("?- headlines('election', H).").unwrap();
        m.query("?- headlines('taxes', H).").unwrap();
    }
    let dcsm = m.dcsm();
    let dcsm = dcsm.lock();
    let est = |term: &str| {
        dcsm.cost(
            &hermes::GroundCall::new(
                "text",
                "search",
                vec![Value::str("usatoday"), Value::str(term)],
            )
            .pattern(),
        )
    };
    let hot = est("election");
    let cold = est("taxes");
    assert!(hot.cardinality() > cold.cardinality());
    assert!(hot.t_all_ms() > cold.t_all_ms());
}
