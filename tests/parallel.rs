//! Parallel scheduler integration tests: determinism on the virtual
//! clock, answer-set equivalence with the sequential executor, deadline
//! behaviour mid-group, same-site batching, and the builder API.

use hermes::core::trace::{self, TraceEvent};
use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::net::profiles;
use hermes::{ExecConfig, Mediator, Network, QueryRequest, SimDuration, Value};
use std::sync::Arc;

/// Four independent synthetic relations, one domain per site.
fn four_site_world(seed: u64) -> Mediator {
    let mut net = Network::new(seed);
    for (i, site) in [
        profiles::maryland(),
        profiles::cornell(),
        profiles::bucknell(),
        profiles::maryland(),
    ]
    .into_iter()
    .enumerate()
    {
        let d = SyntheticDomain::generate(
            format!("d{}", i + 1),
            seed.wrapping_add(i as u64),
            &[RelationSpec::uniform("p", 4, 1.0)],
        );
        net.place(Arc::new(d), site);
    }
    let mut m = Mediator::from_source("", net).unwrap();
    m.caches()
        .policy()
        .routing(hermes::CimPolicy::never())
        .apply()
        .unwrap();
    m
}

const FOUR_CALLS: &str = "?- in(A, d1:p_ff()) & in(B, d2:p_ff()) &
                             in(C, d3:p_ff()) & in(D, d4:p_ff()).";

fn sorted(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

#[test]
fn parallel_runs_are_deterministic() {
    // Ten runs from identical seeds must agree bit-for-bit: same answers
    // in the same order, same trace event sequence, same virtual times.
    let reference = four_site_world(11)
        .query(QueryRequest::new(FOUR_CALLS).parallelism(4).trace(true))
        .unwrap();
    assert!(reference.stats.parallel_groups >= 1);
    for _ in 0..9 {
        let run = four_site_world(11)
            .query(QueryRequest::new(FOUR_CALLS).parallelism(4).trace(true))
            .unwrap();
        assert_eq!(run.rows, reference.rows);
        assert_eq!(run.t_all, reference.t_all);
        assert_eq!(trace::render(&run.trace), trace::render(&reference.trace));
    }
}

#[test]
fn parallel_answer_multiset_matches_sequential() {
    for seed in 1..=5 {
        let serial = four_site_world(seed).query(FOUR_CALLS).unwrap();
        for k in [2, 3, 4, 8] {
            let parallel = four_site_world(seed)
                .query(QueryRequest::new(FOUR_CALLS).parallelism(k))
                .unwrap();
            assert_eq!(
                sorted(&parallel.rows),
                sorted(&serial.rows),
                "seed {seed}, parallelism {k}"
            );
            assert!(
                parallel.t_all <= serial.t_all,
                "seed {seed}, parallelism {k}: {} > {}",
                parallel.t_all,
                serial.t_all
            );
        }
    }
}

#[test]
fn parallel_run_emits_group_trace_and_in_flight_peaks() {
    let mut m = four_site_world(3);
    let result = m
        .query(QueryRequest::new(FOUR_CALLS).parallelism(4).trace(true))
        .unwrap();
    assert!(result
        .trace
        .iter()
        .any(|e| matches!(e.event, TraceEvent::GroupDispatched { calls: 4, .. })));
    assert!(result
        .trace
        .iter()
        .any(|e| matches!(e.event, TraceEvent::Overlapped { .. })));
    assert!(result.stats.overlapped_calls == 4);
    assert!(result.stats.overlap_saved_us > 0);
    // d1 and d4 share the Maryland site, so its peak must reach 2 while
    // the single-tenant sites stay at 1.
    assert_eq!(m.network().peak_in_flight("umd"), 2);
    assert_eq!(m.network().peak_in_flight("cornell"), 1);
    assert_eq!(m.network().peak_in_flight("bucknell"), 1);
}

#[test]
fn deadline_mid_group_cancels_undispatched_calls() {
    // Two slots, four slow calls: the second wave's slots open only after
    // the first wave's ~400ms+ transfers, far past the 150ms deadline, so
    // those members are abandoned with a Cancelled trace event and the
    // run returns partial answers.
    let mut net = Network::new(9);
    for i in 0..4 {
        let d = SyntheticDomain::generate(
            format!("d{}", i + 1),
            i as u64,
            &[RelationSpec::uniform("p", 4, 1.0)],
        );
        net.place(Arc::new(d), profiles::cornell());
    }
    let mut m = Mediator::from_source("", net).unwrap();
    m.caches()
        .policy()
        .routing(hermes::CimPolicy::never())
        .apply()
        .unwrap();
    let result = m
        .query(
            QueryRequest::new(FOUR_CALLS)
                .parallelism(2)
                .deadline(SimDuration::from_millis_f64(150.0))
                .trace(true),
        )
        .unwrap();
    assert!(result.incomplete);
    assert!(result.stats.deadline_aborts >= 1);
    assert!(
        result.stats.cancelled_calls >= 2,
        "expected the second wave abandoned, stats: {:?}",
        result.stats
    );
    assert!(result
        .trace
        .iter()
        .any(|e| matches!(e.event, TraceEvent::Cancelled { .. })));
}

#[test]
fn repeated_site_function_calls_batch_into_one_round_trip() {
    // Both group members target d1:p_ff — the second piggybacks on the
    // first's round trip, and the answers still match the serial run.
    let query = "?- in(A, d1:p_ff()) & in(B, d1:p_ff()).";
    let world = |seed| {
        let mut net = Network::new(seed);
        let d = SyntheticDomain::generate("d1", 5, &[RelationSpec::uniform("p", 4, 1.0)]);
        net.place(Arc::new(d), profiles::cornell());
        let mut m = Mediator::from_source("", net).unwrap();
        m.caches()
            .policy()
            .routing(hermes::CimPolicy::never())
            .apply()
            .unwrap();
        m
    };
    let serial = world(21).query(query).unwrap();
    let parallel = world(21)
        .query(QueryRequest::new(query).parallelism(2))
        .unwrap();
    assert!(parallel.stats.batched_calls >= 1, "{:?}", parallel.stats);
    assert_eq!(sorted(&parallel.rows), sorted(&serial.rows));
    assert!(parallel.t_all < serial.t_all);
}

#[test]
fn exec_config_builder_sets_every_parallel_knob() {
    let cfg = ExecConfig::builder()
        .max_parallel_calls(4)
        .batch_calls(false)
        .dispatch_overhead_ms(0.25)
        .collect_trace(true)
        .deadline(Some(SimDuration::from_millis_f64(10.0)))
        .build();
    assert_eq!(cfg.max_parallel_calls, 4);
    assert!(!cfg.batch_calls);
    assert!((cfg.dispatch_overhead_ms - 0.25).abs() < 1e-12);
    assert!(cfg.collect_trace);
    assert_eq!(cfg.deadline, Some(SimDuration::from_millis_f64(10.0)));
}
