//! # hermes
//!
//! A from-scratch Rust reproduction of **"Query Caching and Optimization in
//! Distributed Mediator Systems"** (Adali, Candan, Papakonstantinou,
//! Subrahmanian — SIGMOD 1996): the HERMES mediator with
//!
//! * **intelligent result caching** — a Cache and Invariant Manager (CIM)
//!   that serves domain calls from prior results, including calls never
//!   cached explicitly, via *invariants* (`Cond ⇒ DC1 {=, ⊇} DC2`);
//! * **statistics-cache cost optimization** — a Domain Cost and Statistics
//!   Module (DCSM) that learns `[T_first, T_all, Card]` vectors from actual
//!   calls, summarizes them losslessly or lossily, and costs candidate
//!   plans for sources that have no cost model at all;
//! * **a rule rewriter and pipelined executor** over a simulated wide-area
//!   network of heterogeneous sources: a relational engine, flat files, an
//!   AVIS-style video store, a spatial index, and a terrain path planner.
//!
//! This crate re-exports the workspace's public API. Start with
//! [`Mediator`]:
//!
//! ```
//! use hermes::{Mediator, Network, profiles};
//! use hermes::domains::video::gen::rope_store;
//! use std::sync::Arc;
//!
//! let mut net = Network::new(7);
//! net.place(Arc::new(rope_store()), profiles::italy());
//!
//! let mut mediator = Mediator::from_source(
//!     "objects_in(V, F, L, O) :- in(O, video:frames_to_objects(V, F, L)).",
//!     net,
//! ).unwrap();
//!
//! let cold = mediator.query("?- objects_in('rope', 4, 47, O).").unwrap();
//! let warm = mediator.query("?- objects_in('rope', 4, 47, O).").unwrap();
//! assert_eq!(cold.rows, warm.rows);
//! // Transatlantic call answered from the local cache the second time:
//! assert!(warm.t_all.as_millis_f64() * 10.0 < cold.t_all.as_millis_f64());
//! ```

pub use hermes_analysis as analysis;
pub use hermes_cim as cim;
pub use hermes_common as common;
pub use hermes_core as core;
pub use hermes_dcsm as dcsm;
pub use hermes_domains as domains;
pub use hermes_lang as lang;
pub use hermes_net as net;

pub use hermes_analysis::{
    analyze_source, analyze_source_with, report_from_json, report_to_json, report_to_sarif,
    AnalysisReport, AnalyzeOptions, Analyzer, DiagCode, Diagnostic, FileReport, Fingerprint,
    MaterializationVerdicts, QueryForm, Severity, SubplanKey, SubplanVerdict,
};
pub use hermes_cim::{Cim, CimPolicy, CimResolution, RoutingDecision, ShardedCim};
pub use hermes_common::{
    DoneFrame, ErrorFrame, Frame, FrameDecoder, GroundCall, HermesError, QueryFrame, Result,
    SimClock, SimDuration, SimInstant, Value,
};
pub use hermes_core::{
    BreakerBank, BreakerConfig, BreakerState, CacheControl, CachePolicy, CacheSnapshot, CacheTier,
    ConcurrentMediator, ExecConfig, ExecConfigBuilder, ExecStats, GateConfig, InFlightRegistry,
    IncompleteReason, InteractiveQuery, InvalidationSweep, MatCache, MatCacheConfig, MatCacheStats,
    Mediator, MediatorConfig, NetServer, NetServerStats, Plan, PlanTier, QueryRequest, QueryResult,
    RemoteResult, ServeConfig, ServeConfigBuilder, ServeMode, ServerStats, SubgoalProvenance,
    TierReason, WireClient,
};
pub use hermes_dcsm::{Dcsm, DcsmConfig, ShardedDcsm};
pub use hermes_lang::{parse_invariant, parse_invariants, parse_program, parse_query};
pub use hermes_net::{profiles, FaultPlan, LinkModel, Network, Site};
