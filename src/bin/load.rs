//! `hermes-load` — a loopback/network load generator for `hermes-serve`.
//!
//! Opens client connections and drives each with a pre-generated query
//! mix against the synthetic serving world, then reports throughput and
//! wall-clock latency percentiles. Three knobs shape the offered load:
//!
//! * `--conns N` / `--connections A,B,C` — how many connections (a
//!   comma list sweeps: one full measured run per count).
//! * `--pipeline D` — up to `D` queries in flight per connection
//!   (pipelined on one socket; the server answers in FIFO order).
//! * `--rate R` — **open-loop** mode: queries are *scheduled* at `R`/s
//!   total across all connections and latency is measured from the
//!   scheduled send instant, so server-side queueing shows up as
//!   latency instead of silently slowing the generator down. Without
//!   `--rate` the generator is closed-loop: each connection keeps
//!   `--pipeline` queries in flight continuously.
//!
//! ```sh
//! hermes-load                          # 8 conns × 2s of Zipf mix
//! hermes-load --mix stampede           # every conn hammers one hot key
//! hermes-load --connections 100,1000 --pipeline 8
//! hermes-load --rate 2000 --duration-ms 5000 --deadline-ms 50
//! hermes-load --shutdown               # drain the server when done
//! hermes-load --test-mode --shutdown   # CI smoke: asserts + drain
//! ```
//!
//! Sheds are reported **per class**: `gate-full` (the admission gate),
//! `accept-queue-full` (socket refused), `pipeline-full` (per-connection
//! depth), `worker-queue-full` (reactor's worker queue) — so a capacity
//! experiment can see *which* wall it hit.
//!
//! `--test-mode` shrinks the run and turns invariants into assertions:
//! every connection must succeed, every issued query must come back as
//! an answer, a shed, or a query error (never a transport error), and
//! the server's own counters must agree (`admitted + shed == queries`).

use hermes::common::Rng64;
use hermes::{HermesError, QueryFrame, Value, WireClient};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

const HELP: &str = "\
usage: hermes-load [options]

options:
  --addr HOST:PORT   server address (default 127.0.0.1:7464)
  --conns N          client connections, one thread each (default 8)
  --connections LIST comma-separated connection counts; runs one full
                     measured pass per count (e.g. 100,1000)
  --pipeline N       queries in flight per connection (default 1)
  --rate N           open-loop arrival rate, queries/sec across all
                     connections (default: closed loop)
  --duration-ms N    measured run length (default 2000)
  --mix zipf|stampede
                     query mix: Zipf-skewed over all forms and keys, or
                     every connection issuing the same hot query
  --deadline-ms N    per-query deadline sent to the server
  --tier NAME        pin a plan tier (cache-only | cached-cheap | full)
  --seed N           mix seed (default 7)
  --shutdown         send a Shutdown frame after reporting
  --test-mode        short run with CI assertions
  -h, --help         this message
";

/// Keys per synthetic relation — must match `hermes-serve`'s world.
const KEYS: usize = 64;

#[derive(Clone)]
struct Options {
    addr: String,
    sweep: Vec<usize>,
    pipeline: usize,
    rate: Option<u64>,
    duration: Duration,
    stampede: bool,
    deadline_ms: Option<u64>,
    tier: Option<String>,
    seed: u64,
    shutdown: bool,
    test_mode: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7464".into(),
            sweep: vec![8],
            pipeline: 1,
            rate: None,
            duration: Duration::from_millis(2000),
            stampede: false,
            deadline_ms: None,
            tier: None,
            seed: 7,
            shutdown: false,
            test_mode: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr")?,
            "--conns" => opts.sweep = vec![num(&take("--conns")?)?],
            "--connections" => {
                let list = take("--connections")?;
                opts.sweep = list
                    .split(',')
                    .map(num)
                    .collect::<Result<Vec<usize>, String>>()?;
                if opts.sweep.is_empty() {
                    return Err("--connections needs at least one count".into());
                }
            }
            "--pipeline" => opts.pipeline = num(&take("--pipeline")?)?.max(1),
            "--rate" => opts.rate = Some(num(&take("--rate")?)? as u64),
            "--duration-ms" => {
                opts.duration = Duration::from_millis(num(&take("--duration-ms")?)? as u64)
            }
            "--mix" => {
                opts.stampede = match take("--mix")?.as_str() {
                    "zipf" => false,
                    "stampede" => true,
                    other => return Err(format!("unknown mix {other}")),
                }
            }
            "--deadline-ms" => opts.deadline_ms = Some(num(&take("--deadline-ms")?)? as u64),
            "--tier" => opts.tier = Some(take("--tier")?),
            "--seed" => opts.seed = num(&take("--seed")?)? as u64,
            "--shutdown" => opts.shutdown = true,
            "--test-mode" => opts.test_mode = true,
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.test_mode {
        for n in &mut opts.sweep {
            *n = (*n).min(4);
        }
        opts.duration = opts.duration.min(Duration::from_millis(500));
    }
    Ok(opts)
}

fn num(s: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("not a number: {s}"))
}

/// The Zipf-skewed mix over the serving world's query forms, identical
/// in shape to the `mediator_throughput` bench's workload.
fn zipf_mix(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng64::new(seed ^ 0x7F4A_7C15);
    (0..count)
        .map(|_| {
            let f = rng.range_usize(0, 4);
            let key = rng.zipf(KEYS, 1.1) % KEYS;
            let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
            format!("?- q{f}('{rel}_{key}', B).")
        })
        .collect()
}

/// Per-connection tallies, merged after the run.
#[derive(Clone, Default)]
struct Tally {
    issued: u64,
    answered: u64,
    shed: u64,
    shed_classes: BTreeMap<String, u64>,
    query_errors: u64,
    transport_errors: u64,
    rows: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.issued += other.issued;
        self.answered += other.answered;
        self.shed += other.shed;
        for (class, n) in other.shed_classes {
            *self.shed_classes.entry(class).or_default() += n;
        }
        self.query_errors += other.query_errors;
        self.transport_errors += other.transport_errors;
        self.rows += other.rows;
        self.latencies_us.extend(other.latencies_us);
    }

    fn shed_mark(&mut self, reason: &str) {
        self.shed += 1;
        *self.shed_classes.entry(reason.to_string()).or_default() += 1;
    }
}

/// One connection's run: pipelined sends up to `opts.pipeline` deep,
/// closed-loop or scheduled open-loop, latency measured from the send
/// basis (the *scheduled* instant in open-loop mode).
fn drive(opts: &Options, conns: usize, conn_id: usize) -> Result<Tally, String> {
    let mut client = WireClient::connect_retry(&opts.addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mix = if opts.stampede {
        vec!["?- hot('h_1', B).".to_string()]
    } else {
        zipf_mix(opts.seed.wrapping_add(conn_id as u64), 4096)
    };
    // Open loop: this connection's share of the global arrival rate.
    let interval = opts.rate.map(|rate| {
        let per_conn = (rate as f64 / conns as f64).max(0.001);
        Duration::from_secs_f64(1.0 / per_conn)
    });

    let mut tally = Tally::default();
    let deadline = Instant::now() + opts.duration;
    let drain_deadline = deadline + Duration::from_secs(30);
    // Send basis of each in-flight query, FIFO like the responses.
    let mut bases: VecDeque<Instant> = VecDeque::new();
    let mut next_send = Instant::now();
    let mut i = 0usize;

    loop {
        let now = Instant::now();
        let sending = now < deadline;
        if !sending && bases.is_empty() {
            break;
        }
        if now > drain_deadline {
            // In-flight responses never came back; surface, don't hang.
            tally.transport_errors += bases.len() as u64;
            break;
        }

        // Send while the window has room (and, open-loop, while the
        // schedule says a query is due).
        let mut sent_any = false;
        while sending && bases.len() < opts.pipeline {
            let basis = match interval {
                Some(iv) => {
                    if Instant::now() >= next_send {
                        let b = next_send;
                        next_send += iv;
                        b
                    } else {
                        break;
                    }
                }
                None => Instant::now(),
            };
            let mut q = QueryFrame::new(mix[i % mix.len()].clone());
            i += 1;
            if let Some(ms) = opts.deadline_ms {
                q.deadline_us = Some(ms * 1000);
            }
            q.tier.clone_from(&opts.tier);
            tally.issued += 1;
            match client.send_query(q) {
                Ok(()) => {
                    bases.push_back(basis);
                    sent_any = true;
                }
                Err(_) => {
                    tally.transport_errors += 1 + bases.len() as u64;
                    bases.clear();
                    client = WireClient::connect_retry(&opts.addr, Duration::from_secs(5))
                        .map_err(|e| format!("reconnect {}: {e}", opts.addr))?;
                }
            }
        }

        // Receive whatever is ready.
        let mut received_any = false;
        loop {
            match client.poll_result() {
                Ok(Some(outcome)) => {
                    received_any = true;
                    let basis = bases.pop_front().unwrap_or_else(Instant::now);
                    match outcome {
                        Ok(result) => {
                            tally.answered += 1;
                            tally.rows += result.done.rows;
                            tally.latencies_us.push(basis.elapsed().as_micros() as u64);
                        }
                        Err(HermesError::Shed { reason }) => {
                            tally.shed_mark(&reason);
                            if reason == "accept-queue-full" {
                                // The socket-level shed closes the
                                // connection; everything else in flight
                                // died with it.
                                tally.transport_errors += bases.len() as u64;
                                bases.clear();
                                client =
                                    WireClient::connect_retry(&opts.addr, Duration::from_secs(5))
                                        .map_err(|e| format!("reconnect {}: {e}", opts.addr))?;
                                break;
                            }
                        }
                        Err(HermesError::Io(_)) => {
                            tally.transport_errors += 1 + bases.len() as u64;
                            bases.clear();
                            client = WireClient::connect_retry(&opts.addr, Duration::from_secs(5))
                                .map_err(|e| format!("reconnect {}: {e}", opts.addr))?;
                            break;
                        }
                        Err(_) => tally.query_errors += 1,
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    tally.transport_errors += 1 + bases.len() as u64;
                    bases.clear();
                    client = WireClient::connect_retry(&opts.addr, Duration::from_secs(5))
                        .map_err(|e| format!("reconnect {}: {e}", opts.addr))?;
                    break;
                }
            }
        }

        if !sent_any && !received_any {
            // Nothing to do right now: nap briefly instead of spinning.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    Ok(tally)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn stat(stats: &Value, section: &str, field: &str) -> Option<i64> {
    let Value::Record(rec) = stats else {
        return None;
    };
    let Some(Value::Record(sec)) = rec.get(section) else {
        return None;
    };
    match sec.get(field) {
        Some(Value::Int(n)) => Some(*n),
        _ => None,
    }
}

/// One full measured pass at `conns` connections.
fn run_pass(opts: &Options, conns: usize) -> (Tally, u64, Duration) {
    let t0 = Instant::now();
    let tallies: Vec<Result<Tally, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let opts = opts.clone();
                s.spawn(move || drive(&opts, conns, c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let mut total = Tally::default();
    let mut connect_failures = 0u64;
    for t in tallies {
        match t {
            Ok(t) => total.merge(t),
            Err(e) => {
                connect_failures += 1;
                eprintln!("hermes-load: {e}");
            }
        }
    }
    (total, connect_failures, wall)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hermes-load: {e}");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    };

    for &conns in &opts.sweep {
        let (mut total, connect_failures, wall) = run_pass(&opts, conns);

        total.latencies_us.sort_unstable();
        let qps = total.answered as f64 / wall.as_secs_f64();
        println!(
            "hermes-load: {} conns, pipeline {}, {:.2}s, mix={}{}",
            conns,
            opts.pipeline,
            wall.as_secs_f64(),
            if opts.stampede { "stampede" } else { "zipf" },
            match opts.rate {
                Some(r) => format!(", open-loop {r}/s"),
                None => String::new(),
            },
        );
        println!(
            "  issued {}  answered {}  shed {}  query-errors {}  transport-errors {}",
            total.issued, total.answered, total.shed, total.query_errors, total.transport_errors
        );
        if !total.shed_classes.is_empty() {
            let classes: Vec<String> = total
                .shed_classes
                .iter()
                .map(|(class, n)| format!("{class} {n}"))
                .collect();
            println!("  shed by class: {}", classes.join("  "));
        }
        println!("  {qps:.0} qps  ({} rows)", total.rows);
        println!(
            "  latency p50 {} us  p95 {} us  p99 {} us  max {} us",
            percentile(&total.latencies_us, 0.50),
            percentile(&total.latencies_us, 0.95),
            percentile(&total.latencies_us, 0.99),
            total.latencies_us.last().copied().unwrap_or(0),
        );

        if opts.test_mode {
            assert_eq!(connect_failures, 0, "connections failed to establish");
            assert_eq!(total.transport_errors, 0, "transport errors during the run");
            assert_eq!(
                total.answered + total.shed + total.query_errors,
                total.issued,
                "issued queries unaccounted for"
            );
            assert!(total.answered > 0, "no queries answered");
        }
    }

    // Fetch the server's own counters for the gate invariant.
    let server_stats =
        WireClient::connect_retry(&opts.addr, Duration::from_secs(5)).and_then(|mut c| {
            let stats = c.stats()?;
            if opts.shutdown {
                c.shutdown_server()?;
            }
            Ok(stats)
        });
    match &server_stats {
        Ok(stats) => {
            let queries = stat(stats, "server", "queries").unwrap_or(-1);
            let admitted = stat(stats, "server", "admitted").unwrap_or(-1);
            let shed = stat(stats, "server", "shed").unwrap_or(-1);
            let refused = stat(stats, "net", "refused").unwrap_or(-1);
            let pre_gate = stat(stats, "net", "pre_gate_shed").unwrap_or(-1);
            println!(
                "  server: queries {queries}  admitted {admitted}  shed {shed}  \
                 socket-refused {refused}  pre-gate-shed {pre_gate}"
            );
            if opts.test_mode {
                assert_eq!(
                    admitted + shed,
                    queries,
                    "gate invariant broken: admitted + shed != queries"
                );
            }
        }
        Err(e) => eprintln!("hermes-load: stats fetch failed: {e}"),
    }

    if opts.test_mode {
        assert!(server_stats.is_ok(), "stats frame failed");
        println!("hermes-load: test-mode assertions passed");
    }
}
