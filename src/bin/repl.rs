//! `hermes-repl` — an interactive shell over a demo mediator world.
//!
//! ```sh
//! cargo run --bin hermes-repl                # built-in demo world
//! cargo run --bin hermes-repl program.hm     # your rules over the demo domains
//! ```
//!
//! The demo world hosts four sources on a simulated 1996 network:
//! `video` (AVIS-style store with "The Rope", in Italy), `relation`
//! (cast table, Cornell), `spatial` (a point file, local), and
//! `terraindb` (a path planner, local).
//!
//! Commands:
//!
//! ```text
//! ?- <goals>.            run a query (all answers)
//! :first <k> ?- <...>.   run a query, stop after k answers
//! :explain ?- <...>.     show candidate plans and estimates
//! :invariant <inv>.      add an invariant to CIM
//! :check [p/bf ...]      static analysis of the loaded program
//! :materialize [p/bf ...] materialization-safety inventory (HA070-series)
//! :mode all|first        optimization objective
//! :parallel <k>          overlap up to k independent calls (1 = serial)
//! :retry <n> [ms]        retries per call (0 = none) + backoff base
//! :deadline <ms>|off     per-query virtual-clock deadline
//! :budget <ms>|off       per-query budget (fail-soft tier downgrade)
//! :tier auto|cache-only|cached-cheap|full   pin or release the plan tier
//! :breaker <n> <ms>|off|status   circuit-breaker threshold/cooldown
//! :serve <threads> <queries>     replay the last query concurrently
//! :connect <host:port>   become a thin client of a hermes-serve server
//! :disconnect            back to the local mediator
//! :ping                  round-trip time to the connected server
//! :pipeline <n> <query>  n pipelined copies of query on one socket
//! :shutdown-server       drain the connected server
//! :stats                 cache/statistics counters (remote when connected)
//! :save <dir>  :load <dir>   persist / restore caches
//! :help  :quit
//! ```
//!
//! After `:connect`, queries, `:first`, and `:stats` ride the binary
//! frame protocol to the server; `:tier`, `:budget`, `:deadline`, and
//! `:trace` settings travel with each query frame. Everything else
//! still drives the local in-process mediator.

use hermes::domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes::domains::spatial::{uniform_points, SpatialDomain};
use hermes::domains::terrain::{demo_map, TerrainDomain};
use hermes::domains::video::gen::{rope_store, ROPE_CAST};
use hermes::net::profiles;
use hermes::{parse_invariant, Mediator, Network, Value};
use std::io::{BufRead, Write};
use std::sync::Arc;

const DEMO_PROGRAM: &str = include_str!("../../examples/programs/demo.hms");

fn demo_network() -> Network {
    let relation = RelationalDomain::new("relation");
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .expect("schema"),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .expect("insert");
    }
    relation.add_table(cast);
    let spatial = SpatialDomain::new("spatial");
    spatial.load_points("points", uniform_points(7, 500, 100.0), 10.0);
    let terrain = TerrainDomain::new("terraindb", demo_map());

    let mut net = Network::new(42);
    net.place(Arc::new(rope_store()), profiles::italy());
    net.place(relation, profiles::cornell());
    net.place_local(Arc::new(spatial));
    net.place_local(Arc::new(terrain));
    net
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let program = match args.get(1) {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => DEMO_PROGRAM.to_string(),
    };
    let mut mediator = match Mediator::from_source(&program, demo_network()) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("program error: {e}");
            std::process::exit(1);
        }
    };

    println!("hermes mediator shell — :help for commands");
    let interactive = atty_stdout();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut state = ReplState::default();
    loop {
        if interactive {
            print!("hermes> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if !interactive {
            println!("hermes> {line}");
        }
        match dispatch(&mut mediator, &mut state, line) {
            Ok(Control::Continue) => {}
            Ok(Control::Quit) => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

enum Control {
    Continue,
    Quit,
}

/// Session state the commands share across dispatches.
#[derive(Default)]
struct ReplState {
    /// The most recent query text; `:serve` replays it concurrently.
    last_query: Option<String>,
    /// Counters from the most recent `:serve` run, surfaced by `:stats`.
    serve: Option<hermes::ServerStats>,
    /// Pinned plan tier (`:tier`); `None` = auto (selector decides).
    tier: Option<hermes::PlanTier>,
    /// Per-query budget (`:budget`); downgrades tiers, never aborts.
    budget: Option<hermes::SimDuration>,
    /// A `:connect`ed `hermes-serve` server; queries go over the wire.
    remote: Option<hermes::WireClient>,
}

/// Applies the session's `:tier` / `:budget` settings to a request.
fn with_tier_options(state: &ReplState, req: hermes::QueryRequest) -> hermes::QueryRequest {
    let req = match state.tier {
        Some(t) => req.tier(t),
        None => req,
    };
    match state.budget {
        Some(b) => req.budget(b),
        None => req,
    }
}

fn dispatch(mediator: &mut Mediator, state: &mut ReplState, line: &str) -> hermes::Result<Control> {
    if line == ":quit" || line == ":q" {
        return Ok(Control::Quit);
    }
    if line == ":help" {
        println!(
            "  ?- <goals>.           run a query\n  \
             :first <k> ?- ...     stop after k answers\n  \
             :explain ?- ...       show plans + estimates\n  \
             :invariant <inv>.     add an invariant\n  \
             :check [p/bf ...]     static analysis (optionally against\n  \
                                   declared query adornments)\n  \
             :materialize [p/bf ...]  which subplans are safe to cache\n  \
                                   (HA070-series, priced by the DCSM)\n  \
             :mode all|first       optimization objective\n  \
             :parallel <k>         overlap up to k independent calls (1 = serial)\n  \
             :share on|off         share materialized subplan results\n  \
             :trace on|off         show execution traces\n  \
             :retry <n> [ms]       retries per call (0 = none), backoff base\n  \
             :deadline <ms>|off    per-query deadline on the virtual clock\n  \
             :budget <ms>|off      per-query budget (downgrades tiers, never aborts)\n  \
             :tier <t>             auto|cache-only|cached-cheap|full\n  \
             :breaker <n> <ms>     trip threshold + cooldown (off|status)\n  \
             :serve <t> <q>        replay the last query q times from t threads\n  \
             :connect <host:port>  query a hermes-serve server instead\n  \
             :disconnect           back to the local mediator\n  \
             :ping                 round-trip time to the server\n  \
             :pipeline <n> <q>     send n pipelined copies of q at once\n  \
             :shutdown-server      drain the connected server\n  \
             :stats                counters (remote when connected)\n  \
             :save <dir> / :load <dir>\n  \
             :quit"
        );
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":connect") {
        let addr = rest.trim();
        if addr.is_empty() {
            println!("usage: :connect <host:port>");
            return Ok(Control::Continue);
        }
        match hermes::WireClient::connect(addr) {
            Ok(client) => {
                state.remote = Some(client);
                println!("  connected to {addr} — queries now go over the wire");
            }
            Err(e) => println!("  connect {addr}: {e}"),
        }
        return Ok(Control::Continue);
    }
    if line == ":disconnect" {
        if state.remote.take().is_some() {
            println!("  disconnected — queries run on the local mediator again");
        } else {
            println!("  not connected");
        }
        return Ok(Control::Continue);
    }
    if line == ":ping" {
        match state.remote.as_mut() {
            Some(client) => match client.ping() {
                Ok(rtt) => println!("  pong in {} us", rtt.as_micros()),
                Err(e) => println!("  ping failed: {e}"),
            },
            None => println!("  not connected (use :connect <host:port>)"),
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":pipeline") {
        let rest = rest.trim();
        let (count, query) = match rest.split_once(char::is_whitespace) {
            Some((n, q)) => match n.parse::<usize>() {
                Ok(n) if n >= 1 && !q.trim().is_empty() => (n, q.trim().to_string()),
                _ => {
                    println!("usage: :pipeline <n> <query>");
                    return Ok(Control::Continue);
                }
            },
            None => {
                println!("usage: :pipeline <n> <query>");
                return Ok(Control::Continue);
            }
        };
        let Some(client) = state.remote.as_mut() else {
            println!("  not connected (use :connect <host:port>)");
            return Ok(Control::Continue);
        };
        // All n queries ride one socket at once; the server answers in
        // FIFO order, so total wall time shows the pipelining win over
        // n sequential round trips.
        let start = std::time::Instant::now();
        let mut sent = 0usize;
        for _ in 0..count {
            if let Err(e) = client.send_query(hermes::QueryFrame::new(query.clone())) {
                println!("  send failed after {sent}: {e}");
                break;
            }
            sent += 1;
        }
        let (mut answered, mut rows, mut shed, mut errors) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..sent {
            match client.recv_result() {
                Ok(result) => {
                    answered += 1;
                    rows += result.done.rows;
                }
                Err(hermes::HermesError::Shed { .. }) => shed += 1,
                Err(_) => errors += 1,
            }
        }
        println!(
            "  {sent} pipelined in {} us: {answered} answered ({rows} rows), \
             {shed} shed, {errors} errors",
            start.elapsed().as_micros()
        );
        return Ok(Control::Continue);
    }
    if line == ":shutdown-server" {
        match state.remote.take() {
            Some(mut client) => match client.shutdown_server() {
                Ok(()) => println!("  server draining; disconnected"),
                Err(e) => println!("  shutdown failed: {e}"),
            },
            None => println!("  not connected (use :connect <host:port>)"),
        }
        return Ok(Control::Continue);
    }
    if line == ":stats" {
        if let Some(client) = state.remote.as_mut() {
            match client.stats() {
                Ok(stats) => print_remote_stats(&stats),
                Err(e) => println!("  stats failed: {e}"),
            }
            return Ok(Control::Continue);
        }
        let snap = mediator.caches().stats();
        let s = snap.cim;
        println!(
            "  CIM: {} exact, {} equality, {} partial hits; {} misses; \
             cache {} entries / {} bytes",
            s.exact_hits,
            s.equal_hits,
            s.partial_hits,
            s.misses,
            snap.answer_entries,
            snap.answer_bytes
        );
        let cs = snap.answers;
        println!(
            "  answer bytes: {} shared (zero-copy), {} copied",
            cs.bytes_shared, cs.bytes_copied
        );
        let m = snap.subplans;
        println!(
            "  subplans: {} hits, {} coalesced, {} materialized \
             ({} entries / {} bytes); {} invalidated, {} volatile skips",
            m.hits,
            m.coalesced,
            m.materialized,
            m.entries,
            m.bytes,
            m.invalidated,
            m.volatile_skips
        );
        let dcsm = mediator.dcsm();
        let dcsm = dcsm.lock();
        println!(
            "  DCSM: {} detail records, {} summary tables, ~{} bytes",
            dcsm.db().len(),
            dcsm.tables().len(),
            dcsm.approx_bytes()
        );
        let (coalesced, saved) = state
            .serve
            .map(|s| (s.calls_coalesced, s.round_trips_saved))
            .unwrap_or((0, 0));
        println!(
            "  coalescing (last :serve): {coalesced} calls coalesced, \
             {saved} round trips saved"
        );
        let (admitted, shed, downgraded) = state
            .serve
            .map(|s| (s.admitted, s.shed, s.downgraded))
            .unwrap_or((0, 0, 0));
        println!(
            "  admission (last :serve): {admitted} admitted, {shed} shed, \
             {downgraded} downgraded"
        );
        println!(
            "  tier: {}, budget: {}",
            state.tier.map(|t| t.as_str()).unwrap_or("auto"),
            state
                .budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "off".into()),
        );
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":tier") {
        match rest.trim() {
            "auto" => {
                state.tier = None;
                println!("  tier auto (the selector decides per query)");
            }
            name => match hermes::PlanTier::parse(name) {
                Some(t) => {
                    state.tier = Some(t);
                    println!("  tier pinned to `{t}`");
                }
                None => println!("usage: :tier auto|cache-only|cached-cheap|full"),
            },
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":budget") {
        match rest.trim() {
            "off" => {
                state.budget = None;
                println!("  budget off");
            }
            ms => match ms.parse::<f64>() {
                Ok(ms) if ms > 0.0 => {
                    state.budget = Some(hermes::SimDuration::from_millis_f64(ms));
                    println!("  budget {ms:.0}ms (tier steps down under pressure; never aborts)");
                }
                _ => println!("usage: :budget <ms>|off"),
            },
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":serve") {
        let mut parts = rest.split_whitespace();
        let parsed = (
            parts.next().map(str::parse::<usize>),
            parts.next().map(str::parse::<usize>),
        );
        let (threads, queries) = match parsed {
            (Some(Ok(t)), Some(Ok(q))) if t >= 1 && q >= 1 => (t, q),
            _ => {
                println!("usage: :serve <threads> <queries>  (replays the last query)");
                return Ok(Control::Continue);
            }
        };
        let Some(query) = state.last_query.clone() else {
            println!("no query yet — run one first, then :serve replays it concurrently");
            return Ok(Control::Continue);
        };
        // A concurrent snapshot of the mediator: cached answers and
        // statistics carry over into the shards; state learned while
        // serving stays in the snapshot.
        let server = mediator.to_concurrent(8);
        // The network (and its call counter) is shared with the serial
        // session; report only the calls this serve run adds.
        let base_source_calls = server.stats().source_calls;
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let (server, query) = (&server, &query);
                let share = queries / threads + usize::from(t < queries % threads);
                let req = with_tier_options(state, hermes::QueryRequest::new(query.as_str()));
                s.spawn(move || {
                    for _ in 0..share {
                        if let Err(e) = server.query(req.clone()) {
                            println!("error: {e}");
                            break;
                        }
                    }
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let stats = server.stats();
        println!(
            "  served {} queries from {} threads in {:.3}s ({:.0} queries/sec)",
            stats.queries,
            threads,
            wall,
            stats.queries as f64 / wall.max(1e-9),
        );
        println!(
            "  {} source calls; {} coalesced ({} round trips saved); shard contention {}",
            stats.source_calls - base_source_calls,
            stats.calls_coalesced,
            stats.round_trips_saved,
            stats.cim_lock_contention + stats.dcsm_lock_contention,
        );
        state.serve = Some(stats);
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":share") {
        match rest.trim() {
            on @ ("on" | "off") => mediator
                .caches()
                .policy()
                .share_subplans(on == "on")
                .apply()?,
            other => println!("unknown share setting `{other}` (use on|off)"),
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":trace") {
        match rest.trim() {
            "on" => mediator.config_mut().exec.collect_trace = true,
            "off" => mediator.config_mut().exec.collect_trace = false,
            other => println!("unknown trace setting `{other}` (use on|off)"),
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":retry") {
        let mut parts = rest.split_whitespace();
        match parts.next().map(str::parse::<u32>) {
            Some(Ok(n)) => {
                mediator.config_mut().exec.retry_attempts = n;
                if let Some(ms) = parts.next() {
                    match ms.parse::<f64>() {
                        Ok(ms) => mediator.config_mut().exec.retry_backoff_ms = ms,
                        Err(e) => println!("bad backoff `{ms}`: {e}"),
                    }
                }
                let c = mediator.config().exec;
                println!(
                    "  retries: {} ({}), backoff base {:.0}ms (cap {:.0}ms)",
                    c.retry_attempts,
                    if c.retry_attempts == 0 {
                        "first failure is final"
                    } else {
                        "exponential backoff"
                    },
                    c.retry_backoff_ms,
                    c.retry_backoff_cap_ms,
                );
            }
            _ => println!("usage: :retry <n> [backoff_ms]"),
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":deadline") {
        match rest.trim() {
            "off" => {
                mediator.config_mut().exec.deadline = None;
                println!("  deadline off");
            }
            ms => match ms.parse::<f64>() {
                Ok(ms) if ms > 0.0 => {
                    mediator.config_mut().exec.deadline =
                        Some(hermes::SimDuration::from_millis_f64(ms));
                    println!("  deadline {ms:.0}ms (partial answers past it)");
                }
                _ => println!("usage: :deadline <ms>|off"),
            },
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":breaker") {
        use hermes::core::breaker::BreakerConfig;
        let rest = rest.trim();
        if rest == "status" {
            let bank = mediator.breakers();
            let bank = bank.lock();
            let open = bank.open_sites(mediator.now());
            if open.is_empty() {
                println!("  all breakers closed");
            } else {
                for site in open {
                    println!("  OPEN: {site}");
                }
            }
        } else if rest == "off" {
            mediator.breakers().lock().reset();
            println!("  breaker state cleared");
        } else {
            let mut parts = rest.split_whitespace();
            match (
                parts.next().map(str::parse::<u32>),
                parts.next().map(str::parse::<f64>),
            ) {
                (Some(Ok(threshold)), Some(Ok(cooldown_ms))) => {
                    mediator.breakers().lock().set_config(BreakerConfig {
                        failure_threshold: threshold,
                        cooldown: hermes::SimDuration::from_millis_f64(cooldown_ms),
                    });
                    println!(
                        "  breakers trip after {threshold} failures, cool down {cooldown_ms:.0}ms"
                    );
                }
                _ => println!("usage: :breaker <threshold> <cooldown_ms> | off | status"),
            }
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":mode") {
        match rest.trim() {
            "all" => mediator.config_mut().optimize_first_answer = false,
            "first" => mediator.config_mut().optimize_first_answer = true,
            other => println!("unknown mode `{other}` (use all|first)"),
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":parallel") {
        match rest.trim().parse::<usize>() {
            Ok(k) if k >= 1 => {
                let config = mediator.config_mut();
                config.exec.max_parallel_calls = k;
                config.cost.max_parallel_calls = k;
                config.rewrite.favor_parallel = k > 1;
                if k == 1 {
                    println!("  parallel off (serial dispatch)");
                } else {
                    println!("  overlapping up to {k} independent calls per group");
                }
            }
            _ => println!("usage: :parallel <k>  (k >= 1; 1 = serial)"),
        }
        return Ok(Control::Continue);
    }
    if let Some(dir) = line.strip_prefix(":save") {
        mediator.save_state(std::path::Path::new(dir.trim()))?;
        println!("  saved.");
        return Ok(Control::Continue);
    }
    if let Some(dir) = line.strip_prefix(":load") {
        mediator.load_state(std::path::Path::new(dir.trim()))?;
        println!("  loaded.");
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":check") {
        let mut forms = Vec::new();
        for tok in rest.split_whitespace() {
            forms.push(hermes::QueryForm::parse(tok)?);
        }
        let report = mediator.analyze(&forms);
        if report.is_clean() {
            println!("  no findings.");
        } else {
            for d in &report.diagnostics {
                println!("  {d}");
            }
            println!(
                "  ({} error(s), {} warning(s))",
                report.errors().len(),
                report.warnings().len()
            );
        }
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":materialize") {
        let mut forms = Vec::new();
        for tok in rest.split_whitespace() {
            forms.push(hermes::QueryForm::parse(tok)?);
        }
        let report = mediator.analyze_materialization(&forms);
        if report.diagnostics.is_empty() {
            println!("  no findings.");
        } else {
            for d in &report.diagnostics {
                println!("  {d}");
            }
            println!(
                "  ({} error(s), {} warning(s), {} note(s))",
                report.errors().len(),
                report.warnings().len(),
                report.notes().len()
            );
        }
        return Ok(Control::Continue);
    }
    if let Some(inv) = line.strip_prefix(":invariant") {
        let parsed = parse_invariant(inv.trim())?;
        mediator.caches().add_invariant(parsed)?;
        println!("  invariant added.");
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":explain") {
        print!("{}", mediator.explain(rest.trim())?);
        return Ok(Control::Continue);
    }
    if let Some(rest) = line.strip_prefix(":first") {
        let rest = rest.trim();
        let (k_text, query) = rest
            .split_once(' ')
            .ok_or_else(|| hermes::HermesError::Eval(":first needs `<k> ?- ...`".into()))?;
        let k: usize = k_text
            .parse()
            .map_err(|e| hermes::HermesError::Eval(format!("bad count `{k_text}`: {e}")))?;
        let query = query.trim().to_string();
        if state.remote.is_some() {
            remote_query(mediator, state, &query, Some(k as u64))?;
            return Ok(Control::Continue);
        }
        let req = with_tier_options(state, hermes::QueryRequest::new(query.as_str()).limit(k));
        let result = mediator.query(req)?;
        state.last_query = Some(query);
        print_result(&result);
        return Ok(Control::Continue);
    }
    // Anything else is a query.
    if state.remote.is_some() {
        remote_query(mediator, state, line, None)?;
        return Ok(Control::Continue);
    }
    let req = with_tier_options(state, hermes::QueryRequest::new(line));
    let result = mediator.query(req)?;
    state.last_query = Some(line.to_string());
    if !result.trace.is_empty() {
        print!("{}", hermes::core::trace::render(&result.trace));
    }
    print_result(&result);
    Ok(Control::Continue)
}

/// Ships a query to the `:connect`ed server, carrying the session's
/// `:tier`/`:budget`/`:deadline`/`:trace` settings in the frame.
fn remote_query(
    mediator: &Mediator,
    state: &mut ReplState,
    query: &str,
    limit: Option<u64>,
) -> hermes::Result<()> {
    let mut q = hermes::QueryFrame::new(query);
    q.limit = limit;
    q.tier = state.tier.map(|t| t.as_str().to_string());
    q.budget_us = state.budget.map(|b| b.as_micros());
    q.deadline_us = mediator.config().exec.deadline.map(|d| d.as_micros());
    q.trace = mediator.config().exec.collect_trace;
    let Some(client) = state.remote.as_mut() else {
        return Ok(());
    };
    let result = client.query(q)?;
    state.last_query = Some(query.to_string());
    for line in &result.done.trace {
        println!("{line}");
    }
    let header: Vec<String> = result.done.columns.clone();
    if !header.is_empty() {
        println!("  {}", header.join(" | "));
    }
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    println!(
        "  ({} answers; {} us wall; {} source calls, {} cache hits{}{})",
        result.rows.len(),
        result.done.elapsed_us,
        result.done.source_calls,
        result.done.cache_hits,
        if result.done.tier_downgrades > 0 {
            format!("; {} downgrade(s)", result.done.tier_downgrades)
        } else {
            String::new()
        },
        if result.done.incomplete {
            "; INCOMPLETE"
        } else {
            ""
        },
    );
    Ok(())
}

/// Pretty-prints the server's nested stats record, one section per line.
fn print_remote_stats(stats: &Value) {
    let Value::Record(rec) = stats else {
        println!("  {stats}");
        return;
    };
    for (name, section) in rec.iter() {
        match section {
            Value::Record(fields) => {
                let cells: Vec<String> = fields.iter().map(|(k, v)| format!("{k} {v}")).collect();
                println!("  {name}: {}", cells.join(", "));
            }
            other => println!("  {name}: {other}"),
        }
    }
}

fn print_result(result: &hermes::QueryResult) {
    let header: Vec<String> = result.columns.iter().map(|c| c.to_string()).collect();
    if !header.is_empty() {
        println!("  {}", header.join(" | "));
    }
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    let first = result
        .t_first
        .map(|d| d.to_string())
        .unwrap_or_else(|| "-".into());
    println!(
        "  ({} answers; first {first}, all {}; {} source calls, {} cache hits{}{})",
        result.rows.len(),
        result.t_all,
        result.stats.actual_calls,
        result.stats.cim_exact + result.stats.cim_equal + result.stats.cim_partial,
        if result.failovers > 0 {
            format!("; {} failover(s)", result.failovers)
        } else {
            String::new()
        },
        if result.incomplete {
            "; INCOMPLETE"
        } else {
            ""
        },
    );
    if result.incomplete {
        for p in result.provenance.iter().filter(|p| !p.complete()) {
            let gaps: Vec<String> = p.gaps.iter().map(|g| g.to_string()).collect();
            println!("    incomplete: {} ({})", p.subgoal, gaps.join(", "));
        }
    }
}

/// Crude tty check without a dependency: honors `HERMES_REPL_FORCE_TTY`.
fn atty_stdout() -> bool {
    if std::env::var_os("HERMES_REPL_FORCE_TTY").is_some() {
        return true;
    }
    // Piped usage (tests, scripts) sets no env; default to non-interactive
    // echo so transcripts are self-describing.
    false
}
