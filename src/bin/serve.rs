//! `hermes-serve` — the HERMES mediator as a TCP server.
//!
//! Serves the binary frame protocol (`hermes_common::frame`) on a
//! [`hermes::ConcurrentMediator`] — through the epoll reactor on Linux
//! (`--mode reactor`, the `auto` default there) or the worker-pool
//! engine (`--mode pool`, the fallback elsewhere). Without `--program`
//! it builds the benchmark's synthetic world: two sources behind real
//! per-call latency (`SlowDomain`), five query forms `q0`..`q3` and
//! `hot` over Zipf-friendly keys — the same world `hermes-load`
//! generates traffic for.
//!
//! ```sh
//! hermes-serve                         # synthetic world on 127.0.0.1:7464
//! hermes-serve --addr 0.0.0.0:9000 --workers 16
//! hermes-serve --delay-ms 10 --gate 32 # slower sources, bounded gate
//! hermes-serve --program rules.hms     # serve your own rule file
//! ```
//!
//! Stop it with `hermes-load --shutdown`, the REPL's `:connect` +
//! `:shutdown-server`, or plain Ctrl-C.

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::SlowDomain;
use hermes::{profiles, GateConfig, Mediator, NetServer, Network, ServeConfig, ServeMode};
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "\
usage: hermes-serve [options]

options:
  --addr HOST:PORT   listen address (default 127.0.0.1:7464)
  --mode MODE        serving engine: auto | pool | reactor (default auto;
                     auto picks the epoll reactor on Linux, pool elsewhere)
  --workers N        query worker threads (default 8); in pool mode this
                     is also the concurrent-connection ceiling
  --pending N        pool mode: accepted connections queued for a worker;
                     the next one is refused with a shed frame (default 64)
  --max-conns N      reactor mode: open-connection ceiling (default 10000)
  --pipeline N       reactor mode: queries in flight per connection before
                     shed/pipeline-full (default 32)
  --queue N          reactor mode: worker-queue bound before
                     shed/worker-queue-full (default 1024)
  --idle-timeout-ms N  reactor mode: evict connections idle this long
                     (default: never)
  --batch-rows N     rows per Batch frame (default 512)
  --gate N           admission-gate capacity (default unbounded)
  --delay-ms N       real latency per synthetic source call (default 3)
  --shards N         CIM/DCSM shards (default 8)
  --seed N           synthetic data seed (default 42)
  --sim-clock        serve on virtual time instead of the wall clock
  --program FILE     serve this rule file instead of the synthetic world
  -h, --help         this message
";

/// Keys per synthetic relation — must match `hermes-load`'s key space.
const KEYS: usize = 64;

struct Options {
    addr: String,
    mode: ServeMode,
    workers: usize,
    pending: usize,
    max_conns: usize,
    pipeline: usize,
    queue: usize,
    idle_timeout: Option<Duration>,
    batch_rows: usize,
    gate: Option<usize>,
    delay: Duration,
    shards: usize,
    seed: u64,
    wall_clock: bool,
    program: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7464".into(),
            mode: ServeMode::Auto,
            workers: 8,
            pending: 64,
            max_conns: 10_000,
            pipeline: 32,
            queue: 1024,
            idle_timeout: None,
            batch_rows: 512,
            gate: None,
            delay: Duration::from_millis(3),
            shards: 8,
            seed: 42,
            wall_clock: true,
            program: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr")?,
            "--mode" => {
                let name = take("--mode")?;
                opts.mode = ServeMode::parse(&name)
                    .ok_or_else(|| format!("unknown mode {name} (auto | pool | reactor)"))?;
            }
            "--workers" => opts.workers = num(&take("--workers")?)?,
            "--pending" => opts.pending = num(&take("--pending")?)?,
            "--max-conns" => opts.max_conns = num(&take("--max-conns")?)?,
            "--pipeline" => opts.pipeline = num(&take("--pipeline")?)?,
            "--queue" => opts.queue = num(&take("--queue")?)?,
            "--idle-timeout-ms" => {
                opts.idle_timeout = Some(Duration::from_millis(
                    num(&take("--idle-timeout-ms")?)? as u64
                ));
            }
            "--batch-rows" => opts.batch_rows = num(&take("--batch-rows")?)?,
            "--gate" => opts.gate = Some(num(&take("--gate")?)?),
            "--delay-ms" => opts.delay = Duration::from_millis(num(&take("--delay-ms")?)? as u64),
            "--shards" => opts.shards = num(&take("--shards")?)?,
            "--seed" => opts.seed = num(&take("--seed")?)? as u64,
            "--sim-clock" => opts.wall_clock = false,
            "--program" => opts.program = Some(take("--program")?),
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

/// The synthetic sources, shaped like the `mediator_throughput` bench:
/// two sites, real latency per source call.
fn synthetic_network(seed: u64, delay: Duration) -> Network {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
            RelationSpec::uniform("h", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), delay)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), delay)),
        profiles::cornell(),
    );
    net
}

/// The default serving world: five query forms over the synthetic
/// sources — the same forms `hermes-load` generates traffic for.
fn synthetic_world(seed: u64, delay: Duration) -> Result<Mediator, hermes::HermesError> {
    Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        hot(A, B) :- in(B, d0:h_bf(A)).
        ",
        synthetic_network(seed, delay),
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hermes-serve: {e}");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    };

    let mediator = match &opts.program {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hermes-serve: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            // A user program gets the synthetic network's sources too, so
            // rules may reference d0/d1 — or ignore them entirely.
            match Mediator::from_source(&src, synthetic_network(opts.seed, opts.delay)) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("hermes-serve: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => match synthetic_world(opts.seed, opts.delay) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("hermes-serve: {e}");
                std::process::exit(2);
            }
        },
    };

    let server = Arc::new(mediator.to_concurrent(opts.shards));
    if let Some(capacity) = opts.gate {
        server.set_gate(GateConfig::bounded(capacity));
    }

    let config = ServeConfig::builder()
        .mode(opts.mode)
        .workers(opts.workers)
        .pending_conns(opts.pending)
        .max_conns(opts.max_conns)
        .pipeline_depth(opts.pipeline)
        .queue_depth(opts.queue)
        .idle_timeout(opts.idle_timeout)
        .batch_rows(opts.batch_rows)
        .wall_clock(opts.wall_clock)
        .build();
    let net = match NetServer::bind(server, opts.addr.as_str(), config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("hermes-serve: bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "hermes-serve: listening on {} ({} mode, {} workers, {})",
        net.addr(),
        net.mode().name(),
        opts.workers,
        if opts.wall_clock {
            "wall clock"
        } else {
            "sim clock"
        },
    );

    let stats = net.wait();
    println!(
        "hermes-serve: drained — {} connections ({} refused, {} evicted), {} requests, \
         {} bad frames, {} pre-gate sheds",
        stats.accepted,
        stats.refused,
        stats.evicted,
        stats.requests,
        stats.bad_frames,
        stats.pre_gate_shed
    );
}
