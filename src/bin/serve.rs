//! `hermes-serve` — the HERMES mediator as a TCP server.
//!
//! Serves the binary frame protocol (`hermes_common::frame`) over a
//! worker pool on a [`hermes::ConcurrentMediator`]. Without `--program`
//! it builds the benchmark's synthetic world: two sources behind real
//! per-call latency (`SlowDomain`), five query forms `q0`..`q3` and
//! `hot` over Zipf-friendly keys — the same world `hermes-load`
//! generates traffic for.
//!
//! ```sh
//! hermes-serve                         # synthetic world on 127.0.0.1:7464
//! hermes-serve --addr 0.0.0.0:9000 --workers 16
//! hermes-serve --delay-ms 10 --gate 32 # slower sources, bounded gate
//! hermes-serve --program rules.hms     # serve your own rule file
//! ```
//!
//! Stop it with `hermes-load --shutdown`, the REPL's `:connect` +
//! `:shutdown-server`, or plain Ctrl-C.

use hermes::domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes::domains::SlowDomain;
use hermes::{profiles, GateConfig, Mediator, NetServer, Network, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "\
usage: hermes-serve [options]

options:
  --addr HOST:PORT   listen address (default 127.0.0.1:7464)
  --workers N        handler threads = concurrent connections (default 8)
  --pending N        accepted connections queued for a worker; the next
                     one is refused with a shed frame (default 64)
  --batch-rows N     rows per Batch frame (default 512)
  --gate N           admission-gate capacity (default unbounded)
  --delay-ms N       real latency per synthetic source call (default 3)
  --shards N         CIM/DCSM shards (default 8)
  --seed N           synthetic data seed (default 42)
  --sim-clock        serve on virtual time instead of the wall clock
  --program FILE     serve this rule file instead of the synthetic world
  -h, --help         this message
";

/// Keys per synthetic relation — must match `hermes-load`'s key space.
const KEYS: usize = 64;

struct Options {
    addr: String,
    workers: usize,
    pending: usize,
    batch_rows: usize,
    gate: Option<usize>,
    delay: Duration,
    shards: usize,
    seed: u64,
    wall_clock: bool,
    program: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: "127.0.0.1:7464".into(),
            workers: 8,
            pending: 64,
            batch_rows: 512,
            gate: None,
            delay: Duration::from_millis(3),
            shards: 8,
            seed: 42,
            wall_clock: true,
            program: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = take("--addr")?,
            "--workers" => opts.workers = num(&take("--workers")?)?,
            "--pending" => opts.pending = num(&take("--pending")?)?,
            "--batch-rows" => opts.batch_rows = num(&take("--batch-rows")?)?,
            "--gate" => opts.gate = Some(num(&take("--gate")?)?),
            "--delay-ms" => opts.delay = Duration::from_millis(num(&take("--delay-ms")?)? as u64),
            "--shards" => opts.shards = num(&take("--shards")?)?,
            "--seed" => opts.seed = num(&take("--seed")?)? as u64,
            "--sim-clock" => opts.wall_clock = false,
            "--program" => opts.program = Some(take("--program")?),
            "-h" | "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

/// The synthetic sources, shaped like the `mediator_throughput` bench:
/// two sites, real latency per source call.
fn synthetic_network(seed: u64, delay: Duration) -> Network {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
            RelationSpec::uniform("h", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), delay)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), delay)),
        profiles::cornell(),
    );
    net
}

/// The default serving world: five query forms over the synthetic
/// sources — the same forms `hermes-load` generates traffic for.
fn synthetic_world(seed: u64, delay: Duration) -> Result<Mediator, hermes::HermesError> {
    Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        hot(A, B) :- in(B, d0:h_bf(A)).
        ",
        synthetic_network(seed, delay),
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hermes-serve: {e}");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    };

    let mediator = match &opts.program {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hermes-serve: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            // A user program gets the synthetic network's sources too, so
            // rules may reference d0/d1 — or ignore them entirely.
            match Mediator::from_source(&src, synthetic_network(opts.seed, opts.delay)) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("hermes-serve: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => match synthetic_world(opts.seed, opts.delay) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("hermes-serve: {e}");
                std::process::exit(2);
            }
        },
    };

    let server = Arc::new(mediator.to_concurrent(opts.shards));
    if let Some(capacity) = opts.gate {
        server.set_gate(GateConfig::bounded(capacity));
    }

    let config = ServeConfig {
        workers: opts.workers,
        pending_conns: opts.pending,
        batch_rows: opts.batch_rows,
        wall_clock: opts.wall_clock,
        ..ServeConfig::default()
    };
    let net = match NetServer::bind(server, opts.addr.as_str(), config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("hermes-serve: bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!(
        "hermes-serve: listening on {} ({} workers, {} pending, {})",
        net.addr(),
        opts.workers,
        opts.pending,
        if opts.wall_clock {
            "wall clock"
        } else {
            "sim clock"
        },
    );

    let stats = net.wait();
    println!(
        "hermes-serve: drained — {} connections ({} refused), {} requests, {} bad frames",
        stats.accepted, stats.refused, stats.requests, stats.bad_frames
    );
}
