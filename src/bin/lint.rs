//! `hermes-lint` — whole-program static analysis for `.hms` rule files.
//!
//! ```sh
//! hermes-lint examples/programs             # lint every .hms under a dir
//! hermes-lint --strict program.hms          # warnings fail too
//! hermes-lint --coverage program.hms        # include HA040 advisories
//! hermes-lint --materialize program.hms     # HA070-series inventory
//! hermes-lint --format json examples        # machine-readable report
//! hermes-lint --explain HA071               # what a code means
//! ```
//!
//! Each file is parsed and run through the analyzer passes (see
//! `hermes-analysis`). `%!` directives in the file opt into the
//! context-dependent passes: `%! query p(b, f)` declares an exported
//! adornment (enables reachability and feasibility checks), `%! domain
//! d: f/2` declares signatures (enables signature checks), `%! invariant
//! ...` lints an invariant the deployment will install, `%! cache ...`
//! declares CIM routing (enables the HA060 cacheability check and
//! sharpens HA071), and `%! volatile d[:f]` marks a source whose answers
//! change without notice (HA071).

use hermes::analysis::{analyze_source_with, AnalyzeOptions, DiagCode, FileReport, Severity};
use std::path::{Path, PathBuf};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    strict: bool,
    format: Format,
    passes: AnalyzeOptions,
    paths: Vec<PathBuf>,
}

const EXIT_CLEAN: i32 = 0;
const EXIT_WARNINGS: i32 = 1;
const EXIT_ERRORS: i32 = 2;
const EXIT_USAGE: i32 = 3;

const HELP: &str = "\
usage: hermes-lint [options] <file.hms | dir>...
       hermes-lint --explain HAxxx

options:
  --strict           treat warnings as errors for the exit status
  --coverage         include HA040 cost-coverage advisories
  --materialize      include the HA070-series materialization-safety passes
  --format <fmt>     output format: text (default), json, sarif
  --explain <code>   print what a diagnostic code means and exit
  -h, --help         this message

exit status:
  0  clean (notes never affect the exit status)
  1  warning-severity findings, no errors
  2  error-severity findings or unparseable files
     (with --strict, warnings also exit 2)
  3  usage or I/O trouble";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        strict: false,
        format: Format::Text,
        passes: AnalyzeOptions::default(),
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--coverage" => opts.passes.coverage = true,
            "--materialize" => opts.passes.materialize = true,
            "--format" => {
                let fmt = args.next().ok_or("--format needs an argument")?;
                opts.format = match fmt.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        return Err(format!(
                            "unknown format `{other}` (expected text, json, or sarif)"
                        ))
                    }
                };
            }
            "--explain" => {
                let code = args.next().ok_or("--explain needs a code, e.g. HA071")?;
                return match DiagCode::from_code(&code) {
                    Some(c) => {
                        println!(
                            "{}: {} [{}]\n\n{}",
                            c.as_str(),
                            c.title(),
                            c.severity(),
                            c.explain()
                        );
                        std::process::exit(EXIT_CLEAN);
                    }
                    None => Err(format!(
                        "unknown diagnostic code `{code}` (codes are HA001..HA082; \
                         see the README table)"
                    )),
                };
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(EXIT_CLEAN);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err("no input files".into());
    }
    Ok(opts)
}

/// Expands directories into their `.hms` files, recursively; keeps plain
/// files as given.
fn collect_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files)?;
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(format!("no such file or directory: {}", path.display()));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "hms") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file into a [`FileReport`]; an I/O failure is fatal (exit 3),
/// a parse failure is recorded in the report (exit 2).
fn lint_file(path: &Path, passes: AnalyzeOptions) -> Result<FileReport, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = FileReport {
        path: path.display().to_string(),
        ..FileReport::default()
    };
    match analyze_source_with(&src, passes) {
        Ok(report) => out.report = report,
        Err(e) => out.error = Some(format!("parse error: {e}")),
    }
    Ok(out)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("hermes-lint: {msg}\n{HELP}");
            std::process::exit(EXIT_USAGE);
        }
    };
    let files = match collect_files(&opts.paths) {
        Ok(files) if files.is_empty() => {
            eprintln!("hermes-lint: no .hms files found");
            std::process::exit(EXIT_USAGE);
        }
        Ok(files) => files,
        Err(msg) => {
            eprintln!("hermes-lint: {msg}");
            std::process::exit(EXIT_USAGE);
        }
    };

    let mut reports = Vec::with_capacity(files.len());
    for file in &files {
        match lint_file(file, opts.passes) {
            Ok(report) => reports.push(report),
            Err(msg) => {
                eprintln!("hermes-lint: {msg}");
                std::process::exit(EXIT_USAGE);
            }
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    let mut broken = 0usize;
    for f in &reports {
        if f.error.is_some() {
            broken += 1;
        }
        for d in &f.report.diagnostics {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Note => notes += 1,
            }
        }
    }

    match opts.format {
        // JSON and SARIF modes emit only the document on stdout, so the
        // output can be piped or snapshotted verbatim.
        Format::Json => print!("{}", hermes::analysis::report_to_json(&reports)),
        Format::Sarif => print!("{}", hermes::analysis::report_to_sarif(&reports)),
        Format::Text => {
            for f in &reports {
                if let Some(err) = &f.error {
                    println!("{}: {err}", f.path);
                }
                for d in &f.report.diagnostics {
                    println!("{}: {d}", f.path);
                }
            }
            println!(
                "{} file(s) checked: {} error(s), {} warning(s), {} note(s){}",
                reports.len(),
                errors,
                warnings,
                notes,
                if broken > 0 {
                    format!(", {broken} unparseable")
                } else {
                    String::new()
                }
            );
        }
    }

    let code = if errors > 0 || broken > 0 || (opts.strict && warnings > 0) {
        EXIT_ERRORS
    } else if warnings > 0 {
        EXIT_WARNINGS
    } else {
        EXIT_CLEAN
    };
    std::process::exit(code);
}
