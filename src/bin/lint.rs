//! `hermes-lint` — whole-program static analysis for `.hms` rule files.
//!
//! ```sh
//! hermes-lint examples/programs            # lint every .hms under a dir
//! hermes-lint --strict program.hms         # warnings fail too
//! hermes-lint --coverage program.hms       # include HA040 advisories
//! ```
//!
//! Each file is parsed and run through the analyzer passes (see
//! `hermes-analysis`). `%!` directives in the file opt into the
//! context-dependent passes: `%! query p(b, f)` declares an exported
//! adornment (enables reachability and feasibility checks), `%! domain
//! d: f/2` declares signatures (enables signature checks), `%! invariant
//! ...` lints an invariant the deployment will install, and `%! cache
//! ...` declares CIM routing (enables the HA060 cacheability check).
//!
//! Exit status: `0` all files clean, `1` findings (errors, or any finding
//! under `--strict`), `2` usage or I/O trouble.

use hermes::analysis::{parse_directives, Analyzer, Severity};
use hermes::{parse_program, Dcsm};
use std::path::{Path, PathBuf};

struct Options {
    strict: bool,
    coverage: bool,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: hermes-lint [--strict] [--coverage] <file.hms | dir>...";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        strict: false,
        coverage: false,
        paths: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--coverage" => opts.coverage = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

/// Expands directories into their `.hms` files, recursively; keeps plain
/// files as given.
fn collect_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files)?;
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(format!("no such file or directory: {}", path.display()));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "hms") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file; returns (errors, warnings) counted, or a parse failure.
fn lint_file(path: &Path, coverage: bool) -> Result<(usize, usize), String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let program =
        parse_program(&src).map_err(|e| format!("{}: parse error: {e}", path.display()))?;
    let directives = parse_directives(&src).map_err(|e| format!("{}: {e}", path.display()))?;

    // An empty DCSM makes pass 5 list every call pattern the optimizer
    // would have to cost from the prior — advisory, hence opt-in.
    let empty_dcsm = Dcsm::new();
    let mut analyzer = Analyzer::new(&program)
        .with_query_forms(directives.query_forms)
        .with_invariants(directives.invariants);
    if let Some(table) = directives.signatures {
        analyzer = analyzer.with_signatures(table);
    }
    if coverage {
        analyzer = analyzer.with_dcsm(&empty_dcsm);
    }
    let report = match &directives.cache_routing {
        Some(routing) => {
            let routes = |domain: &str, function: &str| routing.routes(domain, function);
            analyzer.with_cache_routing(&routes).analyze()
        }
        None => analyzer.analyze(),
    };

    for d in &report.diagnostics {
        println!("{}: {d}", path.display());
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    Ok((errors, report.diagnostics.len() - errors))
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let files = match collect_files(&opts.paths) {
        Ok(files) if files.is_empty() => {
            eprintln!("no .hms files found");
            std::process::exit(2);
        }
        Ok(files) => files,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut broken = 0usize;
    for file in &files {
        match lint_file(file, opts.coverage) {
            Ok((e, w)) => {
                errors += e;
                warnings += w;
            }
            Err(msg) => {
                println!("{msg}");
                broken += 1;
            }
        }
    }

    println!(
        "{} file(s) checked: {} error(s), {} warning(s){}",
        files.len(),
        errors,
        warnings,
        if broken > 0 {
            format!(", {broken} unparseable")
        } else {
            String::new()
        }
    );
    let failed = errors > 0 || broken > 0 || (opts.strict && warnings > 0);
    std::process::exit(if failed { 1 } else { 0 });
}
